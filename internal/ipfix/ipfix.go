// Package ipfix implements the IP Flow Information Export protocol
// (IPFIX, RFC 7011): message encoding with template and data sets, plus a
// UDP exporter/collector pair.
//
// The major IXP vantage point in the study provides sampled IPFIX traces;
// booterscope's IXP platform exports its sampled flow view through this
// codec.
package ipfix

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/netutil"
	"booterscope/internal/telemetry"
	"booterscope/internal/telemetry/eventlog"
)

// Protocol constants.
const (
	VersionIPFIX   = 10
	headerLen      = 16
	setHeaderLen   = 4
	templateSetID  = 2
	minDataSetID   = 256
	flowTemplateID = 400
)

// Codec errors.
var (
	ErrBadVersion = errors.New("ipfix: not an IPFIX message")
	ErrTruncated  = errors.New("ipfix: truncated message")
	ErrNoTemplate = errors.New("ipfix: data set references unknown template")
	ErrBadSet     = errors.New("ipfix: malformed set")
)

// IPFIX information element IDs (IANA assigned) used by the flow
// template.
const (
	ieOctetDeltaCount       uint16 = 1
	iePacketDeltaCount      uint16 = 2
	ieProtocolIdentifier    uint16 = 4
	ieSourceTransportPort   uint16 = 7
	ieSourceIPv4Address     uint16 = 8
	ieDestTransportPort     uint16 = 11
	ieDestIPv4Address       uint16 = 12
	ieBgpSourceAsNumber     uint16 = 16
	ieBgpDestAsNumber       uint16 = 17
	ieFlowEndMilliseconds   uint16 = 153
	ieFlowStartMilliseconds uint16 = 152
	ieSamplingInterval      uint16 = 34
)

type fieldSpec struct {
	ID     uint16
	Length uint16
}

// flowTemplate is the information element layout booterscope exports.
var flowTemplate = []fieldSpec{
	{ieSourceIPv4Address, 4}, {ieDestIPv4Address, 4},
	{iePacketDeltaCount, 8}, {ieOctetDeltaCount, 8},
	{ieFlowStartMilliseconds, 8}, {ieFlowEndMilliseconds, 8},
	{ieSourceTransportPort, 2}, {ieDestTransportPort, 2},
	{ieProtocolIdentifier, 1},
	{ieBgpSourceAsNumber, 4}, {ieBgpDestAsNumber, 4},
	{ieSamplingInterval, 4},
}

func flowRecordLen() int {
	n := 0
	for _, f := range flowTemplate {
		n += int(f.Length)
	}
	return n
}

// Encoder builds IPFIX messages.
type Encoder struct {
	// DomainID is the observation domain ID stamped on messages.
	DomainID uint32
	// TemplateRefresh re-emits the template set every N messages
	// (default 20); UDP transports must refresh templates periodically.
	TemplateRefresh int

	// seq is the IPFIX sequence number: a count of exported data
	// records modulo 2^32 (RFC 7011 §3.1). Wraparound is intentional;
	// collectors compute gaps in uint32 arithmetic.
	seq           uint32
	messages      int
	forceTemplate bool
}

// SetSeq positions the sequence number the next message will carry.
// Tests use it to exercise exporter-restart and 2^32-wraparound paths.
func (e *Encoder) SetSeq(v uint32) { e.seq = v }

// Seq reports the sequence number the next message will carry.
func (e *Encoder) Seq() uint32 { return e.seq }

// ForceTemplate makes the next message carry the template set
// regardless of the refresh cycle — on-demand template retransmission
// for collectors that signal they are missing it.
func (e *Encoder) ForceTemplate() { e.forceTemplate = true }

// Encode serializes records into one IPFIX message with exportTime.
func (e *Encoder) Encode(records []flow.Record, exportTime time.Time) ([]byte, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("ipfix: no records to encode")
	}
	refresh := e.TemplateRefresh
	if refresh <= 0 {
		refresh = 20
	}
	withTemplate := e.forceTemplate || e.messages%refresh == 0
	e.forceTemplate = false
	e.messages++

	var body []byte
	if withTemplate {
		var tpl []byte
		tpl = binary.BigEndian.AppendUint16(tpl, flowTemplateID)
		tpl = binary.BigEndian.AppendUint16(tpl, uint16(len(flowTemplate)))
		for _, f := range flowTemplate {
			tpl = binary.BigEndian.AppendUint16(tpl, f.ID)
			tpl = binary.BigEndian.AppendUint16(tpl, f.Length)
		}
		body = binary.BigEndian.AppendUint16(body, templateSetID)
		body = binary.BigEndian.AppendUint16(body, uint16(setHeaderLen+len(tpl)))
		body = append(body, tpl...)
	}

	var data []byte
	for i := range records {
		r := &records[i]
		data = binary.BigEndian.AppendUint32(data, netutil.Addr4Val(r.Src))
		data = binary.BigEndian.AppendUint32(data, netutil.Addr4Val(r.Dst))
		data = binary.BigEndian.AppendUint64(data, r.Packets)
		data = binary.BigEndian.AppendUint64(data, r.Bytes)
		data = binary.BigEndian.AppendUint64(data, uint64(r.Start.UnixMilli()))
		data = binary.BigEndian.AppendUint64(data, uint64(r.End.UnixMilli()))
		data = binary.BigEndian.AppendUint16(data, r.SrcPort)
		data = binary.BigEndian.AppendUint16(data, r.DstPort)
		data = append(data, r.Protocol)
		data = binary.BigEndian.AppendUint32(data, r.SrcAS)
		data = binary.BigEndian.AppendUint32(data, r.DstAS)
		rate := r.SamplingRate
		if rate == 0 {
			rate = 1
		}
		data = binary.BigEndian.AppendUint32(data, rate)
	}
	body = binary.BigEndian.AppendUint16(body, flowTemplateID)
	body = binary.BigEndian.AppendUint16(body, uint16(setHeaderLen+len(data)))
	body = append(body, data...)

	msg := make([]byte, 0, headerLen+len(body))
	msg = binary.BigEndian.AppendUint16(msg, VersionIPFIX)
	msg = binary.BigEndian.AppendUint16(msg, uint16(headerLen+len(body)))
	msg = binary.BigEndian.AppendUint32(msg, uint32(exportTime.Unix()))
	msg = binary.BigEndian.AppendUint32(msg, e.seq)
	e.seq += uint32(len(records)) // wraps mod 2^32 by design
	msg = binary.BigEndian.AppendUint32(msg, e.DomainID)
	return append(msg, body...), nil
}

// Sequence-accounting tuning knobs.
const (
	// seqRestartThreshold bounds plausible loss or reordering: a jump
	// of this many records or more (either direction) is treated as an
	// exporter restart rather than a gap.
	seqRestartThreshold = 1 << 30
	// dupRingSize is how many recent sequence numbers are remembered
	// per domain to tell duplicated messages from late (reordered)
	// ones.
	dupRingSize = 64
)

// domainState tracks sequence continuity for one observation domain.
type domainState struct {
	stats DomainStats
	// init is false until the first parsed message seeds expected.
	init bool
	// countValid is false after a message whose record count could not
	// be fully determined (unknown-template sets): the next message
	// re-synchronizes expected without charging a gap.
	countValid bool
	// expected is the sequence number the next in-order message
	// carries: previous seq + previous record count, mod 2^32.
	expected uint32
	ring     [dupRingSize]uint32
	ringLen  int
	ringPos  int
	seen     map[uint32]struct{}
}

func (st *domainState) sawRecently(seq uint32) bool {
	_, ok := st.seen[seq]
	return ok
}

func (st *domainState) remember(seq uint32) {
	if st.sawRecently(seq) {
		return
	}
	if st.ringLen == dupRingSize {
		delete(st.seen, st.ring[st.ringPos])
	} else {
		st.ringLen++
	}
	st.ring[st.ringPos] = seq
	st.seen[seq] = struct{}{}
	st.ringPos = (st.ringPos + 1) % dupRingSize
}

// decoderMetrics aggregate the per-domain sequence accounting across
// all observation domains as registry-ready counters; the per-domain
// DomainStats map remains the exact view, these are its scrapeable sum.
type decoderMetrics struct {
	messages       *telemetry.Counter
	records        *telemetry.Counter
	seqGapRecords  *telemetry.Counter
	seqLateRecords *telemetry.Counter
	duplicates     *telemetry.Counter
	seqResets      *telemetry.Counter
	unknownTplSets *telemetry.Counter
}

// Decoder parses IPFIX messages, keeping per-domain template state and
// sequence-gap accounting.
type Decoder struct {
	mu sync.Mutex
	//bsvet:guards mu
	templates map[uint64][]fieldSpec
	//bsvet:guards mu
	domains map[uint32]*domainState
	m       decoderMetrics
}

// NewDecoder returns an empty decoder.
func NewDecoder() *Decoder {
	return &Decoder{
		templates: make(map[uint64][]fieldSpec),
		domains:   make(map[uint32]*domainState),
		m: decoderMetrics{
			messages:       telemetry.NewCounter(),
			records:        telemetry.NewCounter(),
			seqGapRecords:  telemetry.NewCounter(),
			seqLateRecords: telemetry.NewCounter(),
			duplicates:     telemetry.NewCounter(),
			seqResets:      telemetry.NewCounter(),
			unknownTplSets: telemetry.NewCounter(),
		},
	}
}

// registerTelemetry attaches the decoder's aggregate sequence counters
// to r under the ipfix_decoder_* names.
func (d *Decoder) registerTelemetry(r *telemetry.Registry) {
	r.MustRegister("ipfix_decoder_messages_total", "parsed IPFIX messages (all domains)", d.m.messages)
	r.MustRegister("ipfix_decoder_records_total", "decoded flow records (all domains)", d.m.records)
	r.MustRegister("ipfix_decoder_seq_gap_records_total", "records jumped over by sequence gaps", d.m.seqGapRecords)
	r.MustRegister("ipfix_decoder_seq_late_records_total", "reordered records arriving behind the expected sequence", d.m.seqLateRecords)
	r.MustRegister("ipfix_decoder_duplicate_messages_total", "messages with recently seen sequence numbers", d.m.duplicates)
	r.MustRegister("ipfix_decoder_seq_resets_total", "sequence jumps treated as exporter restarts", d.m.seqResets)
	r.MustRegister("ipfix_decoder_unknown_template_sets_total", "data sets skipped for want of a template", d.m.unknownTplSets)
}

// DomainStats returns a snapshot of the per-observation-domain
// accounting accumulated so far.
func (d *Decoder) DomainStats() map[uint32]DomainStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[uint32]DomainStats, len(d.domains))
	for id, st := range d.domains {
		out[id] = st.stats
	}
	return out
}

func (d *Decoder) domainLocked(id uint32) *domainState {
	st, ok := d.domains[id]
	if !ok {
		st = &domainState{seen: make(map[uint32]struct{})}
		d.domains[id] = st
	}
	return st
}

// Decode parses one IPFIX message and returns its flow records.
//
// Data sets referencing templates the decoder has not seen are skipped
// and counted in the domain's DomainStats rather than dropped silently;
// ErrNoTemplate is returned only when the message yielded nothing at
// all for want of a template. Sequence numbers are checked per domain
// (uint32 wraparound-safe) and gaps, late arrivals, duplicates, and
// restarts are accounted.
func (d *Decoder) Decode(b []byte) ([]flow.Record, error) {
	if len(b) < headerLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != VersionIPFIX {
		return nil, ErrBadVersion
	}
	msgLen := int(binary.BigEndian.Uint16(b[2:]))
	if msgLen < headerLen || msgLen > len(b) {
		return nil, ErrTruncated
	}
	seq := binary.BigEndian.Uint32(b[8:])
	domain := binary.BigEndian.Uint32(b[12:])

	d.mu.Lock()
	defer d.mu.Unlock()

	var out []flow.Record
	templateSets, unknownSets := 0, 0
	off := headerLen
	for off+setHeaderLen <= msgLen {
		setID := binary.BigEndian.Uint16(b[off:])
		setLen := int(binary.BigEndian.Uint16(b[off+2:]))
		if setLen < setHeaderLen || off+setLen > msgLen {
			return nil, ErrBadSet
		}
		content := b[off+setHeaderLen : off+setLen]
		switch {
		case setID == templateSetID:
			if err := d.parseTemplatesLocked(domain, content); err != nil {
				return nil, err
			}
			templateSets++
		case setID >= minDataSetID:
			recs, err := d.parseDataLocked(domain, setID, content)
			if errors.Is(err, ErrNoTemplate) {
				unknownSets++
				break
			}
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		off += setLen
	}

	d.account(domain, seq, len(out), unknownSets)
	if unknownSets > 0 && len(out) == 0 && templateSets == 0 {
		return nil, ErrNoTemplate
	}
	return out, nil
}

// account updates the domain's sequence and drop accounting for one
// parsed message carrying n decoded records. Callers hold d.mu.
func (d *Decoder) account(domain, seq uint32, n, unknownSets int) {
	st := d.domainLocked(domain)
	st.stats.Messages++
	st.stats.Records += uint64(n)
	d.m.messages.Inc()
	d.m.records.Add(uint64(n))
	if unknownSets > 0 {
		st.stats.UnknownTemplateSets += uint64(unknownSets)
		st.stats.UnknownTemplateMessages++
		d.m.unknownTplSets.Add(uint64(unknownSets))
	}

	switch {
	case !st.init:
		st.init = true
		st.expected = seq + uint32(n)
	case !st.countValid:
		// The previous message's record count was incomplete; re-sync
		// without charging a gap we cannot size.
		st.expected = seq + uint32(n)
	default:
		switch diff := int32(seq - st.expected); {
		case diff == 0:
			st.expected = seq + uint32(n)
		case diff > 0 && diff < seqRestartThreshold:
			st.stats.SeqGapRecords += uint64(diff)
			d.m.seqGapRecords.Add(uint64(diff))
			// A gap during an attack window is lost evidence; the flight
			// recorder keeps it next to the detection events it skews.
			eventlog.Active().Emit("ipfix", "ipfix_sequence_gap", 0,
				eventlog.AUint("domain", uint64(domain)),
				eventlog.AUint("expected", uint64(st.expected)),
				eventlog.AUint("got", uint64(seq)),
				eventlog.AUint("gap_records", uint64(diff)))
			st.expected = seq + uint32(n)
		case diff < 0 && diff > -seqRestartThreshold:
			if st.sawRecently(seq) {
				st.stats.DuplicateMessages++
				d.m.duplicates.Inc()
			} else {
				// A reordered message arriving after its gap was
				// charged: its records were not lost after all.
				st.stats.SeqLateRecords += uint64(n)
				d.m.seqLateRecords.Add(uint64(n))
			}
		default:
			st.stats.SeqResets++
			d.m.seqResets.Inc()
			st.expected = seq + uint32(n)
		}
	}
	st.countValid = unknownSets == 0
	st.remember(seq)
}

func (d *Decoder) parseTemplatesLocked(domain uint32, b []byte) error {
	off := 0
	for off+4 <= len(b) {
		tid := binary.BigEndian.Uint16(b[off:])
		count := int(binary.BigEndian.Uint16(b[off+2:]))
		off += 4
		if off+count*4 > len(b) {
			return ErrBadSet
		}
		fields := make([]fieldSpec, count)
		for i := range fields {
			fields[i] = fieldSpec{
				ID:     binary.BigEndian.Uint16(b[off:]),
				Length: binary.BigEndian.Uint16(b[off+2:]),
			}
			off += 4
		}
		d.templates[uint64(domain)<<16|uint64(tid)] = fields
	}
	return nil
}

func (d *Decoder) parseDataLocked(domain uint32, tid uint16, b []byte) ([]flow.Record, error) {
	fields, ok := d.templates[uint64(domain)<<16|uint64(tid)]
	if !ok {
		return nil, ErrNoTemplate
	}
	recLen := 0
	for _, f := range fields {
		recLen += int(f.Length)
	}
	if recLen == 0 {
		return nil, ErrBadSet
	}
	var out []flow.Record
	for off := 0; off+recLen <= len(b); off += recLen {
		var rec flow.Record
		fo := off
		for _, f := range fields {
			v := b[fo : fo+int(f.Length)]
			switch f.ID {
			case ieSourceIPv4Address:
				rec.Src = netutil.Addr4(binary.BigEndian.Uint32(v))
			case ieDestIPv4Address:
				rec.Dst = netutil.Addr4(binary.BigEndian.Uint32(v))
			case iePacketDeltaCount:
				rec.Packets = binary.BigEndian.Uint64(v)
			case ieOctetDeltaCount:
				rec.Bytes = binary.BigEndian.Uint64(v)
			case ieFlowStartMilliseconds:
				rec.Start = time.UnixMilli(int64(binary.BigEndian.Uint64(v))).UTC()
			case ieFlowEndMilliseconds:
				rec.End = time.UnixMilli(int64(binary.BigEndian.Uint64(v))).UTC()
			case ieSourceTransportPort:
				rec.SrcPort = binary.BigEndian.Uint16(v)
			case ieDestTransportPort:
				rec.DstPort = binary.BigEndian.Uint16(v)
			case ieProtocolIdentifier:
				rec.Protocol = v[0]
			case ieBgpSourceAsNumber:
				rec.SrcAS = binary.BigEndian.Uint32(v)
			case ieBgpDestAsNumber:
				rec.DstAS = binary.BigEndian.Uint32(v)
			case ieSamplingInterval:
				rec.SamplingRate = binary.BigEndian.Uint32(v)
			}
			fo += int(f.Length)
		}
		if rec.SamplingRate == 0 {
			rec.SamplingRate = 1
		}
		out = append(out, rec)
	}
	return out, nil
}
