package ipfix

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"booterscope/internal/flow"
)

var exportTime = time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)

func sampleRecords(n int) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:      netip.AddrFrom4([4]byte{10, 1, byte(i >> 8), byte(i)}),
				Dst:      netip.MustParseAddr("203.0.113.50"),
				SrcPort:  123,
				DstPort:  uint16(50000 + i),
				Protocol: 17,
			},
			Packets:      uint64(1000 + i),
			Bytes:        uint64(486000 + i),
			Start:        exportTime.Add(-90 * time.Second),
			End:          exportTime.Add(-30 * time.Second),
			SrcAS:        64512,
			DstAS:        64513,
			SamplingRate: 10000,
		}
	}
	return recs
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := &Encoder{DomainID: 99}
	d := NewDecoder()
	recs := sampleRecords(4)
	msg, err := e.Encode(recs, exportTime)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		want := recs[i]
		if r.Key != want.Key {
			t.Errorf("rec %d key = %+v", i, r.Key)
		}
		if r.Packets != want.Packets || r.Bytes != want.Bytes {
			t.Errorf("rec %d counters = %d/%d", i, r.Packets, r.Bytes)
		}
		if !r.Start.Equal(want.Start) || !r.End.Equal(want.End) {
			t.Errorf("rec %d times = %v..%v", i, r.Start, r.End)
		}
		if r.SamplingRate != 10000 {
			t.Errorf("rec %d sampling = %d", i, r.SamplingRate)
		}
		if r.SrcAS != 64512 || r.DstAS != 64513 {
			t.Errorf("rec %d AS = %d/%d", i, r.SrcAS, r.DstAS)
		}
	}
}

func TestMessageLengthField(t *testing.T) {
	e := &Encoder{DomainID: 1}
	msg, err := e.Encode(sampleRecords(2), exportTime)
	if err != nil {
		t.Fatal(err)
	}
	gotLen := int(msg[2])<<8 | int(msg[3])
	if gotLen != len(msg) {
		t.Errorf("length field = %d, actual %d", gotLen, len(msg))
	}
	if v := int(msg[0])<<8 | int(msg[1]); v != VersionIPFIX {
		t.Errorf("version = %d", v)
	}
}

func TestSequenceCountsRecords(t *testing.T) {
	// IPFIX sequence counts data records, not messages (RFC 7011 §3.1).
	e := &Encoder{DomainID: 1}
	m1, _ := e.Encode(sampleRecords(3), exportTime)
	m2, _ := e.Encode(sampleRecords(2), exportTime)
	seq1 := uint32(m1[8])<<24 | uint32(m1[9])<<16 | uint32(m1[10])<<8 | uint32(m1[11])
	seq2 := uint32(m2[8])<<24 | uint32(m2[9])<<16 | uint32(m2[10])<<8 | uint32(m2[11])
	if seq1 != 0 || seq2 != 3 {
		t.Errorf("sequences = %d, %d; want 0, 3", seq1, seq2)
	}
}

func TestTemplateRefreshCycle(t *testing.T) {
	e := &Encoder{DomainID: 1, TemplateRefresh: 3}
	sizes := make([]int, 6)
	for i := range sizes {
		m, err := e.Encode(sampleRecords(1), exportTime)
		if err != nil {
			t.Fatal(err)
		}
		sizes[i] = len(m)
	}
	// Messages 0 and 3 carry the template and must be larger.
	if !(sizes[0] > sizes[1] && sizes[3] > sizes[4] && sizes[0] == sizes[3]) {
		t.Errorf("sizes = %v; template refresh cycle broken", sizes)
	}
}

func TestDecodeWithoutTemplate(t *testing.T) {
	e := &Encoder{DomainID: 1, TemplateRefresh: 100}
	_, _ = e.Encode(sampleRecords(1), exportTime) // message 0 has template
	dataOnly, _ := e.Encode(sampleRecords(1), exportTime)
	d := NewDecoder()
	if _, err := d.Decode(dataOnly); err != ErrNoTemplate {
		t.Errorf("err = %v, want ErrNoTemplate", err)
	}
}

func TestTemplatesScopedByDomain(t *testing.T) {
	eA := &Encoder{DomainID: 1, TemplateRefresh: 100}
	eB := &Encoder{DomainID: 2, TemplateRefresh: 100}
	d := NewDecoder()
	withTpl, _ := eA.Encode(sampleRecords(1), exportTime)
	if _, err := d.Decode(withTpl); err != nil {
		t.Fatal(err)
	}
	_, _ = eB.Encode(sampleRecords(1), exportTime)
	dataB, _ := eB.Encode(sampleRecords(1), exportTime)
	if _, err := d.Decode(dataB); err != ErrNoTemplate {
		t.Errorf("cross-domain decode err = %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	d := NewDecoder()
	if _, err := d.Decode([]byte{0, 10}); err != ErrTruncated {
		t.Errorf("short err = %v", err)
	}
	e := &Encoder{DomainID: 1}
	msg, _ := e.Encode(sampleRecords(1), exportTime)
	bad := append([]byte(nil), msg...)
	bad[0], bad[1] = 0, 9 // NetFlow v9, not IPFIX
	if _, err := d.Decode(bad); err != ErrBadVersion {
		t.Errorf("version err = %v", err)
	}
	short := append([]byte(nil), msg...)
	short[2], short[3] = 0xff, 0xff // length exceeds buffer
	if _, err := d.Decode(short); err != ErrTruncated {
		t.Errorf("length err = %v", err)
	}
	corrupt := append([]byte(nil), msg...)
	corrupt[headerLen+2], corrupt[headerLen+3] = 0, 1 // set length < 4
	if _, err := d.Decode(corrupt); err != ErrBadSet {
		t.Errorf("set err = %v", err)
	}
}

func TestZeroSamplingRateNormalized(t *testing.T) {
	e := &Encoder{DomainID: 1}
	recs := sampleRecords(1)
	recs[0].SamplingRate = 0
	msg, _ := e.Encode(recs, exportTime)
	d := NewDecoder()
	got, err := d.Decode(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].SamplingRate != 1 {
		t.Errorf("sampling = %d, want 1", got[0].SamplingRate)
	}
}

func TestUDPExportCollect(t *testing.T) {
	col, err := NewCollector("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()

	var mu sync.Mutex
	var received []flow.Record
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = col.Run(func(recs []flow.Record) {
			mu.Lock()
			received = append(received, recs...)
			mu.Unlock()
		})
	}()

	exp, err := NewExporter(col.Addr().String(), 7)
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()

	want := sampleRecords(5)
	for i := 0; i < 3; i++ {
		if err := exp.Export(want, exportTime); err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		n := len(received)
		mu.Unlock()
		if n >= 15 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d records, want 15", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	col.Close()
	<-done

	mu.Lock()
	defer mu.Unlock()
	if received[0].Key != want[0].Key {
		t.Errorf("first record key = %+v", received[0].Key)
	}
}

func BenchmarkEncode(b *testing.B) {
	e := &Encoder{DomainID: 1, TemplateRefresh: 1 << 30}
	recs := sampleRecords(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encode(recs, exportTime); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecode(b *testing.B) {
	e := &Encoder{DomainID: 1}
	d := NewDecoder()
	msg, _ := e.Encode(sampleRecords(50), exportTime)
	b.ReportAllocs()
	b.SetBytes(int64(len(msg)))
	for i := 0; i < b.N; i++ {
		if _, err := d.Decode(msg); err != nil {
			b.Fatal(err)
		}
	}
}
