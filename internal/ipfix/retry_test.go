package ipfix

import (
	"errors"
	"net"
	"testing"
	"time"

	"booterscope/internal/netutil"
)

// flakyConn is a net.Conn whose first failN writes fail.
type flakyConn struct {
	failN  int
	writes int
	sent   [][]byte
}

var errFlaky = errors.New("transient send error")

func (c *flakyConn) Write(b []byte) (int, error) {
	c.writes++
	if c.writes <= c.failN {
		return 0, errFlaky
	}
	msg := make([]byte, len(b))
	copy(msg, b)
	c.sent = append(c.sent, msg)
	return len(b), nil
}

func (c *flakyConn) Read(b []byte) (int, error)       { return 0, errors.New("not readable") }
func (c *flakyConn) Close() error                     { return nil }
func (c *flakyConn) LocalAddr() net.Addr              { return nil }
func (c *flakyConn) RemoteAddr() net.Addr             { return nil }
func (c *flakyConn) SetDeadline(time.Time) error      { return nil }
func (c *flakyConn) SetReadDeadline(time.Time) error  { return nil }
func (c *flakyConn) SetWriteDeadline(time.Time) error { return nil }

// retryExporter wires a flaky conn into an exporter with captured
// sleeps and a seeded backoff.
func retryExporter(failN, maxAttempts int, seed uint64) (*Exporter, *flakyConn, *[]time.Duration) {
	fc := &flakyConn{failN: failN}
	e := NewExporterConn(fc, 1)
	e.SetRetry(RetryPolicy{
		MaxAttempts: maxAttempts,
		Backoff: netutil.Backoff{
			Base: 10 * time.Millisecond,
			Max:  100 * time.Millisecond,
			Rand: netutil.NewRand(seed),
		},
	})
	var slept []time.Duration
	e.sleep = func(d time.Duration) { slept = append(slept, d) }
	return e, fc, &slept
}

func TestExporterRetriesThenSucceeds(t *testing.T) {
	e, fc, slept := retryExporter(2, 4, 5)
	if err := e.Export(sampleRecords(3), exportTime); err != nil {
		t.Fatalf("export failed despite retry budget: %v", err)
	}
	if fc.writes != 3 {
		t.Errorf("writes = %d, want 3 (2 failures + 1 success)", fc.writes)
	}
	st := e.Stats()
	if st.Retries != 2 || st.Failures != 0 {
		t.Errorf("retries/failures = %d/%d, want 2/0", st.Retries, st.Failures)
	}
	if st.Messages != 1 || st.Records != 3 {
		t.Errorf("messages/records = %d/%d, want 1/3", st.Messages, st.Records)
	}
	// The delays are the seeded backoff sequence: same seed, same
	// jittered delays, each within its attempt's [c/2, c) window.
	want := netutil.Backoff{
		Base: 10 * time.Millisecond,
		Max:  100 * time.Millisecond,
		Rand: netutil.NewRand(5),
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		if w := want.Delay(i); d != w {
			t.Errorf("retry %d slept %v, want seeded %v", i, d, w)
		}
	}
}

func TestExporterExhaustsAttempts(t *testing.T) {
	e, fc, slept := retryExporter(0, 3, 5)
	// Message 0 (with template) delivers cleanly.
	if err := e.Export(sampleRecords(1), exportTime); err != nil {
		t.Fatal(err)
	}
	// Message 1 dies on every attempt.
	fc.failN = fc.writes + 3
	err := e.Export(sampleRecords(4), exportTime)
	if err == nil {
		t.Fatal("no error after exhausting attempts")
	}
	if !errors.Is(err, errFlaky) {
		t.Errorf("error %v does not wrap the transport error", err)
	}
	if fc.writes != 4 {
		t.Errorf("writes = %d, want 4 (1 success + MaxAttempts=3)", fc.writes)
	}
	if len(*slept) != 2 {
		t.Errorf("slept %d times, want 2 (between 3 attempts)", len(*slept))
	}
	st := e.Stats()
	if st.Failures != 1 || st.Messages != 1 {
		t.Errorf("failures/messages = %d/%d, want 1/1", st.Failures, st.Messages)
	}
	// The abandoned message still consumed sequence numbers, so its 4
	// records surface at the collector as an accounted gap instead of
	// vanishing.
	if err := e.Export(sampleRecords(2), exportTime); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	for _, msg := range fc.sent {
		if _, err := d.Decode(msg); err != nil {
			t.Fatal(err)
		}
	}
	if st := d.DomainStats()[1]; st.SeqGapRecords != 4 || st.LostRecords() != 4 {
		t.Errorf("gap/lost = %d/%d, want 4/4 for the abandoned message", st.SeqGapRecords, st.LostRecords())
	}
}

func TestExporterRedialsAndResendsTemplate(t *testing.T) {
	bad := &flakyConn{failN: 1000}
	good := &flakyConn{}
	e := NewExporterConn(bad, 1)
	e.dial = func() (net.Conn, error) { return good, nil }
	e.SetRetry(RetryPolicy{MaxAttempts: 2, Backoff: netutil.Backoff{Base: time.Microsecond, Max: time.Microsecond}})
	e.sleep = func(time.Duration) {}

	// Message 0 (with template) dies on the bad conn, then the redial
	// delivers it through the good one.
	if err := e.Export(sampleRecords(1), exportTime); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Redials != 1 {
		t.Fatalf("redials = %d, want 1", st.Redials)
	}
	// The redial forces a template on the following message even
	// though the default refresh cycle (20) would omit it.
	if err := e.Export(sampleRecords(1), exportTime); err != nil {
		t.Fatal(err)
	}
	if len(good.sent) != 2 {
		t.Fatalf("good conn carried %d messages, want 2", len(good.sent))
	}
	d := NewDecoder()
	// Decoding only the second message must succeed: it carries the
	// re-sent template.
	if _, err := d.Decode(good.sent[1]); err != nil {
		t.Fatalf("second message not self-describing after redial: %v", err)
	}
}

func TestExporterResendTemplateOnDemand(t *testing.T) {
	fc := &flakyConn{}
	e := NewExporterConn(fc, 1)
	for i := 0; i < 3; i++ {
		if err := e.Export(sampleRecords(1), exportTime); err != nil {
			t.Fatal(err)
		}
	}
	e.ResendTemplate()
	if err := e.Export(sampleRecords(1), exportTime); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder()
	if _, err := d.Decode(fc.sent[3]); err != nil {
		t.Fatalf("message after ResendTemplate not self-describing: %v", err)
	}
	// Messages 1 and 2 are data-only (inside the refresh cycle).
	d2 := NewDecoder()
	if _, err := d2.Decode(fc.sent[1]); err != ErrNoTemplate {
		t.Fatalf("mid-cycle message err = %v, want ErrNoTemplate", err)
	}
}
