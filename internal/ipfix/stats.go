package ipfix

import "fmt"

// DomainStats is the per-observation-domain accounting a Decoder keeps
// while parsing a message stream. IPFIX sequence numbers count data
// records modulo 2^32 (RFC 7011 §3.1); tracking them per domain makes
// transport loss visible: a collector that never checks them cannot
// tell a quiet exporter from a lossy path.
type DomainStats struct {
	// Messages and Records count successfully parsed messages and the
	// data records decoded from them.
	Messages uint64
	Records  uint64
	// SeqGapRecords accumulates records jumped over when a message
	// arrives with a sequence number ahead of the expected one.
	SeqGapRecords uint64
	// SeqLateRecords counts records that arrived behind the expected
	// sequence number (reordered in transit): their gap was charged to
	// SeqGapRecords when the stream jumped ahead, so true loss is
	// SeqGapRecords - SeqLateRecords (see LostRecords).
	SeqLateRecords uint64
	// DuplicateMessages counts messages whose sequence number was
	// already seen recently (duplicated in transit).
	DuplicateMessages uint64
	// SeqResets counts sequence jumps too large to be plausible loss,
	// treated as exporter restarts: accounting re-synchronizes without
	// charging a gap.
	SeqResets uint64
	// UnknownTemplateSets counts data sets skipped because their
	// template is not (yet) known; UnknownTemplateMessages counts
	// messages containing at least one such set. RFC 7011 collectors
	// drop these while awaiting a template refresh — here the drop is
	// accounted instead of silent.
	UnknownTemplateSets     uint64
	UnknownTemplateMessages uint64
}

// LostRecords reports the records lost in transit for good: sequence
// gaps minus late arrivals that later filled them.
func (s DomainStats) LostRecords() uint64 {
	if s.SeqLateRecords >= s.SeqGapRecords {
		return 0
	}
	return s.SeqGapRecords - s.SeqLateRecords
}

// CollectorStats is a point-in-time snapshot of a Collector's
// accounting across the socket, the ingest queue, and the decoder.
type CollectorStats struct {
	// Messages and Bytes count datagrams read off the socket.
	Messages uint64
	Bytes    uint64
	// Shed counts datagrams dropped because the bounded ingest queue
	// was full — explicit load-shedding instead of blocking the reader
	// and losing datagrams invisibly in the kernel.
	Shed uint64
	// DecodeErrors counts undecodable messages (truncated, malformed,
	// wrong version); NoTemplate counts messages dropped entirely for
	// want of a template.
	DecodeErrors uint64
	NoTemplate   uint64
	// Records counts records handed to the run callback.
	Records uint64
	// Domains holds the decoder's per-observation-domain accounting.
	Domains map[uint32]DomainStats
}

// LostRecords sums transit loss over all observation domains.
func (s CollectorStats) LostRecords() uint64 {
	var n uint64
	for _, d := range s.Domains {
		n += d.LostRecords()
	}
	return n
}

// Health condenses CollectorStats into the operational question: has
// anything been lost, and where?
type Health struct {
	OK           bool
	LostRecords  uint64
	Shed         uint64
	DecodeErrors uint64
}

// String formats the health snapshot as a log line.
func (h Health) String() string {
	if h.OK {
		return "healthy: no record loss"
	}
	return fmt.Sprintf("degraded: %d records lost in transit, %d datagrams shed, %d undecodable messages",
		h.LostRecords, h.Shed, h.DecodeErrors)
}

// ExporterStats is a snapshot of an Exporter's delivery accounting.
type ExporterStats struct {
	// Messages and Records count successful sends.
	Messages uint64
	Records  uint64
	// Retries counts re-send attempts after transient errors; Redials
	// counts socket replacements made while retrying.
	Retries uint64
	Redials uint64
	// Failures counts messages abandoned after exhausting all
	// attempts. Their records appear at the collector as a sequence
	// gap, so loss stays accounted end to end.
	Failures uint64
}
