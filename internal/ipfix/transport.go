package ipfix

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/netutil"
	"booterscope/internal/telemetry"
)

// RetryPolicy bounds how hard an Exporter tries to deliver a message
// before giving up.
type RetryPolicy struct {
	// MaxAttempts is the total number of send attempts per message
	// (default 4).
	MaxAttempts int
	// Backoff spaces the retries; see netutil.Backoff for defaults.
	// Seed Backoff.Rand for reproducible jitter.
	Backoff netutil.Backoff
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

// exporterMetrics are the exporter's delivery counters. They are plain
// telemetry atomics owned by the instance; ExporterStats is a thin view
// over them, and RegisterTelemetry attaches the same objects to a
// registry so a scrape and Stats() can never disagree.
type exporterMetrics struct {
	messages *telemetry.Counter
	records  *telemetry.Counter
	retries  *telemetry.Counter
	redials  *telemetry.Counter
	failures *telemetry.Counter
	// backoff records every computed retry delay in seconds; attempts
	// counts retries by attempt number, so invisible-in-logs backoff
	// timing (netutil.Backoff) becomes a scrapeable distribution.
	backoff  *telemetry.Histogram
	attempts *telemetry.CounterVec
}

func newExporterMetrics() exporterMetrics {
	return exporterMetrics{
		messages: telemetry.NewCounter(),
		records:  telemetry.NewCounter(),
		retries:  telemetry.NewCounter(),
		redials:  telemetry.NewCounter(),
		failures: telemetry.NewCounter(),
		backoff:  telemetry.NewHistogram(),
		attempts: telemetry.NewCounterVec("attempt").SetMaxCardinality(16),
	}
}

// Exporter ships IPFIX messages to a collector over UDP, retrying
// transient send errors with exponential backoff and re-dialing the
// collector between attempts.
type Exporter struct {
	mu sync.Mutex
	//bsvet:guards mu
	conn net.Conn
	dial func() (net.Conn, error)
	//bsvet:guards mu
	enc   Encoder
	retry RetryPolicy
	sleep func(time.Duration)
	m     exporterMetrics
}

// NewExporter dials the collector at addr ("host:port").
func NewExporter(addr string, domainID uint32) (*Exporter, error) {
	dial := func() (net.Conn, error) { return net.Dial("udp", addr) }
	conn, err := dial()
	if err != nil {
		return nil, fmt.Errorf("ipfix: dialing collector: %w", err)
	}
	e := NewExporterConn(conn, domainID)
	e.dial = dial
	return e, nil
}

// NewExporterConn wraps an existing connection (an alternative
// transport, or a fake conn under test). Without a dialer the exporter
// retries sends but cannot re-dial.
func NewExporterConn(conn net.Conn, domainID uint32) *Exporter {
	return &Exporter{
		conn:  conn,
		enc:   Encoder{DomainID: domainID},
		sleep: time.Sleep, //bsvet:allow determinism exporter backoff waits on host time; tests inject a fake sleeper
		m:     newExporterMetrics(),
	}
}

// RegisterTelemetry attaches the exporter's delivery counters to r
// under the ipfix_exporter_* names. Call once per process; registering
// two exporters on one registry is a wiring bug and panics.
func (e *Exporter) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister("ipfix_exporter_messages_total", "IPFIX messages delivered", e.m.messages)
	r.MustRegister("ipfix_exporter_records_total", "flow records delivered", e.m.records)
	r.MustRegister("ipfix_exporter_retries_total", "send attempts after transient errors", e.m.retries)
	r.MustRegister("ipfix_exporter_redials_total", "socket replacements while retrying", e.m.redials)
	r.MustRegister("ipfix_exporter_failures_total", "messages abandoned after all attempts", e.m.failures)
	r.MustRegister("ipfix_exporter_backoff_seconds", "computed retry backoff delays", e.m.backoff)
	r.MustRegister("ipfix_exporter_retry_attempts_total", "retries by attempt number", e.m.attempts)
}

// SetRetry replaces the exporter's retry policy.
func (e *Exporter) SetRetry(p RetryPolicy) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.retry = p
}

// SetTemplateRefresh sets the template refresh period in messages
// (1 = every message carries the template; see Encoder.TemplateRefresh).
// Lossy paths want short periods: until the next template message, a
// collector that missed the template cannot decode the domain's data.
func (e *Exporter) SetTemplateRefresh(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enc.TemplateRefresh = n
}

// ResendTemplate forces the next message to carry the template set —
// on-demand retransmission for a collector known to be missing it.
func (e *Exporter) ResendTemplate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.enc.ForceTemplate()
}

// Stats returns a snapshot of the exporter's delivery accounting — a
// view over the same telemetry counters RegisterTelemetry exposes.
func (e *Exporter) Stats() ExporterStats {
	return ExporterStats{
		Messages: e.m.messages.Value(),
		Records:  e.m.records.Value(),
		Retries:  e.m.retries.Value(),
		Redials:  e.m.redials.Value(),
		Failures: e.m.failures.Value(),
	}
}

// Export encodes and sends one message, retrying per the retry policy.
// The sequence number advances even when every attempt fails, so the
// abandoned records surface at the collector as an accounted sequence
// gap rather than vanishing.
func (e *Exporter) Export(records []flow.Record, exportTime time.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	msg, err := e.enc.Encode(records, exportTime)
	if err != nil {
		return err
	}
	attempts := e.retry.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			// Each retry's computed backoff delay and attempt number go
			// through the telemetry registry: retry timing is a
			// distribution, not an invisible sleep.
			delay := e.retry.Backoff.Delay(a - 1)
			e.m.retries.Inc()
			e.m.backoff.ObserveDuration(delay)
			e.m.attempts.With(strconv.Itoa(a)).Inc()
			e.sleep(delay)
			e.redialLocked()
		}
		if _, err := e.conn.Write(msg); err != nil {
			lastErr = err
			continue
		}
		e.m.messages.Inc()
		e.m.records.Add(uint64(len(records)))
		return nil
	}
	e.m.failures.Inc()
	// The lost message may have carried the template; re-send it with
	// the next message so the collector is never stranded undecodable.
	e.enc.ForceTemplate()
	return fmt.Errorf("ipfix: sending message (%d attempts): %w", attempts, lastErr)
}

// redialLocked replaces the socket before a retry; callers hold e.mu.
// A fresh socket may reach a restarted collector with empty template
// state, so the template is re-sent with the next message.
func (e *Exporter) redialLocked() {
	if e.dial == nil {
		return
	}
	nc, err := e.dial()
	if err != nil {
		return
	}
	e.conn.Close()
	e.conn = nc
	e.m.redials.Inc()
	e.enc.ForceTemplate()
}

// Close releases the exporter's socket.
func (e *Exporter) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.conn.Close()
}

// DefaultQueueSize is the default bound of the collector's ingest
// queue.
const DefaultQueueSize = 1024

// Collector receives IPFIX messages over UDP and hands decoded records
// to a callback. A bounded ingest queue decouples the socket reader
// from decoding: under overload the collector sheds whole datagrams
// with explicit accounting instead of stalling the reader and letting
// the kernel drop invisibly.
type Collector struct {
	conn net.PacketConn
	dec  *Decoder

	// QueueSize bounds the ingest queue between the socket reader and
	// the decode worker (default DefaultQueueSize). Set before Run.
	QueueSize int

	messages     *telemetry.Counter
	bytes        *telemetry.Counter
	shed         *telemetry.Counter
	decodeErrors *telemetry.Counter
	noTemplate   *telemetry.Counter
	records      *telemetry.Counter
	// queueHigh is the ingest queue's depth high-watermark: how close
	// the collector came to shedding since start.
	queueHigh *telemetry.Gauge

	// handler is the decoded-batch callback as an atomically swappable
	// slot: SetHandler replaces it while Run keeps reading the same
	// socket, so a config reload never drops the UDP listener (and the
	// datagrams the kernel would discard while it was down).
	handler atomic.Pointer[func([]flow.Record)]
	// queue is the live ingest queue, retained for depth probes.
	queue chan []byte

	mu sync.Mutex
	//bsvet:guards mu
	closed bool
}

// NewCollector listens on addr (e.g. "127.0.0.1:0").
func NewCollector(addr string) (*Collector, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ipfix: listening: %w", err)
	}
	return &Collector{
		conn:         conn,
		dec:          NewDecoder(),
		messages:     telemetry.NewCounter(),
		bytes:        telemetry.NewCounter(),
		shed:         telemetry.NewCounter(),
		decodeErrors: telemetry.NewCounter(),
		noTemplate:   telemetry.NewCounter(),
		records:      telemetry.NewCounter(),
		queueHigh:    telemetry.NewGauge(),
	}, nil
}

// RegisterTelemetry attaches the collector's accounting — socket,
// queue, decode, and the decoder's aggregate sequence counters — to r
// under the ipfix_collector_* and ipfix_decoder_* names.
func (c *Collector) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister("ipfix_collector_messages_total", "datagrams read off the socket", c.messages)
	r.MustRegister("ipfix_collector_bytes_total", "bytes read off the socket", c.bytes)
	r.MustRegister("ipfix_collector_shed_total", "datagrams dropped at the full ingest queue", c.shed)
	r.MustRegister("ipfix_collector_decode_errors_total", "undecodable messages", c.decodeErrors)
	r.MustRegister("ipfix_collector_no_template_total", "messages dropped for want of a template", c.noTemplate)
	r.MustRegister("ipfix_collector_records_total", "flow records handed to the run callback", c.records)
	r.MustRegister("ipfix_collector_queue_depth_high_watermark", "peak ingest queue depth", c.queueHigh)
	c.dec.registerTelemetry(r)
}

// Addr reports the collector's bound address.
func (c *Collector) Addr() net.Addr { return c.conn.LocalAddr() }

// Stats returns a snapshot of the collector's accounting, including
// the decoder's per-observation-domain sequence and template state.
func (c *Collector) Stats() CollectorStats {
	return CollectorStats{
		Messages:     c.messages.Value(),
		Bytes:        c.bytes.Value(),
		Shed:         c.shed.Value(),
		DecodeErrors: c.decodeErrors.Value(),
		NoTemplate:   c.noTemplate.Value(),
		Records:      c.records.Value(),
		Domains:      c.dec.DomainStats(),
	}
}

// Health condenses Stats into an operational verdict.
func (c *Collector) Health() Health {
	s := c.Stats()
	h := Health{
		LostRecords:  s.LostRecords(),
		Shed:         s.Shed,
		DecodeErrors: s.DecodeErrors + s.NoTemplate,
	}
	h.OK = h.LostRecords == 0 && h.Shed == 0 && h.DecodeErrors == 0
	return h
}

// SetHandler replaces the decoded-batch callback without touching the
// socket: batches decoded after the swap go to the new handler. This
// is the reload path — a daemon re-wiring its pipeline on SIGHUP keeps
// its UDP listener (and loses no datagrams to a close/reopen window).
func (c *Collector) SetHandler(handle func([]flow.Record)) {
	c.handler.Store(&handle)
}

// QueueDepth probes the ingest queue: its current depth and capacity.
// (0, 0) before Run. Overload evaluation uses the ratio as its
// queue-pressure signal.
func (c *Collector) QueueDepth() (depth, capacity int) {
	c.mu.Lock()
	q := c.queue
	c.mu.Unlock()
	if q == nil {
		return 0, 0
	}
	return len(q), cap(q)
}

// Run reads messages until Close is called, invoking handle for each
// decoded batch (from a single worker goroutine, so handle needs no
// locking of its own; swap it live with SetHandler). Undecodable
// messages, unknown-template drops, shed datagrams, and sequence gaps
// are all accounted in Stats; the queue is drained before Run returns.
func (c *Collector) Run(handle func([]flow.Record)) error {
	c.SetHandler(handle)
	qsize := c.QueueSize
	if qsize <= 0 {
		qsize = DefaultQueueSize
	}
	queue := make(chan []byte, qsize)
	c.mu.Lock()
	c.queue = queue
	c.mu.Unlock()
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		for msg := range queue {
			recs, err := c.dec.Decode(msg)
			if err != nil {
				if errors.Is(err, ErrNoTemplate) {
					c.noTemplate.Inc()
				} else {
					c.decodeErrors.Inc()
				}
				continue
			}
			if len(recs) > 0 {
				c.records.Add(uint64(len(recs)))
				(*c.handler.Load())(recs)
			}
		}
	}()

	buf := make([]byte, 65535)
	var runErr error
	for {
		n, _, err := c.conn.ReadFrom(buf)
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if !closed {
				runErr = fmt.Errorf("ipfix: receiving: %w", err)
			}
			break
		}
		c.messages.Inc()
		c.bytes.Add(uint64(n))
		msg := make([]byte, n)
		copy(msg, buf[:n])
		select {
		case queue <- msg:
			c.queueHigh.SetMax(float64(len(queue)))
		default:
			c.shed.Inc() // load-shed: never block the socket reader
		}
	}
	close(queue)
	<-workerDone
	return runErr
}

// Close stops the collector.
func (c *Collector) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}
