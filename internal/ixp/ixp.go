// Package ixp simulates the Internet exchange point fabric the study's
// measurement AS connects to: member ASes on the peering LAN, a route
// server for multilateral peering, a transit provider reachable over the
// same physical port, per-second traffic handover, port saturation with
// BGP session flapping, and the platform's sampled flow export.
//
// The handover model reproduces the study's key observations: with the
// transit link enabled most attack traffic (~80 %) arrives via transit
// because many source networks prefer their own upstream paths; with
// transit disabled ("no transit" experiments) more IXP members hand over
// traffic directly but total volume drops because networks without a
// peering path cannot reach the measurement prefix at all.
package ixp

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"

	"booterscope/internal/bgp"
	"booterscope/internal/flow"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
	"booterscope/internal/sampling"
	"booterscope/internal/sflow"
)

// Errors returned by the fabric.
var (
	ErrNotConnected = errors.New("ixp: measurement AS not connected")
	ErrUnknownAS    = errors.New("ixp: unknown member AS")
)

// Member is one network connected to the IXP peering LAN.
type Member struct {
	ASN uint32
	// PortCapacity bounds what the member can hand over per second.
	PortCapacity netutil.Bitrate
	// PrefersOwnTransit marks members whose routing policy prefers their
	// own upstream over IXP peering when both paths exist. Their traffic
	// reaches the measurement AS through its transit link while that link
	// is up.
	PrefersOwnTransit bool
	// RIB is the member's routing table.
	RIB *bgp.RIB
}

// Config configures a fabric.
type Config struct {
	// RouteServerASN is the route server's AS (display only).
	RouteServerASN uint32
	// TransitASN is the upstream transit provider of the measurement AS.
	TransitASN uint32
	// PlatformSamplingRate is the 1-in-N rate of the IXP's IPFIX export.
	PlatformSamplingRate uint32
	// Seed drives the platform sampler.
	Seed uint64
	// TransitHoldTime and TransitReconnectTime override the measurement
	// AS transit session's BGP hold/reconnect behaviour in seconds
	// (defaults 180/90; see bgp.Session).
	TransitHoldTime      int
	TransitReconnectTime int
}

// Fabric is the simulated exchange.
type Fabric struct {
	cfg     Config
	rs      *bgp.RouteServer
	members map[uint32]*Member

	meas *measurement
	rand *netutil.Rand
}

// measurement is the connected measurement AS state.
type measurement struct {
	asn          uint32
	prefix       netip.Prefix
	portCapacity netutil.Bitrate
	transit      *bgp.Session
	transitOn    bool // operator's choice; session state is separate
	rib          *bgp.RIB
	// blackholed holds /32s announced with the RTBH community; members
	// and the transit provider drop traffic toward them at their edge.
	blackholed map[netip.Addr]bool
	// flowspec holds the active filtering rules all neighbors apply.
	flowspec []bgp.FlowSpecRule
}

// New builds an empty fabric.
func New(cfg Config) *Fabric {
	if cfg.PlatformSamplingRate == 0 {
		cfg.PlatformSamplingRate = 10000
	}
	return &Fabric{
		cfg:     cfg,
		rs:      bgp.NewRouteServer(cfg.RouteServerASN),
		members: make(map[uint32]*Member),
		rand:    netutil.NewRand(cfg.Seed).Fork("fabric"),
	}
}

// AddMember connects a member AS to the peering LAN.
func (f *Fabric) AddMember(asn uint32, capacity netutil.Bitrate, prefersOwnTransit bool) *Member {
	m := &Member{
		ASN:               asn,
		PortCapacity:      capacity,
		PrefersOwnTransit: prefersOwnTransit,
		RIB:               bgp.NewRIB(),
	}
	f.members[asn] = m
	f.rs.Join(asn, m.RIB)
	return m
}

// Members returns the member count.
func (f *Fabric) Members() int { return len(f.members) }

// Member returns a member by ASN.
func (f *Fabric) Member(asn uint32) (*Member, error) {
	m, ok := f.members[asn]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownAS, asn)
	}
	return m, nil
}

// ConnectMeasurementAS attaches the experiment AS: a port of the given
// capacity, a /24 announced via the route server to all members, and a
// transit session over the same physical interface.
func (f *Fabric) ConnectMeasurementAS(asn uint32, prefix netip.Prefix, capacity netutil.Bitrate) error {
	rib := bgp.NewRIB()
	f.rs.Join(asn, rib)
	if err := f.rs.Announce(asn, prefix); err != nil {
		return fmt.Errorf("ixp: announcing measurement prefix: %w", err)
	}
	transit := bgp.NewSession(asn, f.cfg.TransitASN)
	if f.cfg.TransitHoldTime > 0 {
		transit.HoldTime = f.cfg.TransitHoldTime
	}
	if f.cfg.TransitReconnectTime > 0 {
		transit.ReconnectTime = f.cfg.TransitReconnectTime
	}
	transit.Establish()
	f.meas = &measurement{
		asn:          asn,
		prefix:       prefix,
		portCapacity: capacity,
		transit:      transit,
		transitOn:    true,
		rib:          rib,
		blackholed:   make(map[netip.Addr]bool),
	}
	return nil
}

// AnnounceBlackhole requests RTBH for one address of the measurement
// prefix: a /32 tagged with the blackhole community goes to the route
// server and the transit provider, and all neighbors start dropping
// traffic toward it. This is the paper's ethics safety valve for
// runaway self-attacks.
func (f *Fabric) AnnounceBlackhole(addr netip.Addr) error {
	if f.meas == nil {
		return ErrNotConnected
	}
	if !f.meas.prefix.Contains(addr) {
		return fmt.Errorf("ixp: %v is outside the measurement prefix %v", addr, f.meas.prefix)
	}
	host := netip.PrefixFrom(addr, 32)
	if err := f.rs.AnnounceWithCommunities(f.meas.asn, host, []uint32{bgp.BlackholeCommunity}); err != nil {
		return err
	}
	f.meas.blackholed[addr] = true
	return nil
}

// WithdrawBlackhole removes the RTBH announcement for addr.
func (f *Fabric) WithdrawBlackhole(addr netip.Addr) error {
	if f.meas == nil {
		return ErrNotConnected
	}
	f.rs.Withdraw(f.meas.asn, netip.PrefixFrom(addr, 32))
	delete(f.meas.blackholed, addr)
	return nil
}

// IsBlackholed reports whether traffic toward addr is being dropped at
// the neighbors' edges.
func (f *Fabric) IsBlackholed(addr netip.Addr) bool {
	return f.meas != nil && f.meas.blackholed[addr]
}

// AnnounceFlowSpec distributes a FlowSpec filtering rule to all
// neighbors. Unlike RTBH blackholing, a rule can discard only the
// attack traffic (e.g. UDP src port 123, packets >= 200 bytes) and keep
// the victim reachable.
func (f *Fabric) AnnounceFlowSpec(rule bgp.FlowSpecRule) error {
	if f.meas == nil {
		return ErrNotConnected
	}
	if !rule.Dst.IsValid() || !f.meas.prefix.Overlaps(rule.Dst) {
		return fmt.Errorf("ixp: flowspec rule %v outside the measurement prefix %v", rule.Dst, f.meas.prefix)
	}
	// Validate the rule by round-tripping its NLRI encoding, as a real
	// speaker would before propagating it.
	wire, err := rule.Encode()
	if err != nil {
		return fmt.Errorf("ixp: encoding flowspec rule: %w", err)
	}
	decoded, err := bgp.DecodeFlowSpec(wire)
	if err != nil {
		return fmt.Errorf("ixp: flowspec rule does not round-trip: %w", err)
	}
	f.meas.flowspec = append(f.meas.flowspec, decoded)
	return nil
}

// WithdrawFlowSpec removes all rules covering dst.
func (f *Fabric) WithdrawFlowSpec(dst netip.Prefix) error {
	if f.meas == nil {
		return ErrNotConnected
	}
	kept := f.meas.flowspec[:0]
	for _, r := range f.meas.flowspec {
		if r.Dst != dst {
			kept = append(kept, r)
		}
	}
	f.meas.flowspec = kept
	return nil
}

// FlowSpecRules reports the number of active rules.
func (f *Fabric) FlowSpecRules() int {
	if f.meas == nil {
		return 0
	}
	return len(f.meas.flowspec)
}

// flowSpecDiscards reports whether any rule discards this source’s
// traffic toward dst.
func (f *Fabric) flowSpecDiscards(dst netip.Addr, src SourceTraffic) bool {
	for _, r := range f.meas.flowspec {
		if r.Matches(dst, packet.IPProtoUDP, src.SrcPort, src.PacketSize) {
			return true
		}
	}
	return false
}

// MeasurementASN returns the connected measurement AS number.
func (f *Fabric) MeasurementASN() (uint32, error) {
	if f.meas == nil {
		return 0, ErrNotConnected
	}
	return f.meas.asn, nil
}

// SetTransit enables or disables the measurement AS's transit link (the
// "no transit" experiment switch). Disabling withdraws the prefix from
// the global table; only IXP peers can then deliver traffic.
func (f *Fabric) SetTransit(enabled bool) error {
	if f.meas == nil {
		return ErrNotConnected
	}
	f.meas.transitOn = enabled
	if enabled {
		f.meas.transit.Establish()
	} else {
		f.meas.transit.Flap()
	}
	return nil
}

// TransitUp reports whether the transit path is currently usable: the
// operator has it enabled and the BGP session is established.
func (f *Fabric) TransitUp() bool {
	return f.meas != nil && f.meas.transitOn && f.meas.transit.State() == bgp.StateEstablished
}

// TransitFlaps reports how many times the transit session flapped.
func (f *Fabric) TransitFlaps() (int, error) {
	if f.meas == nil {
		return 0, ErrNotConnected
	}
	return f.meas.transit.Flaps(), nil
}

// SourceTraffic is one second of traffic from one origin AS toward the
// measurement prefix.
type SourceTraffic struct {
	// AS is the origin AS of the senders.
	AS uint32
	// Bytes and Packets are the offered load for this second.
	Bytes   uint64
	Packets uint64
	// SrcPort and PacketSize describe the traffic for FlowSpec matching
	// (0 when unknown). Amplification attacks carry the vector's service
	// port and response packet size.
	SrcPort    uint16
	PacketSize int
}

// Handover is the outcome of delivering one second of traffic.
type Handover struct {
	// ViaTransitBytes arrived over the measurement AS's transit link.
	ViaTransitBytes   uint64
	ViaTransitPackets uint64
	// ViaPeering arrived across the peering LAN, keyed by handing-over
	// member AS.
	ViaPeeringBytes   map[uint32]uint64
	ViaPeeringPackets map[uint32]uint64
	// UnreachableBytes was offered by networks with no path (transit
	// down and no peering route).
	UnreachableBytes uint64
	// DroppedBytes exceeded the measurement port capacity.
	DroppedBytes uint64
	// MemberDroppedBytes were clipped at individual members' peering
	// ports before reaching the LAN (per handing-over member).
	MemberDroppedBytes map[uint32]uint64
	// FlowSpecFilteredBytes were discarded at the neighbors' edges by
	// FlowSpec rules before reaching the port.
	FlowSpecFilteredBytes uint64
	// Utilization is offered/capacity on the measurement port (can
	// exceed 1 before drops are applied).
	Utilization float64
	// TransitFlapped reports whether this second's saturation flapped
	// the transit BGP session.
	TransitFlapped bool
}

// PeeringBytesTotal sums the peering handover.
func (h *Handover) PeeringBytesTotal() uint64 {
	var total uint64
	for _, b := range h.ViaPeeringBytes {
		total += b
	}
	return total
}

// DeliveredBytes is everything that reached the measurement port and fit
// its capacity.
func (h *Handover) DeliveredBytes() uint64 {
	return h.ViaTransitBytes + h.PeeringBytesTotal() - h.DroppedBytes
}

// PeerCount reports how many member ASes handed over traffic.
func (h *Handover) PeerCount() int { return len(h.ViaPeeringBytes) }

// Deliver routes one second of traffic from the given sources to the
// measurement AS without a specific destination address (FlowSpec rules
// do not apply). Saturation above the flap threshold tears the transit
// session down for subsequent seconds (it re-establishes once offered
// load recedes), mirroring the interrupted VIP NTP attack.
func (f *Fabric) Deliver(sources []SourceTraffic) (*Handover, error) {
	return f.DeliverTo(netip.Addr{}, sources)
}

// DeliverTo routes one second of traffic toward dst. FlowSpec rules
// covering dst discard matching traffic at the neighbors' edges before
// it reaches the measurement port.
func (f *Fabric) DeliverTo(dst netip.Addr, sources []SourceTraffic) (*Handover, error) {
	if f.meas == nil {
		return nil, ErrNotConnected
	}
	transitUp := f.TransitUp()
	h := &Handover{
		ViaPeeringBytes:   make(map[uint32]uint64),
		ViaPeeringPackets: make(map[uint32]uint64),
	}
	for _, src := range sources {
		if dst.IsValid() && f.flowSpecDiscards(dst, src) {
			h.FlowSpecFilteredBytes += src.Bytes
			continue
		}
		member, isMember := f.members[src.AS]
		switch {
		case isMember && (!member.PrefersOwnTransit || !transitUp):
			// Peering path: the member has the RS route to our prefix.
			h.ViaPeeringBytes[src.AS] += src.Bytes
			h.ViaPeeringPackets[src.AS] += src.Packets
		case transitUp:
			h.ViaTransitBytes += src.Bytes
			h.ViaTransitPackets += src.Packets
		default:
			h.UnreachableBytes += src.Bytes
		}
	}
	// Each member's handover is bounded by its own peering port.
	for asn, bytes := range h.ViaPeeringBytes {
		capBytes := uint64(float64(f.members[asn].PortCapacity) / 8)
		if capBytes == 0 || bytes <= capBytes {
			continue
		}
		if h.MemberDroppedBytes == nil {
			h.MemberDroppedBytes = make(map[uint32]uint64)
		}
		h.MemberDroppedBytes[asn] = bytes - capBytes
		if pkts := h.ViaPeeringPackets[asn]; pkts > 0 {
			h.ViaPeeringPackets[asn] = pkts * capBytes / bytes
		}
		h.ViaPeeringBytes[asn] = capBytes
	}
	offered := h.ViaTransitBytes + h.PeeringBytesTotal()
	capacityBytes := float64(f.meas.portCapacity) / 8
	if capacityBytes > 0 {
		h.Utilization = float64(offered) / capacityBytes
	}
	if h.Utilization > 1 {
		h.DroppedBytes = offered - uint64(capacityBytes)
	}
	// Saturation may flap the transit session for the following seconds.
	if f.meas.transitOn {
		before := f.meas.transit.State()
		f.meas.transit.Tick(h.Utilization)
		h.TransitFlapped = before == bgp.StateEstablished && f.meas.transit.State() == bgp.StateIdle
	}
	metricTransitBytes.Add(h.ViaTransitBytes)
	metricPeeringBytes.Add(h.PeeringBytesTotal())
	metricUnreachableBytes.Add(h.UnreachableBytes)
	metricDroppedBytes.Add(h.DroppedBytes)
	metricFlowSpecBytes.Add(h.FlowSpecFilteredBytes)
	if h.TransitFlapped {
		metricTransitFlaps.Inc()
	}
	return h, nil
}

// PlatformExport converts the peering-LAN share of a handover into
// sampled IXP flow records — what the study's IPFIX vantage point sees.
// Transit traffic crosses a private link and is invisible to the
// platform capture, which is why peering-only traces underestimate
// attack sizes.
func (f *Fabric) PlatformExport(h *Handover, dst netip.Addr, dstPort uint16, ts time.Time) []flow.Record {
	if f.meas == nil {
		return nil
	}
	rate := f.cfg.PlatformSamplingRate
	var out []flow.Record
	asns := make([]uint32, 0, len(h.ViaPeeringBytes))
	for asn := range h.ViaPeeringBytes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, asn := range asns {
		bytes := h.ViaPeeringBytes[asn]
		pkts := h.ViaPeeringPackets[asn]
		if pkts == 0 {
			continue
		}
		// Systematic 1-in-N on the packet count; keep the expected value
		// by sampling the remainder probabilistically.
		sampledPkts := pkts / uint64(rate)
		if f.rand.Uint64N(uint64(rate)) < pkts%uint64(rate) {
			sampledPkts++
		}
		if sampledPkts == 0 {
			continue
		}
		avgSize := bytes / pkts
		out = append(out, flow.Record{
			Key: flow.Key{
				Src:      netutil.Addr4(asn<<8 | 1), // representative source in the member
				Dst:      dst,
				SrcPort:  dstPort,
				DstPort:  40000,
				Protocol: packet.IPProtoUDP,
			},
			Packets:      sampledPkts,
			Bytes:        sampledPkts * avgSize,
			Start:        ts,
			End:          ts.Add(time.Second),
			SrcAS:        asn,
			DstAS:        f.meas.asn,
			Direction:    flow.Ingress,
			SamplingRate: rate,
		})
	}
	metricExportRecords.Add(uint64(len(out)))
	return out
}

// Sampler returns a packet sampler matching the platform's rate, for
// components that sample raw packet streams.
func (f *Fabric) Sampler() (sampling.Sampler, error) {
	return sampling.NewSystematic(f.cfg.PlatformSamplingRate)
}

// PlatformExportSFlow renders the peering-LAN share of a handover as
// sFlow samples: representative raw headers per handing-over member,
// with the sample pool reflecting the member's packet count. IXPs that
// run sFlow instead of IPFIX export this view.
func (f *Fabric) PlatformExportSFlow(h *Handover, dst netip.Addr, srcPort uint16) []sflow.Sample {
	if f.meas == nil {
		return nil
	}
	rate := f.cfg.PlatformSamplingRate
	asns := make([]uint32, 0, len(h.ViaPeeringBytes))
	for asn := range h.ViaPeeringBytes {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	var out []sflow.Sample
	for _, asn := range asns {
		pkts := h.ViaPeeringPackets[asn]
		if pkts == 0 {
			continue
		}
		sampled := pkts / uint64(rate)
		if f.rand.Uint64N(uint64(rate)) < pkts%uint64(rate) {
			sampled++
		}
		if sampled == 0 {
			continue
		}
		avgSize := int(h.ViaPeeringBytes[asn] / pkts)
		if avgSize < 28 {
			avgSize = 28
		}
		hdr := packet.Build(
			&packet.IPv4{
				TTL:      60,
				Protocol: packet.IPProtoUDP,
				Src:      netutil.Addr4(asn<<8 | 1),
				Dst:      dst,
			},
			&packet.UDP{SrcPort: srcPort, DstPort: 40000},
			packet.Payload(make([]byte, avgSize-28)),
		)
		if len(hdr) > sflow.MaxHeaderBytes {
			hdr = hdr[:sflow.MaxHeaderBytes]
		}
		for i := uint64(0); i < sampled; i++ {
			out = append(out, sflow.Sample{
				SamplingRate: rate,
				SamplePool:   uint32(pkts),
				FrameLength:  uint32(avgSize),
				Header:       hdr,
			})
		}
	}
	metricExportSamples.Add(uint64(len(out)))
	return out
}
