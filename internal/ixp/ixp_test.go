package ixp

import (
	"net/netip"
	"testing"
	"time"

	"booterscope/internal/bgp"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
	"booterscope/internal/sflow"
)

const (
	measASN = 64512
	prefix  = "203.0.113.0/24"
)

func newFabric(t *testing.T) *Fabric {
	t.Helper()
	f := New(Config{RouteServerASN: 65500, TransitASN: 174, PlatformSamplingRate: 100, Seed: 1})
	// 10 members: half prefer their own transit.
	for i := 0; i < 10; i++ {
		f.AddMember(uint32(1000+i), 100*netutil.Gbps, i%2 == 0)
	}
	if err := f.ConnectMeasurementAS(measASN, netip.MustParsePrefix(prefix), 10*netutil.Gbps); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConnectAndAnnounce(t *testing.T) {
	f := newFabric(t)
	if f.Members() != 10 {
		t.Errorf("members = %d", f.Members())
	}
	asn, err := f.MeasurementASN()
	if err != nil || asn != measASN {
		t.Errorf("measurement ASN = %d, %v", asn, err)
	}
	// Every member's RIB must hold the announced /24 via peering.
	m, err := f.Member(1003)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.RIB.Lookup(netip.MustParseAddr("203.0.113.7"))
	if !ok || r.NextHopAS != measASN {
		t.Errorf("member route = %+v ok=%t", r, ok)
	}
	if !f.TransitUp() {
		t.Error("transit should start up")
	}
	if _, err := f.Member(9999); err == nil {
		t.Error("unknown member lookup should fail")
	}
}

func TestNotConnectedErrors(t *testing.T) {
	f := New(Config{})
	if _, err := f.MeasurementASN(); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if err := f.SetTransit(false); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if _, err := f.Deliver(nil); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if _, err := f.TransitFlaps(); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
}

func TestHandoverSplitTransitEnabled(t *testing.T) {
	f := newFabric(t)
	// Equal offered load from each member plus two non-members.
	var sources []SourceTraffic
	for i := 0; i < 10; i++ {
		sources = append(sources, SourceTraffic{AS: uint32(1000 + i), Bytes: 10_000_000, Packets: 20000})
	}
	sources = append(sources,
		SourceTraffic{AS: 7000, Bytes: 50_000_000, Packets: 100000},
		SourceTraffic{AS: 7001, Bytes: 50_000_000, Packets: 100000},
	)
	h, err := f.Deliver(sources)
	if err != nil {
		t.Fatal(err)
	}
	// Members preferring their own transit (even ASNs) + non-members go
	// via transit: 5*10MB + 100MB = 150MB. Peering: 5*10MB = 50MB.
	if h.ViaTransitBytes != 150_000_000 {
		t.Errorf("transit bytes = %d", h.ViaTransitBytes)
	}
	if h.PeeringBytesTotal() != 50_000_000 {
		t.Errorf("peering bytes = %d", h.PeeringBytesTotal())
	}
	if h.PeerCount() != 5 {
		t.Errorf("peer count = %d", h.PeerCount())
	}
	if h.UnreachableBytes != 0 {
		t.Errorf("unreachable = %d", h.UnreachableBytes)
	}
	if h.DeliveredBytes() != 200_000_000 {
		t.Errorf("delivered = %d", h.DeliveredBytes())
	}
}

func TestHandoverNoTransit(t *testing.T) {
	f := newFabric(t)
	if err := f.SetTransit(false); err != nil {
		t.Fatal(err)
	}
	var sources []SourceTraffic
	for i := 0; i < 10; i++ {
		sources = append(sources, SourceTraffic{AS: uint32(1000 + i), Bytes: 10_000_000, Packets: 20000})
	}
	sources = append(sources, SourceTraffic{AS: 7000, Bytes: 100_000_000, Packets: 200000})
	h, err := f.Deliver(sources)
	if err != nil {
		t.Fatal(err)
	}
	// All members now hand over via peering; non-members are unreachable.
	if h.PeerCount() != 10 {
		t.Errorf("peer count = %d, want all 10 members", h.PeerCount())
	}
	if h.ViaTransitBytes != 0 {
		t.Errorf("transit bytes = %d", h.ViaTransitBytes)
	}
	if h.UnreachableBytes != 100_000_000 {
		t.Errorf("unreachable = %d", h.UnreachableBytes)
	}
	// The paper's observation: no-transit raises peer count but lowers
	// delivered volume.
	if h.DeliveredBytes() >= 200_000_000 {
		t.Errorf("delivered = %d, should drop without transit", h.DeliveredBytes())
	}
}

func TestNoTransitIncreasesPeersDecreasesVolume(t *testing.T) {
	run := func(transit bool) (peers int, delivered uint64) {
		f := newFabric(t)
		if err := f.SetTransit(transit); err != nil {
			t.Fatal(err)
		}
		var sources []SourceTraffic
		for i := 0; i < 10; i++ {
			sources = append(sources, SourceTraffic{AS: uint32(1000 + i), Bytes: 5_000_000, Packets: 10000})
		}
		for i := 0; i < 40; i++ {
			sources = append(sources, SourceTraffic{AS: uint32(7000 + i), Bytes: 5_000_000, Packets: 10000})
		}
		h, err := f.Deliver(sources)
		if err != nil {
			t.Fatal(err)
		}
		return h.PeerCount(), h.DeliveredBytes()
	}
	peersOn, volOn := run(true)
	peersOff, volOff := run(false)
	if peersOff <= peersOn {
		t.Errorf("peers: transit on %d, off %d — off should be larger", peersOn, peersOff)
	}
	if volOff >= volOn {
		t.Errorf("volume: transit on %d, off %d — off should be smaller", volOn, volOff)
	}
}

func TestSaturationFlapsTransit(t *testing.T) {
	f := New(Config{
		RouteServerASN: 65500, TransitASN: 174, PlatformSamplingRate: 100, Seed: 1,
		TransitHoldTime: 3, TransitReconnectTime: 2,
	})
	for i := 0; i < 10; i++ {
		f.AddMember(uint32(1000+i), 100*netutil.Gbps, i%2 == 0)
	}
	if err := f.ConnectMeasurementAS(measASN, netip.MustParsePrefix(prefix), 10*netutil.Gbps); err != nil {
		t.Fatal(err)
	}
	// 20 Gbps offered into a 10 Gbps port: 2.5e9 bytes/sec.
	big := []SourceTraffic{{AS: 7000, Bytes: 2_500_000_000, Packets: 5_000_000}}
	// The session survives the first HoldTime-1 saturated seconds.
	for i := 0; i < 2; i++ {
		h, err := f.Deliver(big)
		if err != nil {
			t.Fatal(err)
		}
		if h.Utilization < 1.9 {
			t.Errorf("utilization = %v", h.Utilization)
		}
		if h.DroppedBytes == 0 {
			t.Error("saturated port should drop")
		}
		if h.TransitFlapped {
			t.Errorf("second %d: flapped before hold timer expiry", i)
		}
	}
	h, err := f.Deliver(big)
	if err != nil {
		t.Fatal(err)
	}
	if !h.TransitFlapped {
		t.Error("transit session should flap after sustained saturation")
	}
	if f.TransitUp() {
		t.Error("transit should be down after flap")
	}
	// Transit down: non-member traffic unreachable, utilization recedes.
	h2, err := f.Deliver(big)
	if err != nil {
		t.Fatal(err)
	}
	if h2.ViaTransitBytes != 0 || h2.UnreachableBytes == 0 {
		t.Errorf("post-flap handover: transit=%d unreachable=%d", h2.ViaTransitBytes, h2.UnreachableBytes)
	}
	if _, err := f.Deliver(big); err != nil { // second calm tick: reconnect
		t.Fatal(err)
	}
	if !f.TransitUp() {
		t.Error("transit should re-establish after the reconnect time")
	}
	flaps, _ := f.TransitFlaps()
	if flaps != 1 {
		t.Errorf("flaps = %d", flaps)
	}
}

func TestDeliverWithinCapacityNoDrops(t *testing.T) {
	f := newFabric(t)
	h, err := f.Deliver([]SourceTraffic{{AS: 7000, Bytes: 100_000_000, Packets: 200000}})
	if err != nil {
		t.Fatal(err)
	}
	if h.DroppedBytes != 0 || h.TransitFlapped {
		t.Errorf("drops=%d flapped=%t", h.DroppedBytes, h.TransitFlapped)
	}
	if h.Utilization <= 0 || h.Utilization >= 1 {
		t.Errorf("utilization = %v", h.Utilization)
	}
}

func TestPlatformExportSamplesPeeringOnly(t *testing.T) {
	f := newFabric(t)
	var sources []SourceTraffic
	for i := 0; i < 10; i++ {
		sources = append(sources, SourceTraffic{AS: uint32(1000 + i), Bytes: 48_600_000, Packets: 100_000})
	}
	sources = append(sources, SourceTraffic{AS: 7000, Bytes: 486_000_000, Packets: 1_000_000})
	h, err := f.Deliver(sources)
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.MustParseAddr("203.0.113.7")
	ts := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	recs := f.PlatformExport(h, dst, 123, ts)
	if len(recs) == 0 {
		t.Fatal("no platform records")
	}
	var scaled uint64
	for _, r := range recs {
		if r.SamplingRate != 100 {
			t.Errorf("sampling rate = %d", r.SamplingRate)
		}
		if r.Dst != dst || r.SrcPort != 123 {
			t.Errorf("record key = %+v", r.Key)
		}
		if r.DstAS != measASN {
			t.Errorf("dst AS = %d", r.DstAS)
		}
		// Only peering members appear.
		if r.SrcAS < 1000 || r.SrcAS > 1009 {
			t.Errorf("unexpected source AS %d (transit traffic must be invisible)", r.SrcAS)
		}
		scaled += r.ScaledPackets()
	}
	// Scaled packet estimate should approximate the true peering packets
	// (5 odd members * 100k = 500k).
	if scaled < 300_000 || scaled > 700_000 {
		t.Errorf("scaled packets = %d, want ~500k", scaled)
	}
}

func TestPlatformExportDeterministic(t *testing.T) {
	build := func() int {
		f := newFabric(t)
		h, err := f.Deliver([]SourceTraffic{{AS: 1001, Bytes: 4860, Packets: 10}})
		if err != nil {
			t.Fatal(err)
		}
		return len(f.PlatformExport(h, netip.MustParseAddr("203.0.113.7"), 123, time.Unix(0, 0)))
	}
	if build() != build() {
		t.Error("platform export not deterministic")
	}
}

func TestSampler(t *testing.T) {
	f := newFabric(t)
	s, err := f.Sampler()
	if err != nil {
		t.Fatal(err)
	}
	if s.Rate() != 100 {
		t.Errorf("rate = %d", s.Rate())
	}
}

func BenchmarkDeliver(b *testing.B) {
	f := New(Config{RouteServerASN: 65500, TransitASN: 174, Seed: 1})
	for i := 0; i < 100; i++ {
		f.AddMember(uint32(1000+i), 100*netutil.Gbps, i%2 == 0)
	}
	if err := f.ConnectMeasurementAS(measASN, netip.MustParsePrefix(prefix), 10*netutil.Gbps); err != nil {
		b.Fatal(err)
	}
	sources := make([]SourceTraffic, 300)
	for i := range sources {
		sources[i] = SourceTraffic{AS: uint32(1000 + i%150), Bytes: 100_000, Packets: 200}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := f.Deliver(sources); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlackholeLifecycle(t *testing.T) {
	f := newFabric(t)
	victim := netip.MustParseAddr("203.0.113.50")
	if f.IsBlackholed(victim) {
		t.Fatal("fresh fabric reports blackholed address")
	}
	if err := f.AnnounceBlackhole(victim); err != nil {
		t.Fatal(err)
	}
	if !f.IsBlackholed(victim) {
		t.Error("blackhole announcement not effective")
	}
	// Members see the tagged /32 in their RIBs.
	m, err := f.Member(1000)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := m.RIB.Lookup(victim)
	if !ok {
		t.Fatal("member missing blackhole route")
	}
	if r.Prefix.Bits() != 32 {
		t.Errorf("blackhole route prefix = %v, want /32", r.Prefix)
	}
	if !r.HasCommunity(bgp.BlackholeCommunity) {
		t.Error("blackhole route missing the 65535:666 community")
	}
	// Withdrawal restores normal routing: the covering /24 remains.
	if err := f.WithdrawBlackhole(victim); err != nil {
		t.Fatal(err)
	}
	if f.IsBlackholed(victim) {
		t.Error("withdrawal not effective")
	}
	r, ok = m.RIB.Lookup(victim)
	if !ok || r.Prefix.Bits() != 24 {
		t.Errorf("post-withdrawal route = %+v ok=%t, want the /24", r, ok)
	}
}

func TestBlackholeValidation(t *testing.T) {
	f := newFabric(t)
	if err := f.AnnounceBlackhole(netip.MustParseAddr("8.8.8.8")); err == nil {
		t.Error("blackholing an address outside the prefix should fail")
	}
	unconnected := New(Config{})
	if err := unconnected.AnnounceBlackhole(netip.MustParseAddr("203.0.113.1")); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if err := unconnected.WithdrawBlackhole(netip.MustParseAddr("203.0.113.1")); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
}

func TestFlowSpecFiltersAttackOnly(t *testing.T) {
	f := newFabric(t)
	victim := netip.MustParseAddr("203.0.113.60")
	rule := bgp.FlowSpecRule{
		Dst:          netip.PrefixFrom(victim, 32),
		Protocol:     17,
		SrcPort:      123,
		MinPacketLen: 200,
	}
	if err := f.AnnounceFlowSpec(rule); err != nil {
		t.Fatal(err)
	}
	if f.FlowSpecRules() != 1 {
		t.Fatalf("rules = %d", f.FlowSpecRules())
	}
	attack := SourceTraffic{AS: 7000, Bytes: 100_000_000, Packets: 205_000, SrcPort: 123, PacketSize: 488}
	benign := SourceTraffic{AS: 7001, Bytes: 5_000_000, Packets: 6_000, SrcPort: 443, PacketSize: 800}
	h, err := f.DeliverTo(victim, []SourceTraffic{attack, benign})
	if err != nil {
		t.Fatal(err)
	}
	if h.FlowSpecFilteredBytes != 100_000_000 {
		t.Errorf("filtered = %d, want the attack bytes", h.FlowSpecFilteredBytes)
	}
	if h.DeliveredBytes() != 5_000_000 {
		t.Errorf("delivered = %d, want only the benign bytes", h.DeliveredBytes())
	}

	// A different victim is unaffected.
	other := netip.MustParseAddr("203.0.113.61")
	h2, err := f.DeliverTo(other, []SourceTraffic{attack})
	if err != nil {
		t.Fatal(err)
	}
	if h2.FlowSpecFilteredBytes != 0 {
		t.Error("rule leaked to another destination")
	}

	// Withdrawal restores delivery.
	if err := f.WithdrawFlowSpec(rule.Dst); err != nil {
		t.Fatal(err)
	}
	h3, err := f.DeliverTo(victim, []SourceTraffic{attack})
	if err != nil {
		t.Fatal(err)
	}
	if h3.FlowSpecFilteredBytes != 0 || h3.DeliveredBytes() == 0 {
		t.Error("withdrawal not effective")
	}
}

func TestFlowSpecBenignNTPPasses(t *testing.T) {
	// The surgical property: small benign NTP packets toward the victim
	// survive the >=200-byte rule.
	f := newFabric(t)
	victim := netip.MustParseAddr("203.0.113.60")
	if err := f.AnnounceFlowSpec(bgp.FlowSpecRule{
		Dst: netip.PrefixFrom(victim, 32), Protocol: 17, SrcPort: 123, MinPacketLen: 200,
	}); err != nil {
		t.Fatal(err)
	}
	benignNTP := SourceTraffic{AS: 7000, Bytes: 76_000, Packets: 1000, SrcPort: 123, PacketSize: 76}
	h, err := f.DeliverTo(victim, []SourceTraffic{benignNTP})
	if err != nil {
		t.Fatal(err)
	}
	if h.FlowSpecFilteredBytes != 0 {
		t.Error("benign NTP filtered")
	}
}

func TestFlowSpecValidation(t *testing.T) {
	f := newFabric(t)
	if err := f.AnnounceFlowSpec(bgp.FlowSpecRule{Dst: netip.MustParsePrefix("8.8.8.0/24")}); err == nil {
		t.Error("rule outside the measurement prefix accepted")
	}
	unconnected := New(Config{})
	if err := unconnected.AnnounceFlowSpec(bgp.FlowSpecRule{}); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if err := unconnected.WithdrawFlowSpec(netip.MustParsePrefix("203.0.113.0/32")); err != ErrNotConnected {
		t.Errorf("err = %v", err)
	}
	if unconnected.FlowSpecRules() != 0 {
		t.Error("rules on unconnected fabric")
	}
}

func TestDeliverWithoutDstIgnoresFlowSpec(t *testing.T) {
	f := newFabric(t)
	if err := f.AnnounceFlowSpec(bgp.FlowSpecRule{
		Dst: netip.MustParsePrefix("203.0.113.0/24"), Protocol: 17,
	}); err != nil {
		t.Fatal(err)
	}
	attack := SourceTraffic{AS: 7000, Bytes: 1000, Packets: 2, SrcPort: 123, PacketSize: 488}
	h, err := f.Deliver([]SourceTraffic{attack})
	if err != nil {
		t.Fatal(err)
	}
	if h.FlowSpecFilteredBytes != 0 {
		t.Error("destination-less delivery applied FlowSpec")
	}
}

func TestMemberPortCapacityClamp(t *testing.T) {
	f := New(Config{RouteServerASN: 65500, TransitASN: 174, PlatformSamplingRate: 100, Seed: 1})
	// One small member (1 Gbps port) preferring peering, one large.
	f.AddMember(1000, 1*netutil.Gbps, false)
	f.AddMember(1001, 100*netutil.Gbps, false)
	if err := f.ConnectMeasurementAS(measASN, netip.MustParsePrefix(prefix), 10*netutil.Gbps); err != nil {
		t.Fatal(err)
	}
	// The small member offers 2 Gbps worth of bytes in one second.
	h, err := f.Deliver([]SourceTraffic{
		{AS: 1000, Bytes: 250_000_000, Packets: 500_000},
		{AS: 1001, Bytes: 250_000_000, Packets: 500_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	capBytes := uint64(1e9 / 8)
	if h.ViaPeeringBytes[1000] != capBytes {
		t.Errorf("small member handed over %d bytes, want clamp at %d", h.ViaPeeringBytes[1000], capBytes)
	}
	if h.MemberDroppedBytes[1000] != 250_000_000-capBytes {
		t.Errorf("member drop = %d", h.MemberDroppedBytes[1000])
	}
	if h.ViaPeeringBytes[1001] != 250_000_000 {
		t.Errorf("large member clipped: %d", h.ViaPeeringBytes[1001])
	}
	if h.MemberDroppedBytes[1001] != 0 {
		t.Errorf("large member dropped %d", h.MemberDroppedBytes[1001])
	}
	// Packets scale proportionally.
	if got := h.ViaPeeringPackets[1000]; got >= 500_000 || got == 0 {
		t.Errorf("small member packets = %d", got)
	}
}

func TestPlatformExportSFlow(t *testing.T) {
	f := newFabric(t)
	var sources []SourceTraffic
	for i := 0; i < 10; i++ {
		sources = append(sources, SourceTraffic{AS: uint32(1000 + i), Bytes: 48_800_000, Packets: 100_000})
	}
	h, err := f.Deliver(sources)
	if err != nil {
		t.Fatal(err)
	}
	victim := netip.MustParseAddr("203.0.113.7")
	samples := f.PlatformExportSFlow(h, victim, 123)
	if len(samples) == 0 {
		t.Fatal("no sFlow samples")
	}
	for i, s := range samples {
		if s.SamplingRate != 100 {
			t.Fatalf("sample %d rate = %d", i, s.SamplingRate)
		}
		// Headers decode back to the attack 5-tuple.
		d, err := packet.DecodeIPv4(s.Header)
		if err != nil {
			t.Fatalf("sample %d header: %v", i, err)
		}
		if d.UDP == nil || d.UDP.SrcPort != 123 || d.IPv4.Dst != victim {
			t.Fatalf("sample %d decoded %+v", i, d.IPv4)
		}
		if s.FrameLength != 488 {
			t.Fatalf("sample %d frame length = %d, want avg 488", i, s.FrameLength)
		}
	}
	// The scaled estimate approximates the true peering packet count
	// (the 5 odd members x 100k).
	var scaled uint64
	for _, s := range samples {
		scaled += uint64(s.SamplingRate)
	}
	if scaled < 300_000 || scaled > 700_000 {
		t.Errorf("scaled packets = %d, want ~500k", scaled)
	}
	// And the samples survive the sFlow wire format.
	exp := &sflow.Exporter{Agent: netip.MustParseAddr("10.99.0.1")}
	dgram, err := exp.Encode(samples, time.Unix(1545220800, 0))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := sflow.Decode(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.DecodedPackets()) != len(samples) {
		t.Errorf("decoded %d of %d samples", len(dec.DecodedPackets()), len(samples))
	}
}
