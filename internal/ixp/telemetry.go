package ixp

import "booterscope/internal/telemetry"

// Package-level aggregates across every Fabric in the process, with
// opt-in registration (tests create many fabrics; a binary registers
// once).
var (
	metricTransitBytes     = telemetry.NewCounter()
	metricPeeringBytes     = telemetry.NewCounter()
	metricUnreachableBytes = telemetry.NewCounter()
	metricDroppedBytes     = telemetry.NewCounter()
	metricFlowSpecBytes    = telemetry.NewCounter()
	metricTransitFlaps     = telemetry.NewCounter()
	metricExportRecords    = telemetry.NewCounter()
	metricExportSamples    = telemetry.NewCounter()
)

// RegisterTelemetry attaches the package's aggregate fabric accounting
// to r under the ixp_* names.
func RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister("ixp_handover_transit_bytes_total", "traffic delivered over the measurement AS transit link", metricTransitBytes)
	r.MustRegister("ixp_handover_peering_bytes_total", "traffic handed over across the peering LAN", metricPeeringBytes)
	r.MustRegister("ixp_handover_unreachable_bytes_total", "traffic offered by networks with no path", metricUnreachableBytes)
	r.MustRegister("ixp_handover_dropped_bytes_total", "traffic clipped at the measurement port capacity", metricDroppedBytes)
	r.MustRegister("ixp_flowspec_filtered_bytes_total", "traffic discarded at the neighbors' edges by FlowSpec rules", metricFlowSpecBytes)
	r.MustRegister("ixp_transit_session_flaps_total", "transit BGP sessions flapped by saturation", metricTransitFlaps)
	r.MustRegister("ixp_platform_export_records_total", "sampled IPFIX-view flow records emitted by the platform", metricExportRecords)
	r.MustRegister("ixp_platform_export_sflow_samples_total", "sFlow samples emitted by the platform", metricExportSamples)
}
