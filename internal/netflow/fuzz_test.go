package netflow

import (
	"testing"
	"time"
)

func FuzzDecodeV5(f *testing.F) {
	e := &V5Exporter{BootTime: boot}
	pkt, _ := e.EncodeV5(sampleRecords(3), now)
	f.Add(pkt)
	f.Add([]byte{})
	f.Add([]byte{0, 5, 0, 30})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodeV5(data)
		if err != nil {
			return
		}
		for _, r := range p.Records {
			if r.SamplingRate == 0 {
				t.Fatal("decoded record with zero sampling rate")
			}
			if !r.Src.Is4() || !r.Dst.Is4() {
				t.Fatal("non-IPv4 record address")
			}
		}
	})
}

func FuzzDecodeV9(f *testing.F) {
	e := &V9Exporter{SourceID: 7, BootTime: boot}
	withTpl, _ := e.EncodeV9(sampleRecords(2), now)
	f.Add(withTpl)
	f.Add([]byte{0, 9, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Each input gets a fresh collector: fuzzing must not depend on
		// template state carried across inputs.
		c := NewV9Collector()
		recs, err := c.DecodeV9(data)
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Start.After(r.End.Add(365 * 24 * time.Hour)) {
				// Wildly inconsistent timestamps are fine to decode but
				// must not wrap negative durations into panics later.
				_ = r.Duration()
			}
		}
	})
}
