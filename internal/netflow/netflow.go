// Package netflow implements encoders and decoders for Cisco NetFlow
// version 5 (fixed-format) and version 9 (template-based) export packets.
//
// The tier-1 and tier-2 ISP vantage points in the study provide NetFlow
// traces; booterscope routers export their flow caches through these
// codecs so the analysis pipeline parses the same wire format a real
// collector would receive.
package netflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/netutil"
)

// Wire-format sizes.
const (
	v5HeaderLen = 24
	v5RecordLen = 48
	v9HeaderLen = 20

	// MaxV5Records is the per-packet record limit of NetFlow v5.
	MaxV5Records = 30
)

// Codec errors.
var (
	ErrBadVersion  = errors.New("netflow: unsupported version")
	ErrTruncated   = errors.New("netflow: truncated packet")
	ErrTooMany     = errors.New("netflow: too many records for one packet")
	ErrNoTemplate  = errors.New("netflow: data flowset without known template")
	ErrNotSampled  = errors.New("netflow: invalid sampling configuration")
	errBadFlowset  = errors.New("netflow: malformed flowset")
	errBadTemplate = errors.New("netflow: malformed template")
)

// V5Exporter encodes flow records into NetFlow v5 packets.
type V5Exporter struct {
	// SamplingRate is the 1-in-N sampling rate advertised in the header
	// (0 or 1 means unsampled).
	SamplingRate uint32
	// BootTime anchors the sysUptime field.
	BootTime time.Time

	seq uint32
}

// EncodeV5 builds one v5 export packet from up to MaxV5Records records.
// now stamps the packet header.
func (e *V5Exporter) EncodeV5(records []flow.Record, now time.Time) ([]byte, error) {
	if len(records) == 0 || len(records) > MaxV5Records {
		return nil, ErrTooMany
	}
	uptime := uint32(now.Sub(e.BootTime) / time.Millisecond)
	b := make([]byte, 0, v5HeaderLen+len(records)*v5RecordLen)
	b = binary.BigEndian.AppendUint16(b, 5)
	b = binary.BigEndian.AppendUint16(b, uint16(len(records)))
	b = binary.BigEndian.AppendUint32(b, uptime)
	b = binary.BigEndian.AppendUint32(b, uint32(now.Unix()))
	b = binary.BigEndian.AppendUint32(b, uint32(now.Nanosecond()))
	b = binary.BigEndian.AppendUint32(b, e.seq)
	e.seq += uint32(len(records))
	// engine type/id = 0; sampling: mode 01 (packet interval) in top 2 bits.
	b = append(b, 0, 0)
	sampling := uint16(0)
	if e.SamplingRate > 1 {
		if e.SamplingRate > 0x3fff {
			return nil, ErrNotSampled
		}
		sampling = 1<<14 | uint16(e.SamplingRate)
	}
	b = binary.BigEndian.AppendUint16(b, sampling)

	for i := range records {
		r := &records[i]
		b = binary.BigEndian.AppendUint32(b, netutil.Addr4Val(r.Src))
		b = binary.BigEndian.AppendUint32(b, netutil.Addr4Val(r.Dst))
		b = binary.BigEndian.AppendUint32(b, 0) // nexthop
		b = binary.BigEndian.AppendUint16(b, 0) // input ifindex
		b = binary.BigEndian.AppendUint16(b, 0) // output ifindex
		b = binary.BigEndian.AppendUint32(b, clamp32(r.Packets))
		b = binary.BigEndian.AppendUint32(b, clamp32(r.Bytes))
		b = binary.BigEndian.AppendUint32(b, uint32(r.Start.Sub(e.BootTime)/time.Millisecond))
		b = binary.BigEndian.AppendUint32(b, uint32(r.End.Sub(e.BootTime)/time.Millisecond))
		b = binary.BigEndian.AppendUint16(b, r.SrcPort)
		b = binary.BigEndian.AppendUint16(b, r.DstPort)
		b = append(b, 0, 0, r.Protocol, 0) // pad, tcp flags, prot, tos
		b = binary.BigEndian.AppendUint16(b, uint16(r.SrcAS))
		b = binary.BigEndian.AppendUint16(b, uint16(r.DstAS))
		b = append(b, 0, 0, 0, 0) // masks + padding
	}
	return b, nil
}

func clamp32(v uint64) uint32 {
	if v > 0xffffffff {
		return 0xffffffff
	}
	return uint32(v)
}

// uptimeTime reconstructs an absolute flow time from a 32-bit
// milliseconds-since-boot value and the packet header's (uptime, clock)
// pair. Both the header uptime and the flow offset wrap every ~49.7
// days of router uptime, so anchoring at boot = ts - uptime is wrong as
// soon as a router has been up past the wrap. The signed mod-2^32
// difference against the header uptime is exact regardless of uptime
// whenever the flow time is within ~24.8 days of the export time —
// which holds for any live flow cache.
func uptimeTime(ts time.Time, uptime32, flow32 uint32) time.Time {
	return ts.Add(time.Duration(int32(flow32-uptime32)) * time.Millisecond)
}

// V5Packet is a decoded NetFlow v5 export packet.
type V5Packet struct {
	SysUptime    time.Duration
	Timestamp    time.Time
	Sequence     uint32
	SamplingRate uint32
	Records      []flow.Record
}

// DecodeV5 parses a v5 export packet. Flow timestamps are reconstructed
// from the header's uptime/clock pair.
func DecodeV5(b []byte) (*V5Packet, error) {
	if len(b) < v5HeaderLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != 5 {
		return nil, ErrBadVersion
	}
	count := int(binary.BigEndian.Uint16(b[2:]))
	if len(b) < v5HeaderLen+count*v5RecordLen {
		return nil, ErrTruncated
	}
	uptime32 := binary.BigEndian.Uint32(b[4:])
	ts := time.Unix(int64(binary.BigEndian.Uint32(b[8:])), int64(binary.BigEndian.Uint32(b[12:]))).UTC()
	p := &V5Packet{
		SysUptime:    time.Duration(uptime32) * time.Millisecond,
		Timestamp:    ts,
		Sequence:     binary.BigEndian.Uint32(b[16:]),
		SamplingRate: 1,
	}
	sampling := binary.BigEndian.Uint16(b[22:])
	if sampling>>14 == 1 && sampling&0x3fff > 1 {
		p.SamplingRate = uint32(sampling & 0x3fff)
	}
	off := v5HeaderLen
	for i := 0; i < count; i++ {
		rb := b[off : off+v5RecordLen]
		rec := flow.Record{
			Key: flow.Key{
				Src:      netutil.Addr4(binary.BigEndian.Uint32(rb[0:])),
				Dst:      netutil.Addr4(binary.BigEndian.Uint32(rb[4:])),
				SrcPort:  binary.BigEndian.Uint16(rb[32:]),
				DstPort:  binary.BigEndian.Uint16(rb[34:]),
				Protocol: rb[38],
			},
			Packets:      uint64(binary.BigEndian.Uint32(rb[16:])),
			Bytes:        uint64(binary.BigEndian.Uint32(rb[20:])),
			Start:        uptimeTime(ts, uptime32, binary.BigEndian.Uint32(rb[24:])),
			End:          uptimeTime(ts, uptime32, binary.BigEndian.Uint32(rb[28:])),
			SrcAS:        uint32(binary.BigEndian.Uint16(rb[40:])),
			DstAS:        uint32(binary.BigEndian.Uint16(rb[42:])),
			SamplingRate: p.SamplingRate,
		}
		p.Records = append(p.Records, rec)
		off += v5RecordLen
	}
	return p, nil
}

// NetFlow v9 field types used by the booterscope template.
const (
	fieldInBytes  uint16 = 1
	fieldInPkts   uint16 = 2
	fieldProtocol uint16 = 4
	fieldL4Src    uint16 = 7
	fieldIPv4Src  uint16 = 8
	fieldL4Dst    uint16 = 11
	fieldIPv4Dst  uint16 = 12
	fieldSrcAS    uint16 = 16
	fieldDstAS    uint16 = 17
	fieldFirst    uint16 = 22
	fieldLast     uint16 = 21
)

// templateField pairs a v9 field type with its length.
type templateField struct {
	Type   uint16
	Length uint16
}

// booterTemplate is the fixed v9 template booterscope routers export.
var booterTemplate = []templateField{
	{fieldIPv4Src, 4}, {fieldIPv4Dst, 4},
	{fieldInPkts, 8}, {fieldInBytes, 8},
	{fieldFirst, 4}, {fieldLast, 4},
	{fieldL4Src, 2}, {fieldL4Dst, 2},
	{fieldProtocol, 1},
	{fieldSrcAS, 4}, {fieldDstAS, 4},
}

// v9 options-template machinery (RFC 3954 §6.1): exporters advertise
// their sampling configuration out of band; collectors apply it to the
// source's data records.
const (
	booterTemplateID       = 256
	samplingOptsTemplateID = 257
	optionsTemplateFlowset = 1
	fieldSamplingInterval  = 34
	fieldSamplingAlgorithm = 35
	scopeSystem            = 1
)

// V9Exporter encodes flow records into NetFlow v9 packets, emitting the
// template flowset in the first packet (and then every TemplateRefresh
// packets).
type V9Exporter struct {
	// SourceID identifies the exporting observation domain.
	SourceID uint32
	// BootTime anchors relative timestamps.
	BootTime time.Time
	// TemplateRefresh re-emits the template every N packets (default 20).
	TemplateRefresh int
	// SamplingRate advertises the exporter's 1-in-N packet sampling via
	// an options template (0/1 = unsampled). Collectors apply it to all
	// of this source's records.
	SamplingRate uint32

	seq     uint32
	packets int
}

// EncodeV9 builds one v9 export packet carrying all given records.
func (e *V9Exporter) EncodeV9(records []flow.Record, now time.Time) ([]byte, error) {
	if len(records) == 0 {
		return nil, ErrTooMany
	}
	refresh := e.TemplateRefresh
	if refresh <= 0 {
		refresh = 20
	}
	withTemplate := e.packets%refresh == 0
	e.packets++

	recLen := 0
	for _, f := range booterTemplate {
		recLen += int(f.Length)
	}

	var body []byte
	flowsets := 0
	if withTemplate {
		var tpl []byte
		tpl = binary.BigEndian.AppendUint16(tpl, booterTemplateID)
		tpl = binary.BigEndian.AppendUint16(tpl, uint16(len(booterTemplate)))
		for _, f := range booterTemplate {
			tpl = binary.BigEndian.AppendUint16(tpl, f.Type)
			tpl = binary.BigEndian.AppendUint16(tpl, f.Length)
		}
		body = binary.BigEndian.AppendUint16(body, 0) // template flowset id
		body = binary.BigEndian.AppendUint16(body, uint16(4+len(tpl)))
		body = append(body, tpl...)
		flowsets++

		if e.SamplingRate > 1 {
			// Options template: one System scope, sampling interval +
			// algorithm options.
			var opt []byte
			opt = binary.BigEndian.AppendUint16(opt, samplingOptsTemplateID)
			opt = binary.BigEndian.AppendUint16(opt, 4) // scope length bytes
			opt = binary.BigEndian.AppendUint16(opt, 8) // option length bytes
			opt = binary.BigEndian.AppendUint16(opt, scopeSystem)
			opt = binary.BigEndian.AppendUint16(opt, 4)
			opt = binary.BigEndian.AppendUint16(opt, fieldSamplingInterval)
			opt = binary.BigEndian.AppendUint16(opt, 4)
			opt = binary.BigEndian.AppendUint16(opt, fieldSamplingAlgorithm)
			opt = binary.BigEndian.AppendUint16(opt, 1)
			pad := (4 - (4+len(opt))%4) % 4
			body = binary.BigEndian.AppendUint16(body, optionsTemplateFlowset)
			body = binary.BigEndian.AppendUint16(body, uint16(4+len(opt)+pad))
			body = append(body, opt...)
			body = append(body, make([]byte, pad)...)
			flowsets++

			// Options data record: scope value + sampling interval +
			// algorithm (2 = random... 1 = deterministic; we export 1).
			var data []byte
			data = binary.BigEndian.AppendUint32(data, e.SourceID)
			data = binary.BigEndian.AppendUint32(data, e.SamplingRate)
			data = append(data, 1)
			pad = (4 - (4+len(data))%4) % 4
			body = binary.BigEndian.AppendUint16(body, samplingOptsTemplateID)
			body = binary.BigEndian.AppendUint16(body, uint16(4+len(data)+pad))
			body = append(body, data...)
			body = append(body, make([]byte, pad)...)
			flowsets++
		}
	}

	var data []byte
	for i := range records {
		r := &records[i]
		data = binary.BigEndian.AppendUint32(data, netutil.Addr4Val(r.Src))
		data = binary.BigEndian.AppendUint32(data, netutil.Addr4Val(r.Dst))
		data = binary.BigEndian.AppendUint64(data, r.Packets)
		data = binary.BigEndian.AppendUint64(data, r.Bytes)
		data = binary.BigEndian.AppendUint32(data, uint32(r.Start.Sub(e.BootTime)/time.Millisecond))
		data = binary.BigEndian.AppendUint32(data, uint32(r.End.Sub(e.BootTime)/time.Millisecond))
		data = binary.BigEndian.AppendUint16(data, r.SrcPort)
		data = binary.BigEndian.AppendUint16(data, r.DstPort)
		data = append(data, r.Protocol)
		data = binary.BigEndian.AppendUint32(data, r.SrcAS)
		data = binary.BigEndian.AppendUint32(data, r.DstAS)
	}
	// Pad the data flowset to a 4-byte boundary.
	pad := (4 - (4+len(data))%4) % 4
	body = binary.BigEndian.AppendUint16(body, booterTemplateID)
	body = binary.BigEndian.AppendUint16(body, uint16(4+len(data)+pad))
	body = append(body, data...)
	body = append(body, make([]byte, pad)...)
	flowsets++

	b := make([]byte, 0, v9HeaderLen+len(body))
	b = binary.BigEndian.AppendUint16(b, 9)
	b = binary.BigEndian.AppendUint16(b, uint16(flowsets))
	b = binary.BigEndian.AppendUint32(b, uint32(now.Sub(e.BootTime)/time.Millisecond))
	b = binary.BigEndian.AppendUint32(b, uint32(now.Unix()))
	b = binary.BigEndian.AppendUint32(b, e.seq)
	e.seq++
	b = binary.BigEndian.AppendUint32(b, e.SourceID)
	return append(b, body...), nil
}

// optTemplate is a parsed options template.
type optTemplate struct {
	scopeLen int // total scope bytes
	fields   []templateField
}

// V9Collector decodes NetFlow v9 packets, tracking templates and
// sampling options per source ID as RFC 3954 requires.
type V9Collector struct {
	templates    map[uint64][]templateField // (sourceID<<16|templateID) -> fields
	optTemplates map[uint64]optTemplate
	sampling     map[uint32]uint32 // sourceID -> advertised 1-in-N rate
}

// NewV9Collector returns an empty collector.
func NewV9Collector() *V9Collector {
	return &V9Collector{
		templates:    make(map[uint64][]templateField),
		optTemplates: make(map[uint64]optTemplate),
		sampling:     make(map[uint32]uint32),
	}
}

// SamplingRate reports the advertised sampling rate of a source (1 when
// none was announced).
func (c *V9Collector) SamplingRate(sourceID uint32) uint32 {
	if r, ok := c.sampling[sourceID]; ok && r > 1 {
		return r
	}
	return 1
}

// DecodeV9 parses one v9 packet, returning the flow records of all data
// flowsets whose template is known. Template flowsets update collector
// state. Records referencing unknown templates yield ErrNoTemplate.
func (c *V9Collector) DecodeV9(b []byte) ([]flow.Record, error) {
	if len(b) < v9HeaderLen {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint16(b) != 9 {
		return nil, ErrBadVersion
	}
	uptime32 := binary.BigEndian.Uint32(b[4:])
	ts := time.Unix(int64(binary.BigEndian.Uint32(b[8:])), 0).UTC()
	sourceID := binary.BigEndian.Uint32(b[16:])

	var out []flow.Record
	off := v9HeaderLen
	for off+4 <= len(b) {
		setID := binary.BigEndian.Uint16(b[off:])
		setLen := int(binary.BigEndian.Uint16(b[off+2:]))
		if setLen < 4 || off+setLen > len(b) {
			return nil, errBadFlowset
		}
		content := b[off+4 : off+setLen]
		switch {
		case setID == 0:
			if err := c.parseTemplates(sourceID, content); err != nil {
				return nil, err
			}
		case setID == optionsTemplateFlowset:
			if err := c.parseOptionsTemplates(sourceID, content); err != nil {
				return nil, err
			}
		case setID >= 256:
			if ot, ok := c.optTemplates[uint64(sourceID)<<16|uint64(setID)]; ok {
				if err := c.parseOptionsData(sourceID, ot, content); err != nil {
					return nil, err
				}
				break
			}
			recs, err := c.parseData(sourceID, setID, content, ts, uptime32)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		off += setLen
	}
	return out, nil
}

// parseOptionsTemplates consumes an options template flowset.
func (c *V9Collector) parseOptionsTemplates(sourceID uint32, b []byte) error {
	off := 0
	for off+6 <= len(b) {
		tid := binary.BigEndian.Uint16(b[off:])
		if tid == 0 {
			break // padding
		}
		scopeBytes := int(binary.BigEndian.Uint16(b[off+2:]))
		optionBytes := int(binary.BigEndian.Uint16(b[off+4:]))
		off += 6
		if off+scopeBytes+optionBytes > len(b) {
			return errBadTemplate
		}
		ot := optTemplate{}
		for so := 0; so < scopeBytes; so += 4 {
			ot.scopeLen += int(binary.BigEndian.Uint16(b[off+so+2:]))
		}
		off += scopeBytes
		for oo := 0; oo < optionBytes; oo += 4 {
			ot.fields = append(ot.fields, templateField{
				Type:   binary.BigEndian.Uint16(b[off+oo:]),
				Length: binary.BigEndian.Uint16(b[off+oo+2:]),
			})
		}
		off += optionBytes
		c.optTemplates[uint64(sourceID)<<16|uint64(tid)] = ot
	}
	return nil
}

// parseOptionsData extracts sampling configuration from options data
// records.
func (c *V9Collector) parseOptionsData(sourceID uint32, ot optTemplate, b []byte) error {
	recLen := ot.scopeLen
	for _, f := range ot.fields {
		recLen += int(f.Length)
	}
	if recLen == 0 {
		return errBadTemplate
	}
	for off := 0; off+recLen <= len(b); off += recLen {
		fo := off + ot.scopeLen
		for _, f := range ot.fields {
			v := b[fo : fo+int(f.Length)]
			if f.Type == fieldSamplingInterval {
				if rate := uint32(beUint(v)); rate > 1 {
					c.sampling[sourceID] = rate
				}
			}
			fo += int(f.Length)
		}
	}
	return nil
}

func (c *V9Collector) parseTemplates(sourceID uint32, b []byte) error {
	off := 0
	for off+4 <= len(b) {
		tid := binary.BigEndian.Uint16(b[off:])
		count := int(binary.BigEndian.Uint16(b[off+2:]))
		off += 4
		if off+count*4 > len(b) {
			return errBadTemplate
		}
		fields := make([]templateField, count)
		for i := 0; i < count; i++ {
			fields[i] = templateField{
				Type:   binary.BigEndian.Uint16(b[off:]),
				Length: binary.BigEndian.Uint16(b[off+2:]),
			}
			off += 4
		}
		c.templates[uint64(sourceID)<<16|uint64(tid)] = fields
	}
	return nil
}

func (c *V9Collector) parseData(sourceID uint32, tid uint16, b []byte, ts time.Time, uptime32 uint32) ([]flow.Record, error) {
	fields, ok := c.templates[uint64(sourceID)<<16|uint64(tid)]
	if !ok {
		return nil, ErrNoTemplate
	}
	recLen := 0
	for _, f := range fields {
		recLen += int(f.Length)
	}
	if recLen == 0 {
		return nil, errBadTemplate
	}
	var out []flow.Record
	for off := 0; off+recLen <= len(b); off += recLen {
		rec := flow.Record{SamplingRate: c.SamplingRate(sourceID)}
		fo := off
		for _, f := range fields {
			v := b[fo : fo+int(f.Length)]
			switch f.Type {
			case fieldIPv4Src:
				rec.Src = netutil.Addr4(binary.BigEndian.Uint32(v))
			case fieldIPv4Dst:
				rec.Dst = netutil.Addr4(binary.BigEndian.Uint32(v))
			case fieldInPkts:
				rec.Packets = beUint(v)
			case fieldInBytes:
				rec.Bytes = beUint(v)
			case fieldFirst:
				rec.Start = uptimeTime(ts, uptime32, binary.BigEndian.Uint32(v))
			case fieldLast:
				rec.End = uptimeTime(ts, uptime32, binary.BigEndian.Uint32(v))
			case fieldL4Src:
				rec.SrcPort = binary.BigEndian.Uint16(v)
			case fieldL4Dst:
				rec.DstPort = binary.BigEndian.Uint16(v)
			case fieldProtocol:
				rec.Protocol = v[0]
			case fieldSrcAS:
				rec.SrcAS = uint32(beUint(v))
			case fieldDstAS:
				rec.DstAS = uint32(beUint(v))
			}
			fo += int(f.Length)
		}
		out = append(out, rec)
	}
	return out, nil
}

// beUint reads a big-endian unsigned integer of 1..8 bytes.
func beUint(b []byte) uint64 {
	var v uint64
	for _, c := range b {
		v = v<<8 | uint64(c)
	}
	return v
}

// Version sniffs the NetFlow version of an export packet.
func Version(b []byte) (int, error) {
	if len(b) < 2 {
		return 0, ErrTruncated
	}
	v := int(binary.BigEndian.Uint16(b))
	switch v {
	case 5, 9:
		return v, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
}
