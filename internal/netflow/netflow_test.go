package netflow

import (
	"net/netip"
	"testing"
	"time"

	"booterscope/internal/flow"
)

var (
	boot = time.Date(2018, 9, 1, 0, 0, 0, 0, time.UTC)
	now  = time.Date(2018, 12, 19, 10, 0, 0, 0, time.UTC)
)

func sampleRecords(n int) []flow.Record {
	recs := make([]flow.Record, n)
	for i := range recs {
		recs[i] = flow.Record{
			Key: flow.Key{
				Src:      netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
				Dst:      netip.MustParseAddr("192.0.2.9"),
				SrcPort:  123,
				DstPort:  uint16(40000 + i),
				Protocol: 17,
			},
			Packets:      uint64(100 + i),
			Bytes:        uint64(48600 + i),
			Start:        now.Add(-time.Minute),
			End:          now,
			SrcAS:        uint32(64500 + i),
			DstAS:        64999,
			SamplingRate: 1,
		}
	}
	return recs
}

func TestV5RoundTrip(t *testing.T) {
	e := &V5Exporter{BootTime: boot}
	recs := sampleRecords(3)
	pkt, err := e.EncodeV5(recs, now)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := Version(pkt); v != 5 {
		t.Fatalf("version = %d", v)
	}
	dec, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Records) != 3 {
		t.Fatalf("records = %d", len(dec.Records))
	}
	for i, r := range dec.Records {
		want := recs[i]
		if r.Src != want.Src || r.Dst != want.Dst {
			t.Errorf("rec %d addrs = %v->%v", i, r.Src, r.Dst)
		}
		if r.Packets != want.Packets || r.Bytes != want.Bytes {
			t.Errorf("rec %d counters = %d/%d", i, r.Packets, r.Bytes)
		}
		if r.SrcPort != want.SrcPort || r.DstPort != want.DstPort || r.Protocol != 17 {
			t.Errorf("rec %d l4 = %d->%d proto %d", i, r.SrcPort, r.DstPort, r.Protocol)
		}
		if r.SrcAS != want.SrcAS || r.DstAS != want.DstAS {
			t.Errorf("rec %d AS = %d->%d", i, r.SrcAS, r.DstAS)
		}
		if !r.Start.Equal(want.Start) || !r.End.Equal(want.End) {
			t.Errorf("rec %d times = %v..%v, want %v..%v", i, r.Start, r.End, want.Start, want.End)
		}
	}
	if dec.SamplingRate != 1 {
		t.Errorf("sampling = %d", dec.SamplingRate)
	}
}

func TestV5Sampling(t *testing.T) {
	e := &V5Exporter{BootTime: boot, SamplingRate: 1000}
	pkt, err := e.EncodeV5(sampleRecords(1), now)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if dec.SamplingRate != 1000 {
		t.Errorf("sampling = %d", dec.SamplingRate)
	}
	if dec.Records[0].SamplingRate != 1000 {
		t.Errorf("record sampling = %d", dec.Records[0].SamplingRate)
	}
	if dec.Records[0].ScaledPackets() != dec.Records[0].Packets*1000 {
		t.Error("scaled packets wrong")
	}
}

func TestV5SamplingTooLarge(t *testing.T) {
	e := &V5Exporter{BootTime: boot, SamplingRate: 0x4000}
	if _, err := e.EncodeV5(sampleRecords(1), now); err != ErrNotSampled {
		t.Errorf("err = %v", err)
	}
}

func TestV5SequenceAdvances(t *testing.T) {
	e := &V5Exporter{BootTime: boot}
	p1, _ := e.EncodeV5(sampleRecords(3), now)
	p2, _ := e.EncodeV5(sampleRecords(2), now)
	d1, _ := DecodeV5(p1)
	d2, _ := DecodeV5(p2)
	if d1.Sequence != 0 || d2.Sequence != 3 {
		t.Errorf("sequences = %d, %d", d1.Sequence, d2.Sequence)
	}
}

func TestV5RecordLimits(t *testing.T) {
	e := &V5Exporter{BootTime: boot}
	if _, err := e.EncodeV5(nil, now); err != ErrTooMany {
		t.Errorf("empty err = %v", err)
	}
	if _, err := e.EncodeV5(sampleRecords(31), now); err != ErrTooMany {
		t.Errorf("31 records err = %v", err)
	}
	if _, err := e.EncodeV5(sampleRecords(30), now); err != nil {
		t.Errorf("30 records err = %v", err)
	}
}

func TestV5CounterClamp(t *testing.T) {
	recs := sampleRecords(1)
	recs[0].Bytes = 1 << 40
	e := &V5Exporter{BootTime: boot}
	pkt, err := e.EncodeV5(recs, now)
	if err != nil {
		t.Fatal(err)
	}
	dec, _ := DecodeV5(pkt)
	if dec.Records[0].Bytes != 0xffffffff {
		t.Errorf("clamped bytes = %d", dec.Records[0].Bytes)
	}
}

func TestV5DecodeErrors(t *testing.T) {
	if _, err := DecodeV5([]byte{0, 5}); err != ErrTruncated {
		t.Errorf("short err = %v", err)
	}
	e := &V5Exporter{BootTime: boot}
	pkt, _ := e.EncodeV5(sampleRecords(2), now)
	pkt[1] = 9 // corrupt version
	if _, err := DecodeV5(pkt); err != ErrBadVersion {
		t.Errorf("version err = %v", err)
	}
	pkt[1] = 5
	if _, err := DecodeV5(pkt[:v5HeaderLen+10]); err != ErrTruncated {
		t.Errorf("truncated records err = %v", err)
	}
}

func TestV9RoundTrip(t *testing.T) {
	e := &V9Exporter{SourceID: 7, BootTime: boot}
	c := NewV9Collector()
	recs := sampleRecords(5)
	recs[2].Packets = 1 << 40 // v9 uses 64-bit counters: no clamping
	pkt, err := e.EncodeV9(recs, now)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := Version(pkt); v != 9 {
		t.Fatalf("version = %d", v)
	}
	got, err := c.DecodeV9(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("records = %d", len(got))
	}
	for i, r := range got {
		want := recs[i]
		if r.Src != want.Src || r.Dst != want.Dst || r.SrcPort != want.SrcPort ||
			r.DstPort != want.DstPort || r.Protocol != want.Protocol {
			t.Errorf("rec %d key = %+v", i, r.Key)
		}
		if r.Packets != want.Packets || r.Bytes != want.Bytes {
			t.Errorf("rec %d counters = %d/%d want %d/%d", i, r.Packets, r.Bytes, want.Packets, want.Bytes)
		}
		if r.SrcAS != want.SrcAS || r.DstAS != want.DstAS {
			t.Errorf("rec %d AS = %d/%d", i, r.SrcAS, r.DstAS)
		}
		if !r.Start.Equal(want.Start) || !r.End.Equal(want.End) {
			t.Errorf("rec %d times = %v..%v", i, r.Start, r.End)
		}
	}
}

func TestV9RequiresTemplate(t *testing.T) {
	e := &V9Exporter{SourceID: 7, BootTime: boot, TemplateRefresh: 100}
	recs := sampleRecords(1)
	first, err := e.EncodeV9(recs, now) // carries the template
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.EncodeV9(recs, now) // data only
	if err != nil {
		t.Fatal(err)
	}
	if len(second) >= len(first) {
		t.Errorf("data-only packet (%d) not smaller than template packet (%d)", len(second), len(first))
	}
	fresh := NewV9Collector()
	if _, err := fresh.DecodeV9(second); err != ErrNoTemplate {
		t.Errorf("decode without template err = %v", err)
	}
	if _, err := fresh.DecodeV9(first); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.DecodeV9(second)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("records = %d", len(got))
	}
}

func TestV9TemplatesPerSourceID(t *testing.T) {
	eA := &V9Exporter{SourceID: 1, BootTime: boot, TemplateRefresh: 100}
	eB := &V9Exporter{SourceID: 2, BootTime: boot, TemplateRefresh: 100}
	c := NewV9Collector()
	recs := sampleRecords(1)
	pktA, _ := eA.EncodeV9(recs, now)
	if _, err := c.DecodeV9(pktA); err != nil {
		t.Fatal(err)
	}
	// Source B's template was never seen; its data must not decode via A's.
	_, _ = eB.EncodeV9(recs, now) // consume template emission
	pktB, _ := eB.EncodeV9(recs, now)
	if _, err := c.DecodeV9(pktB); err != ErrNoTemplate {
		t.Errorf("cross-source decode err = %v", err)
	}
}

func TestV9SequenceAdvances(t *testing.T) {
	e := &V9Exporter{SourceID: 7, BootTime: boot}
	c := NewV9Collector()
	for want := 0; want < 3; want++ {
		pkt, err := e.EncodeV9(sampleRecords(2), now)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.DecodeV9(pkt); err != nil {
			t.Fatal(err)
		}
		// Sequence lives at offset 12.
		got := int(pkt[12])<<24 | int(pkt[13])<<16 | int(pkt[14])<<8 | int(pkt[15])
		if got != want {
			t.Errorf("sequence = %d, want %d", got, want)
		}
	}
}

func TestV9EmptyRecords(t *testing.T) {
	e := &V9Exporter{BootTime: boot}
	if _, err := e.EncodeV9(nil, now); err == nil {
		t.Error("expected error for empty record set")
	}
}

func TestV9MalformedFlowset(t *testing.T) {
	e := &V9Exporter{SourceID: 7, BootTime: boot}
	c := NewV9Collector()
	pkt, _ := e.EncodeV9(sampleRecords(1), now)
	pkt[v9HeaderLen+2] = 0 // zero the first flowset length
	pkt[v9HeaderLen+3] = 1
	if _, err := c.DecodeV9(pkt); err == nil {
		t.Error("expected error for malformed flowset")
	}
}

func TestVersionSniff(t *testing.T) {
	if _, err := Version([]byte{0}); err != ErrTruncated {
		t.Errorf("short err = %v", err)
	}
	if _, err := Version([]byte{0, 7}); err == nil {
		t.Error("expected error for version 7")
	}
}

func BenchmarkEncodeV5(b *testing.B) {
	e := &V5Exporter{BootTime: boot}
	recs := sampleRecords(30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := e.EncodeV5(recs, now); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV9(b *testing.B) {
	e := &V9Exporter{SourceID: 7, BootTime: boot, TemplateRefresh: 1 << 30}
	c := NewV9Collector()
	tpl, _ := e.EncodeV9(sampleRecords(1), now)
	if _, err := c.DecodeV9(tpl); err != nil {
		b.Fatal(err)
	}
	pkt, _ := e.EncodeV9(sampleRecords(30), now)
	b.ReportAllocs()
	b.SetBytes(int64(len(pkt)))
	for i := 0; i < b.N; i++ {
		if _, err := c.DecodeV9(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func TestV9SamplingOptions(t *testing.T) {
	e := &V9Exporter{SourceID: 7, BootTime: boot, SamplingRate: 1000}
	c := NewV9Collector()
	pkt, err := e.EncodeV9(sampleRecords(3), now)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := c.DecodeV9(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	if c.SamplingRate(7) != 1000 {
		t.Errorf("collector sampling rate = %d", c.SamplingRate(7))
	}
	for i, r := range recs {
		if r.SamplingRate != 1000 {
			t.Errorf("record %d sampling = %d", i, r.SamplingRate)
		}
		if r.ScaledPackets() != r.Packets*1000 {
			t.Errorf("record %d scaling broken", i)
		}
	}
	// Data-only packets (no template refresh) keep the learned rate.
	pkt2, err := e.EncodeV9(sampleRecords(2), now)
	if err != nil {
		t.Fatal(err)
	}
	recs2, err := c.DecodeV9(pkt2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs2 {
		if r.SamplingRate != 1000 {
			t.Errorf("follow-up record sampling = %d", r.SamplingRate)
		}
	}
}

func TestV9SamplingScopedBySource(t *testing.T) {
	sampled := &V9Exporter{SourceID: 1, BootTime: boot, SamplingRate: 500}
	plain := &V9Exporter{SourceID: 2, BootTime: boot}
	c := NewV9Collector()
	p1, _ := sampled.EncodeV9(sampleRecords(1), now)
	p2, _ := plain.EncodeV9(sampleRecords(1), now)
	if _, err := c.DecodeV9(p1); err != nil {
		t.Fatal(err)
	}
	recs, err := c.DecodeV9(p2)
	if err != nil {
		t.Fatal(err)
	}
	if c.SamplingRate(1) != 500 || c.SamplingRate(2) != 1 {
		t.Errorf("rates = %d/%d", c.SamplingRate(1), c.SamplingRate(2))
	}
	if recs[0].SamplingRate != 1 {
		t.Errorf("unsampled source's record got rate %d", recs[0].SamplingRate)
	}
}

func TestV9UnsampledHasNoOptions(t *testing.T) {
	withOpts := &V9Exporter{SourceID: 7, BootTime: boot, SamplingRate: 100}
	without := &V9Exporter{SourceID: 7, BootTime: boot}
	p1, _ := withOpts.EncodeV9(sampleRecords(1), now)
	p2, _ := without.EncodeV9(sampleRecords(1), now)
	if len(p2) >= len(p1) {
		t.Errorf("unsampled packet (%d) not smaller than sampled (%d)", len(p2), len(p1))
	}
}
