package netflow

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"booterscope/internal/flow"
)

// Property-style round-trip tests for the export codecs, pinning the
// representable range of each format exactly:
//
//   - v5 carries 32-bit counters (encode clamps), 16-bit AS numbers
//     (encode truncates), and millisecond times relative to sysUptime.
//   - v9 (booterscope template) carries native 64-bit counters and
//     32-bit AS numbers; times are relative to sysUptime like v5.
//
// Both formats' timestamps wrap mod 2^32 milliseconds (~49.7 days), so
// a decoder anchored at boot = ts - uptime drifts by 2^32 ms as soon as
// a router's uptime passes the wrap. The decoders reconstruct times as
// a signed mod-2^32 delta against the header uptime, which is exact for
// any flow within ~24.8 days of the export timestamp regardless of
// uptime — the long-uptime cases below would fail under the boot-anchor
// scheme.

// randV5Record draws a record inside v5's representable range.
func randV5Record(rng *rand.Rand, now time.Time) flow.Record {
	a4 := func() netip.Addr {
		var b [4]byte
		rng.Read(b[:])
		return netip.AddrFrom4(b)
	}
	counter := func() uint64 {
		switch rng.Intn(3) {
		case 0:
			return 0
		case 1:
			return math.MaxUint32
		default:
			return uint64(rng.Uint32())
		}
	}
	// Flow times live within the sFlow/NetFlow validity window around
	// the export time (here: up to ~24 days back, ms granularity).
	start := now.Add(-time.Duration(rng.Int63n(int64(24 * 24 * time.Hour)))).Truncate(time.Millisecond)
	return flow.Record{
		Key: flow.Key{
			Src: a4(), Dst: a4(),
			SrcPort:  uint16(rng.Intn(1 << 16)),
			DstPort:  uint16(rng.Intn(1 << 16)),
			Protocol: uint8(rng.Intn(256)),
		},
		Packets: counter(),
		Bytes:   counter(),
		Start:   start,
		End:     start.Add(time.Duration(rng.Int63n(int64(5 * time.Minute)))).Truncate(time.Millisecond),
		SrcAS:   uint32(rng.Intn(1 << 16)),
		DstAS:   uint32(rng.Intn(1 << 16)),
	}
}

// TestV5RoundTripProperty: random in-range records must round-trip
// exactly through EncodeV5/DecodeV5 across a sweep of boot times,
// including boots far enough in the past that the uptime counter has
// wrapped several times.
func TestV5RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	now := time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)
	boots := []time.Time{
		now.Add(-time.Hour),                   // young router
		now.Add(-49*24*time.Hour - time.Hour), // just before the 49.7-day wrap
		now.Add(-60 * 24 * time.Hour),         // wrapped once
		now.Add(-400 * 24 * time.Hour),        // wrapped many times
	}
	for bi, boot := range boots {
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(MaxV5Records)
			recs := make([]flow.Record, n)
			for i := range recs {
				recs[i] = randV5Record(rng, now)
			}
			e := &V5Exporter{BootTime: boot}
			pkt, err := e.EncodeV5(recs, now)
			if err != nil {
				t.Fatalf("boot %d trial %d: encode: %v", bi, trial, err)
			}
			dec, err := DecodeV5(pkt)
			if err != nil {
				t.Fatalf("boot %d trial %d: decode: %v", bi, trial, err)
			}
			if len(dec.Records) != n {
				t.Fatalf("boot %d trial %d: %d records, want %d", bi, trial, len(dec.Records), n)
			}
			for i := range recs {
				in, out := &recs[i], &dec.Records[i]
				if out.Key != in.Key {
					t.Fatalf("boot %d trial %d record %d: key %v != %v", bi, trial, i, out.Key, in.Key)
				}
				if out.Packets != in.Packets || out.Bytes != in.Bytes {
					t.Fatalf("boot %d trial %d record %d: counters %d/%d != %d/%d",
						bi, trial, i, out.Packets, out.Bytes, in.Packets, in.Bytes)
				}
				if !out.Start.Equal(in.Start) || !out.End.Equal(in.End) {
					t.Fatalf("boot %d trial %d record %d: times %v/%v != %v/%v (boot %v)",
						bi, trial, i, out.Start, out.End, in.Start, in.End, boot)
				}
				if out.SrcAS != in.SrcAS || out.DstAS != in.DstAS {
					t.Fatalf("boot %d trial %d record %d: AS %d/%d != %d/%d",
						bi, trial, i, out.SrcAS, out.DstAS, in.SrcAS, in.DstAS)
				}
			}
		}
	}
}

// TestV9RoundTripProperty: the v9 template carries 64-bit counters and
// 32-bit AS numbers natively — zero and max-uint64 counters must
// round-trip exactly, again across wrapped uptimes.
func TestV9RoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	now := time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)
	boots := []time.Time{
		now.Add(-time.Hour),
		now.Add(-60 * 24 * time.Hour),  // uptime wrapped
		now.Add(-700 * 24 * time.Hour), // wrapped many times
	}
	counter := func() uint64 {
		switch rng.Intn(3) {
		case 0:
			return 0
		case 1:
			return math.MaxUint64
		default:
			return rng.Uint64()
		}
	}
	for bi, boot := range boots {
		e := &V9Exporter{BootTime: boot, SourceID: 7}
		c := NewV9Collector()
		for trial := 0; trial < 20; trial++ {
			n := 1 + rng.Intn(30)
			recs := make([]flow.Record, n)
			for i := range recs {
				r := randV5Record(rng, now)
				// v9 seconds precision comes from the header clock; flow
				// offsets are ms, so keep ms precision but align the
				// export timestamp to a whole second.
				r.Packets, r.Bytes = counter(), counter()
				r.SrcAS, r.DstAS = rng.Uint32(), rng.Uint32()
				r.SamplingRate = 1
				recs[i] = r
			}
			pkt, err := e.EncodeV9(recs, now)
			if err != nil {
				t.Fatalf("boot %d trial %d: encode: %v", bi, trial, err)
			}
			dec, err := c.DecodeV9(pkt)
			if err != nil {
				t.Fatalf("boot %d trial %d: decode: %v", bi, trial, err)
			}
			if len(dec) != n {
				t.Fatalf("boot %d trial %d: %d records, want %d", bi, trial, len(dec), n)
			}
			for i := range recs {
				in, out := &recs[i], &dec[i]
				if out.Key != in.Key {
					t.Fatalf("boot %d trial %d record %d: key %v != %v", bi, trial, i, out.Key, in.Key)
				}
				if out.Packets != in.Packets || out.Bytes != in.Bytes {
					t.Fatalf("boot %d trial %d record %d: counters %d/%d != %d/%d",
						bi, trial, i, out.Packets, out.Bytes, in.Packets, in.Bytes)
				}
				if !out.Start.Equal(in.Start) || !out.End.Equal(in.End) {
					t.Fatalf("boot %d trial %d record %d: times %v/%v != %v/%v (boot %v)",
						bi, trial, i, out.Start, out.End, in.Start, in.End, boot)
				}
				if out.SrcAS != in.SrcAS || out.DstAS != in.DstAS {
					t.Fatalf("boot %d trial %d record %d: AS %d/%d != %d/%d",
						bi, trial, i, out.SrcAS, out.DstAS, in.SrcAS, in.DstAS)
				}
			}
		}
	}
}

// TestV5UptimeWrapRegression pins the exact bug: a router up 60 days
// (uptime wrapped once) exporting a flow that started 30 seconds ago.
// The boot-anchored reconstruction is off by 2^32 ms (~49.7 days); the
// mod-2^32 delta reconstruction is exact.
func TestV5UptimeWrapRegression(t *testing.T) {
	now := time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)
	boot := now.Add(-60 * 24 * time.Hour)
	start := now.Add(-30 * time.Second)
	rec := flow.Record{
		Key: flow.Key{
			Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.9"),
			SrcPort: 123, DstPort: 40000, Protocol: 17,
		},
		Packets: 10, Bytes: 4800,
		Start: start, End: now.Add(-10 * time.Second),
	}
	e := &V5Exporter{BootTime: boot}
	pkt, err := e.EncodeV5([]flow.Record{rec}, now)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeV5(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Records[0].Start; !got.Equal(start) {
		t.Fatalf("wrapped-uptime start = %v, want %v (off by %v)", got, start, got.Sub(start))
	}
}
