// Package netutil provides small networking helpers shared by all
// booterscope subsystems: IPv4 address arithmetic on netip.Addr,
// deterministic seeded random number generation, and traffic-rate
// formatting.
//
// Everything in this package is allocation-conscious: the simulators built
// on top of it generate millions of packets and flow records per
// experiment.
package netutil

import (
	"fmt"
	"math"
	"math/rand/v2"
	"net/netip"
	"time"
)

// Addr4 converts a 32-bit integer into an IPv4 netip.Addr.
func Addr4(v uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// Addr4Val converts an IPv4 netip.Addr into its 32-bit integer value.
// It panics if addr is not IPv4 (including IPv4-mapped IPv6).
func Addr4Val(addr netip.Addr) uint32 {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	if !addr.Is4() {
		panic(fmt.Sprintf("netutil: Addr4Val on non-IPv4 address %v", addr))
	}
	b := addr.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// NthAddr returns the n-th address inside prefix (0 is the network
// address). It panics if the prefix is not IPv4 or n exceeds the prefix
// size.
func NthAddr(prefix netip.Prefix, n int) netip.Addr {
	if !prefix.Addr().Is4() {
		panic("netutil: NthAddr requires an IPv4 prefix")
	}
	size := 1 << (32 - prefix.Bits())
	if n < 0 || n >= size {
		panic(fmt.Sprintf("netutil: NthAddr index %d out of range for %v", n, prefix))
	}
	return Addr4(Addr4Val(prefix.Masked().Addr()) + uint32(n))
}

// PrefixSize returns the number of addresses contained in an IPv4 prefix.
func PrefixSize(prefix netip.Prefix) int {
	if !prefix.Addr().Is4() {
		panic("netutil: PrefixSize requires an IPv4 prefix")
	}
	return 1 << (32 - prefix.Bits())
}

// Rand is the deterministic random source used throughout booterscope.
// It wraps math/rand/v2 PCG so that every experiment is reproducible from
// an explicit seed. The zero value is not usable; construct with NewRand.
type Rand struct {
	*rand.Rand
}

// NewRand returns a deterministic random source derived from seed. Two
// Rands built from the same seed produce identical streams.
func NewRand(seed uint64) *Rand {
	return &Rand{rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// Fork derives an independent child stream from the parent, keyed by name.
// Forking lets subsystems consume randomness without perturbing each
// other's sequences, keeping experiments stable as code evolves.
func (r *Rand) Fork(name string) *Rand {
	var h uint64 = 14695981039346656037 // FNV-1a offset basis
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return NewRand(h ^ r.Uint64())
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Rand) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Pareto returns a Pareto-distributed value with the given scale (minimum)
// and shape alpha. Heavy-tailed draws model attack magnitudes and flow
// sizes.
func (r *Rand) Pareto(scale, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return scale / math.Pow(u, 1/alpha)
}

// Backoff computes retry delays that grow exponentially with equal
// jitter: attempt n (0-based) draws uniformly from [c/2, c) where
// c = min(Max, Base·2ⁿ). Driving it with a seeded Rand makes retry
// timing reproducible, which the exporter tests rely on.
type Backoff struct {
	// Base is the ceiling of the first attempt's delay (default 50 ms).
	Base time.Duration
	// Max caps the ceiling growth (default 5 s).
	Max time.Duration
	// Rand supplies the jitter; nil disables jitter and returns the
	// ceiling itself.
	Rand *Rand
}

// Delay returns the delay before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	c := base
	for i := 0; i < attempt; i++ {
		c *= 2
		if c >= max || c <= 0 { // overflow-safe: stop doubling at the cap
			c = max
			break
		}
	}
	if b.Rand == nil {
		return c
	}
	half := c / 2
	if half <= 0 {
		return c
	}
	return half + time.Duration(b.Rand.Int64N(int64(half)))
}

// Bitrate is a traffic rate in bits per second.
type Bitrate float64

// Convenience bitrate units.
const (
	Bps  Bitrate = 1
	Kbps         = 1e3 * Bps
	Mbps         = 1e6 * Bps
	Gbps         = 1e9 * Bps
	Tbps         = 1e12 * Bps
)

// Mbps reports the rate in megabits per second.
func (b Bitrate) Mbps() float64 { return float64(b) / 1e6 }

// Gbps reports the rate in gigabits per second.
func (b Bitrate) Gbps() float64 { return float64(b) / 1e9 }

// String formats the bitrate with an auto-selected unit.
func (b Bitrate) String() string {
	switch {
	case b >= Tbps:
		return fmt.Sprintf("%.2f Tbps", float64(b)/1e12)
	case b >= Gbps:
		return fmt.Sprintf("%.2f Gbps", float64(b)/1e9)
	case b >= Mbps:
		return fmt.Sprintf("%.2f Mbps", float64(b)/1e6)
	case b >= Kbps:
		return fmt.Sprintf("%.2f Kbps", float64(b)/1e3)
	default:
		return fmt.Sprintf("%.0f bps", float64(b))
	}
}

// RateFromBytes converts a byte count observed over a duration in seconds
// into a Bitrate.
func RateFromBytes(bytes uint64, seconds float64) Bitrate {
	if seconds <= 0 {
		return 0
	}
	return Bitrate(float64(bytes) * 8 / seconds)
}
