package netutil

import (
	"math"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestAddr4RoundTrip(t *testing.T) {
	cases := []uint32{0, 1, 0x0a000001, 0xc0a80101, 0xffffffff}
	for _, v := range cases {
		addr := Addr4(v)
		if got := Addr4Val(addr); got != v {
			t.Errorf("Addr4Val(Addr4(%#x)) = %#x", v, got)
		}
	}
}

func TestAddr4RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool { return Addr4Val(Addr4(v)) == v }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddr4ValMapped(t *testing.T) {
	mapped := netip.AddrFrom16(netip.MustParseAddr("::ffff:10.0.0.1").As16())
	if got := Addr4Val(mapped); got != 0x0a000001 {
		t.Errorf("Addr4Val(4-in-6) = %#x, want 0x0a000001", got)
	}
}

func TestAddr4ValPanicsOnIPv6(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for IPv6 address")
		}
	}()
	Addr4Val(netip.MustParseAddr("2001:db8::1"))
}

func TestNthAddr(t *testing.T) {
	p := netip.MustParsePrefix("192.0.2.0/24")
	if got := NthAddr(p, 0); got != netip.MustParseAddr("192.0.2.0") {
		t.Errorf("NthAddr(p, 0) = %v", got)
	}
	if got := NthAddr(p, 255); got != netip.MustParseAddr("192.0.2.255") {
		t.Errorf("NthAddr(p, 255) = %v", got)
	}
}

func TestNthAddrUnmaskedPrefix(t *testing.T) {
	// A prefix whose Addr has host bits set must still index from the
	// network address.
	p := netip.MustParsePrefix("192.0.2.77/24")
	if got := NthAddr(p, 1); got != netip.MustParseAddr("192.0.2.1") {
		t.Errorf("NthAddr = %v, want 192.0.2.1", got)
	}
}

func TestNthAddrOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	NthAddr(netip.MustParsePrefix("192.0.2.0/24"), 256)
}

func TestPrefixSize(t *testing.T) {
	if got := PrefixSize(netip.MustParsePrefix("10.0.0.0/24")); got != 256 {
		t.Errorf("PrefixSize(/24) = %d", got)
	}
	if got := PrefixSize(netip.MustParsePrefix("10.0.0.0/32")); got != 1 {
		t.Errorf("PrefixSize(/32) = %d", got)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRandDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRand(1), NewRand(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/64 identical values", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRand(7)
	childA := parent.Fork("alpha")
	parent2 := NewRand(7)
	_ = parent2.Fork("alpha")
	childB := parent2.Fork("beta")
	// A forked child must not replay another-named child's stream.
	diverged := false
	for i := 0; i < 16; i++ {
		if childA.Uint64() != childB.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Error("differently named forks produced identical streams")
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRand(11)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.1 {
		t.Errorf("stddev = %.3f, want ~2", math.Sqrt(variance))
	}
}

func TestParetoLowerBound(t *testing.T) {
	r := NewRand(13)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(5, 1.5); v < 5 {
			t.Fatalf("Pareto draw %.4f below scale 5", v)
		}
	}
}

func TestBitrateString(t *testing.T) {
	cases := []struct {
		rate Bitrate
		want string
	}{
		{500 * Bps, "500 bps"},
		{1500 * Bps, "1.50 Kbps"},
		{2 * Mbps, "2.00 Mbps"},
		{7.078 * Gbps, "7.08 Gbps"},
		{1.7 * Tbps, "1.70 Tbps"},
	}
	for _, c := range cases {
		if got := c.rate.String(); got != c.want {
			t.Errorf("(%v bps).String() = %q, want %q", float64(c.rate), got, c.want)
		}
	}
}

func TestRateFromBytes(t *testing.T) {
	// 125 MB over one second is 1 Gbps.
	if got := RateFromBytes(125_000_000, 1); got != 1*Gbps {
		t.Errorf("RateFromBytes = %v", got)
	}
	if got := RateFromBytes(1000, 0); got != 0 {
		t.Errorf("RateFromBytes with zero duration = %v, want 0", got)
	}
}

func TestBitrateConversions(t *testing.T) {
	r := 2500 * Mbps
	if got := r.Gbps(); got != 2.5 {
		t.Errorf("Gbps() = %v", got)
	}
	if got := r.Mbps(); got != 2500 {
		t.Errorf("Mbps() = %v", got)
	}
}

func TestBackoffGrowthAndJitter(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: time.Second, Rand: NewRand(1)}
	// Attempt n's delay is drawn from [c/2, c) with c = min(Max, Base·2ⁿ).
	for attempt := 0; attempt < 8; attempt++ {
		ceiling := 100 * time.Millisecond
		for i := 0; i < attempt && ceiling < time.Second; i++ {
			ceiling *= 2
		}
		if ceiling > time.Second {
			ceiling = time.Second
		}
		d := b.Delay(attempt)
		if d < ceiling/2 || d >= ceiling {
			t.Errorf("attempt %d delay = %v, want in [%v, %v)", attempt, d, ceiling/2, ceiling)
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	mk := func() []time.Duration {
		b := Backoff{Base: 10 * time.Millisecond, Max: 500 * time.Millisecond, Rand: NewRand(42)}
		out := make([]time.Duration, 6)
		for i := range out {
			out[i] = b.Delay(i)
		}
		return out
	}
	a, c := mk(), mk()
	for i := range a {
		if a[i] != c[i] {
			t.Errorf("attempt %d: %v vs %v from the same seed", i, a[i], c[i])
		}
	}
}

func TestBackoffNoJitterAndDefaults(t *testing.T) {
	b := Backoff{Base: 100 * time.Millisecond, Max: 350 * time.Millisecond}
	want := []time.Duration{100, 200, 350, 350} // capped, jitter-free ceilings (ms)
	for i, w := range want {
		if d := b.Delay(i); d != w*time.Millisecond {
			t.Errorf("attempt %d delay = %v, want %v", i, d, w*time.Millisecond)
		}
	}
	// Zero value picks sane defaults and never returns a non-positive
	// or unbounded delay.
	var z Backoff
	for i := 0; i < 40; i++ {
		if d := z.Delay(i); d <= 0 || d > 5*time.Second {
			t.Errorf("zero-value attempt %d delay = %v", i, d)
		}
	}
}
