// Package observatory implements the study's IXP-based DDoS observatory:
// a measurement AS that receives self-inflicted booter attacks, captures
// the traffic, and performs the post-mortem analysis behind Figure 1 —
// per-second traffic rates, reflector counts, peer-AS counts, and the
// transit/peering handover split.
package observatory

import (
	"fmt"
	"io"
	"net/netip"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/booter"
	"booterscope/internal/flow"
	"booterscope/internal/ixp"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
	"booterscope/internal/pcap"
)

// Observatory is the measurement platform: an AS with a /24, one port at
// the IXP, and full packet capture.
type Observatory struct {
	Fabric *ixp.Fabric
	Prefix netip.Prefix

	rand    *netutil.Rand
	nextISP int
}

// New connects a fresh measurement AS to the fabric.
func New(fabric *ixp.Fabric, asn uint32, prefix netip.Prefix, capacity netutil.Bitrate, seed uint64) (*Observatory, error) {
	if err := fabric.ConnectMeasurementAS(asn, prefix, capacity); err != nil {
		return nil, err
	}
	return &Observatory{
		Fabric: fabric,
		Prefix: prefix,
		rand:   netutil.NewRand(seed).Fork("observatory"),
	}, nil
}

// NextTargetIP hands out a fresh address from the /24 so each attack is
// isolated in the capture, as the study's methodology requires.
func (o *Observatory) NextTargetIP() netip.Addr {
	o.nextISP++
	n := o.nextISP % (netutil.PrefixSize(o.Prefix) - 2)
	return netutil.NthAddr(o.Prefix, 1+n)
}

// SecondSample is one second of the received attack as the capture sees
// it.
type SecondSample struct {
	Second int
	// Mbps is the delivered traffic rate (clamped by the port).
	Mbps float64
	// OfferedMbps is the rate directed at the measurement AS before
	// port drops — what the IXP's sampled flow traces reveal even when
	// the 10GE port saturates (how the study measured the 20 Gbps VIP
	// attack).
	OfferedMbps float64
	// Reflectors is the number of distinct sources delivering traffic.
	Reflectors int
	// Peers is the number of IXP member ASes handing over traffic.
	Peers int
	// ViaTransitFrac is the byte share arriving over the transit link.
	ViaTransitFrac float64
	// TransitFlapped marks seconds where saturation flapped the BGP
	// session.
	TransitFlapped bool
	// Blackholed marks seconds where the victim address was RTBH
	// blackholed: neighbors dropped the traffic at their edges.
	Blackholed bool
	// FlowSpecFilteredMbps is attack traffic discarded at the neighbors'
	// edges by FlowSpec rules this second.
	FlowSpecFilteredMbps float64
}

// Report is the post-mortem analysis of one self-attack.
type Report struct {
	Booter  string
	Vector  amplify.Vector
	Tier    booter.Tier
	Target  netip.Addr
	Samples []SecondSample
	// ReflectorSet is the set of amplifiers the attack drew on (for
	// overlap analysis across attacks).
	ReflectorSet []netip.Addr
	// TransitShare is the overall byte fraction delivered via transit.
	TransitShare float64
	// Flaps counts transit BGP flaps during the attack.
	Flaps int
	// PlatformRecords is the sampled IXP view of the attack (peering
	// traffic only).
	PlatformRecords []flow.Record
}

// PeakMbps returns the highest per-second rate.
func (r *Report) PeakMbps() float64 {
	var peak float64
	for _, s := range r.Samples {
		if s.Mbps > peak {
			peak = s.Mbps
		}
	}
	return peak
}

// PeakOfferedMbps returns the highest per-second rate directed at the
// measurement AS, including traffic the saturated port dropped.
func (r *Report) PeakOfferedMbps() float64 {
	var peak float64
	for _, s := range r.Samples {
		if s.OfferedMbps > peak {
			peak = s.OfferedMbps
		}
	}
	return peak
}

// PeakFilteredMbps returns the highest per-second FlowSpec-discarded
// rate.
func (r *Report) PeakFilteredMbps() float64 {
	var peak float64
	for _, s := range r.Samples {
		if s.FlowSpecFilteredMbps > peak {
			peak = s.FlowSpecFilteredMbps
		}
	}
	return peak
}

// MeanMbps returns the average per-second rate.
func (r *Report) MeanMbps() float64 {
	if len(r.Samples) == 0 {
		return 0
	}
	var sum float64
	for _, s := range r.Samples {
		sum += s.Mbps
	}
	return sum / float64(len(r.Samples))
}

// MaxReflectors returns the peak per-second reflector count.
func (r *Report) MaxReflectors() int {
	max := 0
	for _, s := range r.Samples {
		if s.Reflectors > max {
			max = s.Reflectors
		}
	}
	return max
}

// MaxPeers returns the peak per-second peer count.
func (r *Report) MaxPeers() int {
	max := 0
	for _, s := range r.Samples {
		if s.Peers > max {
			max = s.Peers
		}
	}
	return max
}

// CaptureOptions tunes the packet capture accompanying a run.
type CaptureOptions struct {
	// Writer receives a pcap stream of sampled attack packets. Nil
	// disables capture.
	Writer io.Writer
	// PacketsPerSecond bounds how many real packets are written per
	// second of attack (the full rate would be millions; the capture
	// stores a representative sample). Default 16.
	PacketsPerSecond int
	// OnSample, when set, observes every per-second sample as the
	// attack runs. Mitigation policies hook in here — e.g. announcing
	// an RTBH blackhole once the rate crosses a safety threshold.
	OnSample func(SecondSample)
}

// RunAttack drives a launched attack through the fabric second by
// second and returns the post-mortem report. start stamps the capture
// and platform records.
func (o *Observatory) RunAttack(atk *booter.Attack, start time.Time, opts CaptureOptions) (*Report, error) {
	report := &Report{
		Booter: atk.Order.Service.Name,
		Vector: atk.Order.Vector,
		Tier:   atk.Order.Tier,
		Target: atk.Order.Target,
	}
	for _, ref := range atk.Reflectors {
		report.ReflectorSet = append(report.ReflectorSet, ref.Addr)
	}

	var pw *pcap.Writer
	if opts.Writer != nil {
		var err error
		pw, err = pcap.NewWriter(opts.Writer, pcap.LinkTypeRaw, 0)
		if err != nil {
			return nil, fmt.Errorf("observatory: opening capture: %w", err)
		}
		if opts.PacketsPerSecond <= 0 {
			opts.PacketsPerSecond = 16
		}
	}

	proto, err := amplify.ForVector(atk.Order.Vector)
	if err != nil {
		return nil, err
	}

	var totalBytes, transitBytes uint64
	for {
		em, ok := atk.Next()
		if !ok {
			break
		}
		ts := start.Add(time.Duration(em.Second) * time.Second)
		if o.Fabric.IsBlackholed(atk.Order.Target) {
			// Neighbors drop the traffic at their edges: nothing
			// arrives, not even via peering.
			sample := SecondSample{
				Second:     em.Second,
				Blackholed: true,
			}
			report.Samples = append(report.Samples, sample)
			if opts.OnSample != nil {
				opts.OnSample(sample)
			}
			continue
		}
		h, err := o.Fabric.DeliverTo(atk.Order.Target, em.Sources)
		if err != nil {
			return nil, err
		}

		// Count reflectors whose origin AS actually delivered traffic.
		delivered := make(map[uint32]bool, len(h.ViaPeeringBytes))
		for asn := range h.ViaPeeringBytes {
			delivered[asn] = true
		}
		reflectors := 0
		for asn, n := range em.ReflectorsByAS {
			if delivered[asn] {
				reflectors += n
				continue
			}
			// Transit-delivered ASes: all their reflectors arrive too.
			if o.contributedViaTransit(asn, h) {
				reflectors += n
			}
		}
		deliveredBytes := h.DeliveredBytes()
		sample := SecondSample{
			Second:               em.Second,
			Mbps:                 float64(deliveredBytes) * 8 / 1e6,
			OfferedMbps:          float64(h.ViaTransitBytes+h.PeeringBytesTotal()) * 8 / 1e6,
			Reflectors:           reflectors,
			Peers:                h.PeerCount(),
			TransitFlapped:       h.TransitFlapped,
			FlowSpecFilteredMbps: float64(h.FlowSpecFilteredBytes) * 8 / 1e6,
		}
		if deliveredBytes > 0 {
			sample.ViaTransitFrac = float64(h.ViaTransitBytes) / float64(h.ViaTransitBytes+h.PeeringBytesTotal())
		}
		report.Samples = append(report.Samples, sample)
		if opts.OnSample != nil {
			opts.OnSample(sample)
		}
		if h.TransitFlapped {
			report.Flaps++
		}
		totalBytes += h.ViaTransitBytes + h.PeeringBytesTotal()
		transitBytes += h.ViaTransitBytes

		report.PlatformRecords = append(report.PlatformRecords,
			o.Fabric.PlatformExport(h, atk.Order.Target, atk.Order.Vector.Port(), ts)...)

		if pw != nil && deliveredBytes > 0 {
			if err := o.capturePackets(pw, proto, atk, ts, opts.PacketsPerSecond); err != nil {
				return nil, err
			}
		}
	}
	if totalBytes > 0 {
		report.TransitShare = float64(transitBytes) / float64(totalBytes)
	}
	return report, nil
}

// contributedViaTransit reports whether an AS's traffic was delivered on
// the transit link this second (it is neither a peering AS nor
// unreachable).
func (o *Observatory) contributedViaTransit(asn uint32, h *ixp.Handover) bool {
	if h.ViaTransitBytes == 0 {
		return false
	}
	if _, viaPeering := h.ViaPeeringBytes[asn]; viaPeering {
		return false
	}
	// With transit up every non-peering AS is carried by it.
	return true
}

// captureMTU is the link MTU the capture sees; amplification responses
// larger than this (CLDAP, DNS) arrive as IP fragments.
const captureMTU = 1500

// capturePackets writes a representative sample of genuine attack
// packets (real amplification payloads in real IP/UDP framing,
// fragmented at the MTU exactly as they would arrive on the wire).
func (o *Observatory) capturePackets(pw *pcap.Writer, proto amplify.Protocol, atk *booter.Attack, ts time.Time, n int) error {
	refs := atk.Reflectors
	if len(refs) == 0 {
		return nil
	}
	responses := proto.BuildResponses(o.rand, proto.BuildRequest(o.rand))
	for i := 0; i < n; i++ {
		ref := refs[o.rand.IntN(len(refs))]
		payload := responses[o.rand.IntN(len(responses))]
		pkt := packet.Build(
			&packet.IPv4{
				TTL:      uint8(48 + o.rand.IntN(16)),
				ID:       uint16(o.rand.Uint64()),
				Protocol: packet.IPProtoUDP,
				Src:      ref.Addr,
				Dst:      atk.Order.Target,
			},
			&packet.UDP{SrcPort: atk.Order.Vector.Port(), DstPort: uint16(1024 + o.rand.IntN(60000))},
			packet.Payload(payload),
		)
		frags, err := packet.Fragment(pkt, captureMTU)
		if err != nil {
			return fmt.Errorf("observatory: fragmenting capture packet: %w", err)
		}
		for j, frag := range frags {
			stamp := ts.Add(time.Duration(i)*time.Millisecond + time.Duration(j)*time.Microsecond)
			if err := pw.WritePacket(stamp, frag); err != nil {
				return fmt.Errorf("observatory: writing capture: %w", err)
			}
		}
	}
	return nil
}

// Figure1aPoint is one (reflectors, peers, Mbps) sample for the Figure
// 1(a) scatter.
type Figure1aPoint struct {
	Label      string
	Reflectors int
	Peers      int
	Mbps       float64
}

// Figure1aData flattens reports into per-second scatter points, skipping
// the ramp-up seconds as the study's plots do.
func Figure1aData(reports []*Report) []Figure1aPoint {
	var out []Figure1aPoint
	for _, r := range reports {
		label := fmt.Sprintf("booter %s %v", r.Booter, r.Vector)
		for _, s := range r.Samples {
			if s.Second < 5 {
				continue
			}
			out = append(out, Figure1aPoint{
				Label:      label,
				Reflectors: s.Reflectors,
				Peers:      s.Peers,
				Mbps:       s.Mbps,
			})
		}
	}
	return out
}
