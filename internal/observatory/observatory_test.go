package observatory

import (
	"bytes"
	"io"
	"net/netip"
	"testing"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/booter"
	"booterscope/internal/ixp"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
	"booterscope/internal/pcap"
	"booterscope/internal/reflector"
)

var start = time.Date(2018, 6, 12, 14, 0, 0, 0, time.UTC)

// testRig assembles fabric + observatory + booter engine with reflector
// ASes that partially overlap the IXP membership.
func testRig(t testing.TB, portCapacity netutil.Bitrate) (*Observatory, *booter.Engine) {
	t.Helper()
	f := ixp.New(ixp.Config{RouteServerASN: 65500, TransitASN: 174, PlatformSamplingRate: 100, Seed: 3})
	// 100 members spread sparsely over the reflector AS range
	// (1000..1399): a quarter of reflector ASes peer at the IXP, and 70 %
	// of those prefer their own upstream, yielding the paper's ~80/20
	// transit/peering split.
	for i := 0; i < 100; i++ {
		f.AddMember(uint32(1000+i*4), 100*netutil.Gbps, i%10 >= 3)
	}
	obs, err := New(f, 64512, netip.MustParsePrefix("203.0.113.0/24"), portCapacity, 3)
	if err != nil {
		t.Fatal(err)
	}
	pools := map[amplify.Vector]*reflector.Pool{
		amplify.NTP:       reflector.NewPool(amplify.NTP, 50000, 400, 3),
		amplify.CLDAP:     reflector.NewPool(amplify.CLDAP, 20000, 400, 3),
		amplify.Memcached: reflector.NewPool(amplify.Memcached, 5000, 100, 3),
	}
	return obs, booter.NewEngine(pools, 3)
}

func TestNextTargetIPUnique(t *testing.T) {
	obs, _ := testRig(t, 10*netutil.Gbps)
	seen := make(map[netip.Addr]bool)
	for i := 0; i < 50; i++ {
		ip := obs.NextTargetIP()
		if !obs.Prefix.Contains(ip) {
			t.Fatalf("target %v outside prefix", ip)
		}
		if seen[ip] {
			t.Fatalf("target %v reused within 50 draws", ip)
		}
		seen[ip] = true
	}
}

func TestRunNonVIPAttack(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("A")
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP,
		Target: obs.NextTargetIP(), Duration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.RunAttack(atk, start, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Samples) != 60 {
		t.Fatalf("samples = %d", len(rep.Samples))
	}
	if rep.PeakMbps() < 500 || rep.PeakMbps() > 7100 {
		t.Errorf("peak = %.0f Mbps", rep.PeakMbps())
	}
	if rep.MeanMbps() <= 0 || rep.MeanMbps() > rep.PeakMbps() {
		t.Errorf("mean = %.0f Mbps", rep.MeanMbps())
	}
	// Most traffic should arrive via transit (paper: ~80 %).
	if rep.TransitShare < 0.5 || rep.TransitShare > 0.98 {
		t.Errorf("transit share = %.2f", rep.TransitShare)
	}
	if rep.MaxReflectors() < 100 {
		t.Errorf("max reflectors = %d", rep.MaxReflectors())
	}
	if rep.MaxPeers() < 5 || rep.MaxPeers() > 100 {
		t.Errorf("max peers = %d", rep.MaxPeers())
	}
	if len(rep.ReflectorSet) == 0 {
		t.Error("reflector set empty")
	}
	// Platform records exist and are peering-only (sampled).
	if len(rep.PlatformRecords) == 0 {
		t.Error("no platform records")
	}
	for _, r := range rep.PlatformRecords {
		if r.SrcPort != 123 {
			t.Errorf("platform record src port = %d", r.SrcPort)
		}
	}
}

func TestVIPAttackSaturatesAndFlaps(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("B")
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP, Tier: booter.VIP,
		Target: obs.NextTargetIP(), Duration: 300 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := obs.RunAttack(atk, start, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// A 20 Gbps attack into a 10GE port must saturate and flap the
	// transit session at least once — the study's interrupted VIP run.
	if rep.Flaps == 0 {
		t.Error("VIP attack should flap the transit session")
	}
	// Delivered traffic is clamped at port capacity.
	if rep.PeakMbps() > 10000.1 {
		t.Errorf("peak %.0f Mbps exceeds port capacity", rep.PeakMbps())
	}
	// Some seconds lose transit entirely (session down): transit fraction 0.
	sawTransitLoss := false
	for _, s := range rep.Samples {
		if s.ViaTransitFrac == 0 && s.Mbps > 0 {
			sawTransitLoss = true
			break
		}
	}
	if !sawTransitLoss {
		t.Error("expected seconds with transit down after flap")
	}
}

func TestNoTransitReducesVolumeIncreasesPeers(t *testing.T) {
	run := func(transit bool) (*Report, error) {
		obs, eng := testRig(t, 10*netutil.Gbps)
		if err := obs.Fabric.SetTransit(transit); err != nil {
			return nil, err
		}
		svc, _ := booter.ServiceByName("A")
		atk, err := eng.Launch(booter.Order{
			Service: svc, Vector: amplify.NTP,
			Target: obs.NextTargetIP(), Duration: 60 * time.Second,
		})
		if err != nil {
			return nil, err
		}
		return obs.RunAttack(atk, start, CaptureOptions{})
	}
	withTransit, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	noTransit, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	if noTransit.MeanMbps() >= withTransit.MeanMbps() {
		t.Errorf("no-transit mean %.0f >= with-transit %.0f", noTransit.MeanMbps(), withTransit.MeanMbps())
	}
	if noTransit.MaxPeers() <= withTransit.MaxPeers() {
		t.Errorf("no-transit peers %d <= with-transit %d", noTransit.MaxPeers(), withTransit.MaxPeers())
	}
	if noTransit.TransitShare != 0 {
		t.Errorf("no-transit share = %v", noTransit.TransitShare)
	}
}

func TestCaptureProducesValidPcap(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("A")
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP,
		Target: obs.NextTargetIP(), Duration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := obs.RunAttack(atk, start, CaptureOptions{Writer: &buf, PacketsPerSecond: 8}); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	monlistSized := 0
	for {
		_, data, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		d, err := packet.DecodeIPv4(data)
		if err != nil {
			t.Fatalf("captured packet %d: %v", count, err)
		}
		if d.UDP == nil || d.UDP.SrcPort != 123 {
			t.Fatalf("captured packet %d not from NTP port", count)
		}
		if d.TotalLen == 486 || d.TotalLen == 490 {
			monlistSized++
		}
		count++
	}
	if count != 80 {
		t.Errorf("captured %d packets, want 80", count)
	}
	if monlistSized != count {
		t.Errorf("%d/%d packets have monlist sizes", monlistSized, count)
	}
}

func TestFigure1aData(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("A")
	atk, _ := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP,
		Target: obs.NextTargetIP(), Duration: 30 * time.Second,
	})
	rep, err := obs.RunAttack(atk, start, CaptureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts := Figure1aData([]*Report{rep})
	// Ramp-up seconds (0..4) are skipped.
	if len(pts) != 25 {
		t.Fatalf("points = %d, want 25", len(pts))
	}
	for _, p := range pts {
		if p.Label != "booter A NTP" {
			t.Errorf("label = %q", p.Label)
		}
		if p.Mbps <= 0 || p.Reflectors <= 0 || p.Peers <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
}

func BenchmarkRunAttack(b *testing.B) {
	obs, eng := testRig(b, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("A")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		atk, err := eng.Launch(booter.Order{
			Service: svc, Vector: amplify.NTP,
			Target: obs.NextTargetIP(), Duration: 30 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := obs.RunAttack(atk, start, CaptureOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBlackholeStopsAttackTraffic(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("A")
	target := obs.NextTargetIP()
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP,
		Target: target, Duration: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mitigation policy: blackhole the victim once the delivered rate
	// crosses 1 Gbps — the ethics safety valve from the paper.
	triggered := false
	opts := CaptureOptions{OnSample: func(s SecondSample) {
		if !triggered && s.Mbps > 1000 {
			triggered = true
			if err := obs.Fabric.AnnounceBlackhole(target); err != nil {
				t.Errorf("blackhole: %v", err)
			}
		}
	}}
	rep, err := obs.RunAttack(atk, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !triggered {
		t.Fatal("mitigation never triggered")
	}
	// After the blackhole engages, every remaining second is dropped.
	sawBlackholed := false
	for i, s := range rep.Samples {
		if s.Blackholed {
			sawBlackholed = true
			if s.Mbps != 0 || s.Peers != 0 {
				t.Errorf("second %d: blackholed but traffic arrived", i)
			}
		} else if sawBlackholed {
			t.Errorf("second %d: traffic resumed after blackhole", i)
		}
	}
	if !sawBlackholed {
		t.Fatal("no blackholed seconds recorded")
	}
}

func TestOnSampleObservesEverySecond(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("D")
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.NTP,
		Target: obs.NextTargetIP(), Duration: 15 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	_, err = obs.RunAttack(atk, start, CaptureOptions{OnSample: func(SecondSample) { seen++ }})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 15 {
		t.Errorf("OnSample saw %d seconds, want 15", seen)
	}
}

func TestCLDAPCaptureFragmentsAndReassembles(t *testing.T) {
	obs, eng := testRig(t, 10*netutil.Gbps)
	svc, _ := booter.ServiceByName("B")
	atk, err := eng.Launch(booter.Order{
		Service: svc, Vector: amplify.CLDAP,
		Target: obs.NextTargetIP(), Duration: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := obs.RunAttack(atk, start, CaptureOptions{Writer: &buf, PacketsPerSecond: 6}); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ra := packet.NewReassembler()
	var wirePackets, datagrams, fragmented int
	for {
		hdr, data, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		wirePackets++
		if len(data) > 1500 {
			t.Fatalf("wire packet of %d bytes exceeds the MTU", len(data))
		}
		full, err := ra.Add(data, hdr.Timestamp)
		if err != nil {
			t.Fatal(err)
		}
		if full == nil {
			continue
		}
		datagrams++
		if len(full) > 1500 {
			fragmented++
		}
		d, err := packet.DecodeIPv4(full)
		if err != nil {
			t.Fatalf("reassembled datagram undecodable: %v", err)
		}
		if d.UDP == nil || d.UDP.SrcPort != amplify.CLDAP.Port() {
			t.Fatal("reassembled datagram lost the CLDAP port")
		}
	}
	if datagrams != 30 {
		t.Errorf("datagrams = %d, want 30 (6/s x 5s)", datagrams)
	}
	// CLDAP searchResEntry responses are multi-kilobyte: the capture
	// must contain more wire packets than datagrams.
	if wirePackets <= datagrams {
		t.Errorf("wire packets %d <= datagrams %d; no fragmentation happened", wirePackets, datagrams)
	}
	if fragmented == 0 {
		t.Error("no reassembled datagram exceeded the MTU")
	}
}
