package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"time"
)

// Fragmentation errors.
var (
	ErrFragmentMTU  = errors.New("packet: MTU too small to fragment")
	ErrDontFragment = errors.New("packet: DF set on packet larger than MTU")
	ErrFragOverlap  = errors.New("packet: overlapping fragments")
)

// Fragment splits a serialized IPv4 packet into fragments that fit the
// MTU, RFC 791-style: the IP header is replicated, payload is cut at
// 8-byte boundaries, and flags/offsets are set per fragment. Large
// amplification responses (CLDAP, DNS) exceed typical MTUs and arrive
// fragmented at victims, which is why flow byte counters — not packet
// sizes alone — drive the classification.
func Fragment(pkt []byte, mtu int) ([][]byte, error) {
	if len(pkt) <= mtu {
		return [][]byte{pkt}, nil
	}
	if len(pkt) < 20 || pkt[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < 20 || ihl > len(pkt) {
		return nil, ErrBadIHL
	}
	if mtu < ihl+8 {
		return nil, ErrFragmentMTU
	}
	flags := pkt[6] >> 5
	if flags&IPv4DontFragment != 0 {
		return nil, ErrDontFragment
	}
	payload := pkt[ihl:]
	// Payload bytes per fragment, multiple of 8.
	chunk := (mtu - ihl) &^ 7

	var out [][]byte
	for off := 0; off < len(payload); off += chunk {
		end := off + chunk
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		frag := make([]byte, ihl+end-off)
		copy(frag, pkt[:ihl])
		copy(frag[ihl:], payload[off:end])
		binary.BigEndian.PutUint16(frag[2:], uint16(len(frag)))
		fragFlags := flags &^ IPv4MoreFragments
		if !last {
			fragFlags |= IPv4MoreFragments
		}
		fragOff := uint16(off / 8)
		binary.BigEndian.PutUint16(frag[6:], uint16(fragFlags)<<13|fragOff&0x1fff)
		// Recompute the header checksum.
		binary.BigEndian.PutUint16(frag[10:], 0)
		binary.BigEndian.PutUint16(frag[10:], Checksum(frag[:ihl]))
		out = append(out, frag)
	}
	return out, nil
}

// fragKey identifies one datagram's fragment stream.
type fragKey struct {
	src, dst netip.Addr
	id       uint16
	proto    uint8
}

// fragState accumulates one datagram's fragments.
type fragState struct {
	parts    []fragPart
	total    int // payload length once the last fragment arrives (-1 unknown)
	header   []byte
	lastSeen time.Time
}

type fragPart struct {
	off  int
	data []byte
}

// Reassembler reconstructs fragmented IPv4 datagrams. It is the
// receiving-side counterpart of Fragment, with timeout-based eviction
// like a real stack.
type Reassembler struct {
	// Timeout evicts incomplete datagrams (default 30 s, the classic
	// reassembly timer).
	Timeout time.Duration

	pending map[fragKey]*fragState
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{Timeout: 30 * time.Second, pending: make(map[fragKey]*fragState)}
}

// Pending reports how many datagrams await completion.
func (ra *Reassembler) Pending() int { return len(ra.pending) }

// Add consumes one packet at time now. Unfragmented packets return
// immediately; fragments return the reassembled datagram once complete,
// or nil while parts are missing.
func (ra *Reassembler) Add(pkt []byte, now time.Time) ([]byte, error) {
	if len(pkt) < 20 || pkt[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(pkt[0]&0x0f) * 4
	if ihl < 20 || ihl > len(pkt) {
		return nil, ErrBadIHL
	}
	flagsOff := binary.BigEndian.Uint16(pkt[6:])
	more := flagsOff>>13&uint16(IPv4MoreFragments) != 0
	off := int(flagsOff&0x1fff) * 8
	if !more && off == 0 {
		return pkt, nil // not fragmented
	}

	ra.evict(now)
	key := fragKey{
		src:   netip.AddrFrom4([4]byte(pkt[12:16])),
		dst:   netip.AddrFrom4([4]byte(pkt[16:20])),
		id:    binary.BigEndian.Uint16(pkt[4:]),
		proto: pkt[9],
	}
	st, ok := ra.pending[key]
	if !ok {
		st = &fragState{total: -1}
		ra.pending[key] = st
	}
	st.lastSeen = now
	payload := pkt[ihl:]
	if off == 0 {
		st.header = append([]byte(nil), pkt[:ihl]...)
	}
	st.parts = append(st.parts, fragPart{off: off, data: append([]byte(nil), payload...)})
	if !more {
		st.total = off + len(payload)
	}

	done, err := st.assembled()
	if err != nil {
		delete(ra.pending, key)
		return nil, err
	}
	if done == nil {
		return nil, nil
	}
	delete(ra.pending, key)
	// Rebuild: first fragment's header with cleared frag fields and
	// corrected total length.
	out := make([]byte, len(st.header)+len(done))
	copy(out, st.header)
	copy(out[len(st.header):], done)
	binary.BigEndian.PutUint16(out[2:], uint16(len(out)))
	binary.BigEndian.PutUint16(out[6:], 0)
	binary.BigEndian.PutUint16(out[10:], 0)
	binary.BigEndian.PutUint16(out[10:], Checksum(out[:len(st.header)]))
	return out, nil
}

// assembled returns the contiguous payload if complete (nil otherwise),
// or an error on overlap.
func (st *fragState) assembled() ([]byte, error) {
	if st.total < 0 || st.header == nil {
		return nil, nil
	}
	parts := append([]fragPart(nil), st.parts...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].off < parts[j].off })
	buf := make([]byte, st.total)
	covered := 0
	for _, p := range parts {
		if p.off > covered {
			return nil, nil // hole remains
		}
		end := p.off + len(p.data)
		if p.off < covered && end > covered {
			// Real stacks tolerate exact duplicates; anything else is
			// hostile (teardrop-style).
			return nil, fmt.Errorf("%w: fragment at %d overlaps %d", ErrFragOverlap, p.off, covered)
		}
		if end > st.total {
			return nil, fmt.Errorf("%w: fragment beyond total length", ErrFragOverlap)
		}
		copy(buf[p.off:], p.data)
		if end > covered {
			covered = end
		}
	}
	if covered < st.total {
		return nil, nil
	}
	return buf, nil
}

// evict drops incomplete datagrams past the timeout.
func (ra *Reassembler) evict(now time.Time) {
	timeout := ra.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	for key, st := range ra.pending {
		if now.Sub(st.lastSeen) > timeout {
			delete(ra.pending, key)
		}
	}
}
