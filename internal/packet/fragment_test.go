package packet

import (
	"bytes"
	"testing"
	"time"
)

var fragT0 = time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC)

// bigUDP builds a CLDAP-response-sized packet that needs fragmenting.
func bigUDP(t testing.TB, payloadLen int) []byte {
	t.Helper()
	payload := make([]byte, payloadLen)
	for i := range payload {
		payload[i] = byte(i)
	}
	return Build(
		&IPv4{TTL: 60, ID: 0x1234, Protocol: IPProtoUDP, Src: mustAddr("192.0.2.1"), Dst: mustAddr("203.0.113.9")},
		&UDP{SrcPort: 389, DstPort: 40000},
		Payload(payload),
	)
}

func TestFragmentRoundTrip(t *testing.T) {
	pkt := bigUDP(t, 2900)
	frags, err := Fragment(pkt, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %d, want 2", len(frags))
	}
	for i, f := range frags {
		if len(f) > 1500 {
			t.Fatalf("fragment %d = %d bytes > MTU", i, len(f))
		}
		// Every fragment has a valid header checksum.
		if _, err := DecodeIPv4(f); err != nil && err != ErrTruncated {
			// Non-first fragments fail transport parsing but must not
			// fail header validation.
			if err == ErrBadChecksum || err == ErrNotIPv4 || err == ErrBadIHL {
				t.Fatalf("fragment %d header invalid: %v", i, err)
			}
		}
	}

	ra := NewReassembler()
	var result []byte
	for i, f := range frags {
		out, err := ra.Add(f, fragT0.Add(time.Duration(i)*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && out != nil {
			t.Fatal("reassembled before all fragments arrived")
		}
		if i == len(frags)-1 {
			result = out
		}
	}
	if result == nil {
		t.Fatal("reassembly incomplete")
	}
	if !bytes.Equal(result, pkt) {
		t.Errorf("reassembled packet differs: %d vs %d bytes", len(result), len(pkt))
	}
	d, err := DecodeIPv4(result)
	if err != nil {
		t.Fatalf("reassembled packet undecodable: %v", err)
	}
	if d.UDP == nil || d.UDP.SrcPort != 389 {
		t.Error("transport layer lost in reassembly")
	}
	if ra.Pending() != 0 {
		t.Errorf("pending = %d after completion", ra.Pending())
	}
}

func TestFragmentOutOfOrder(t *testing.T) {
	pkt := bigUDP(t, 4000)
	frags, err := Fragment(pkt, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("fragments = %d", len(frags))
	}
	ra := NewReassembler()
	// Deliver in reverse order.
	var result []byte
	for i := len(frags) - 1; i >= 0; i-- {
		out, err := ra.Add(frags[i], fragT0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			result = out
		}
	}
	if !bytes.Equal(result, pkt) {
		t.Error("out-of-order reassembly failed")
	}
}

func TestFragmentSmallPacketPassthrough(t *testing.T) {
	pkt := bigUDP(t, 100)
	frags, err := Fragment(pkt, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || !bytes.Equal(frags[0], pkt) {
		t.Error("small packet should pass through unfragmented")
	}
	ra := NewReassembler()
	out, err := ra.Add(pkt, fragT0)
	if err != nil || !bytes.Equal(out, pkt) {
		t.Errorf("unfragmented Add: %v", err)
	}
}

func TestFragmentHonorsDF(t *testing.T) {
	payload := make([]byte, 2000)
	pkt := Build(
		&IPv4{TTL: 60, Protocol: IPProtoUDP, Flags: IPv4DontFragment, Src: mustAddr("192.0.2.1"), Dst: mustAddr("203.0.113.9")},
		&UDP{SrcPort: 53, DstPort: 40000},
		Payload(payload),
	)
	if _, err := Fragment(pkt, 1500); err != ErrDontFragment {
		t.Errorf("err = %v, want ErrDontFragment", err)
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	pkt := bigUDP(t, 2000)
	if _, err := Fragment(pkt, 24); err != ErrFragmentMTU {
		t.Errorf("err = %v", err)
	}
}

func TestFragmentOffsetsAligned(t *testing.T) {
	pkt := bigUDP(t, 5000)
	frags, err := Fragment(pkt, 577) // awkward MTU
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frags {
		off := int(uint16(f[6])<<8|uint16(f[7])) & 0x1fff
		if i > 0 && off == 0 {
			t.Fatalf("fragment %d has zero offset", i)
		}
		_ = off // offsets implicitly 8-byte units
		payloadLen := len(f) - 20
		if i < len(frags)-1 && payloadLen%8 != 0 {
			t.Fatalf("fragment %d payload %d not 8-byte aligned", i, payloadLen)
		}
	}
	// And they reassemble.
	ra := NewReassembler()
	var result []byte
	for _, f := range frags {
		out, err := ra.Add(f, fragT0)
		if err != nil {
			t.Fatal(err)
		}
		if out != nil {
			result = out
		}
	}
	if !bytes.Equal(result, pkt) {
		t.Error("awkward-MTU reassembly failed")
	}
}

func TestReassemblerTimeout(t *testing.T) {
	pkt := bigUDP(t, 3000)
	frags, _ := Fragment(pkt, 1500)
	ra := NewReassembler()
	ra.Timeout = time.Second
	if _, err := ra.Add(frags[0], fragT0); err != nil {
		t.Fatal(err)
	}
	if ra.Pending() != 1 {
		t.Fatal("fragment not pending")
	}
	// A much later unrelated fragment evicts the stale state.
	other := bigUDP(t, 3000)
	other[4], other[5] = 0xab, 0xcd // different IP ID
	otherFrags, _ := Fragment(other, 1500)
	if _, err := ra.Add(otherFrags[0], fragT0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if ra.Pending() != 1 {
		t.Errorf("pending = %d; stale datagram should be evicted", ra.Pending())
	}
	// The late second half of the first datagram cannot complete it.
	out, err := ra.Add(frags[1], fragT0.Add(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		t.Error("evicted datagram reassembled")
	}
}

func TestReassemblerRejectsOverlap(t *testing.T) {
	pkt := bigUDP(t, 2900) // two fragments
	frags, _ := Fragment(pkt, 1500)
	if len(frags) != 2 {
		t.Fatalf("fragments = %d", len(frags))
	}
	ra := NewReassembler()
	if _, err := ra.Add(frags[0], fragT0); err != nil {
		t.Fatal(err)
	}
	// Craft the final fragment overlapping into the first's range
	// (teardrop-style): shrink its offset by 8 bytes. The overlap is
	// detected when the datagram would complete.
	evil := append([]byte(nil), frags[1]...)
	flagsOff := uint16(evil[6])<<8 | uint16(evil[7])
	off := flagsOff & 0x1fff
	flagsOff = flagsOff&^0x1fff | (off - 1)
	evil[6], evil[7] = byte(flagsOff>>8), byte(flagsOff)
	evil[10], evil[11] = 0, 0
	cs := Checksum(evil[:20])
	evil[10], evil[11] = byte(cs>>8), byte(cs)
	if _, err := ra.Add(evil, fragT0); err == nil {
		t.Error("overlapping fragment accepted")
	}
	if ra.Pending() != 0 {
		t.Errorf("pending = %d; hostile datagram should be dropped", ra.Pending())
	}
}

func TestFragmentedAmplificationKeepsByteTotals(t *testing.T) {
	// The analytical property the study relies on: fragmentation changes
	// packet counts and sizes but conserves byte volume (minus replicated
	// headers, which add).
	pkt := bigUDP(t, 2900)
	frags, _ := Fragment(pkt, 1500)
	var fragBytes int
	for _, f := range frags {
		fragBytes += len(f)
	}
	if fragBytes < len(pkt) {
		t.Errorf("fragmented bytes %d < original %d", fragBytes, len(pkt))
	}
	if fragBytes > len(pkt)+20*(len(frags)-1) {
		t.Errorf("fragmented bytes %d exceed original + replicated headers", fragBytes)
	}
}

func BenchmarkFragmentReassemble(b *testing.B) {
	pkt := bigUDP(b, 2900)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		frags, err := Fragment(pkt, 1500)
		if err != nil {
			b.Fatal(err)
		}
		ra := NewReassembler()
		for _, f := range frags {
			if _, err := ra.Add(f, fragT0); err != nil {
				b.Fatal(err)
			}
		}
	}
}
