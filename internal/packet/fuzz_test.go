package packet

import (
	"net/netip"
	"testing"
)

func FuzzDecodeIPv4(f *testing.F) {
	f.Add(Build(
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.0.2.9")},
		&UDP{SrcPort: 123, DstPort: 40000},
		Payload(make([]byte, 458)),
	))
	f.Add(Build(
		&IPv4{TTL: 55, Protocol: IPProtoTCP, Src: netip.MustParseAddr("198.51.100.7"), Dst: netip.MustParseAddr("203.0.113.2")},
		&TCP{SrcPort: 443, DstPort: 51000, Flags: TCPSyn},
	))
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeIPv4(data)
		if err != nil {
			return
		}
		// Decoded packets must be internally consistent.
		if d.IPv4 == nil {
			t.Fatal("nil IPv4 layer on successful decode")
		}
		if !d.IPv4.Src.Is4() || !d.IPv4.Dst.Is4() {
			t.Fatal("non-IPv4 addresses decoded")
		}
		if d.UDP != nil && d.TCP != nil {
			t.Fatal("both transport layers set")
		}
	})
}

func FuzzDecodeEthernet(f *testing.F) {
	f.Add(Build(
		&Ethernet{EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.0.2.9")},
		&UDP{SrcPort: 123, DstPort: 40000},
	))
	f.Add(make([]byte, 14))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeEthernet(data)
		if err != nil {
			return
		}
		if d.Ethernet == nil || d.IPv4 == nil {
			t.Fatal("missing layers on successful decode")
		}
	})
}
