// Package packet implements a small, dependency-free packet layer codec in
// the spirit of gopacket: typed layers (Ethernet, IPv4, UDP, TCP, Payload)
// that serialize to and decode from wire-format bytes.
//
// The booterscope simulators generate attack and background traffic as real
// packets so that downstream components (flow builders, classifiers, pcap
// writers) operate on the same byte layouts a production collector would
// see. Only the fields the study needs are modeled; options and extension
// headers are preserved as opaque bytes where they occur.
package packet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// LayerType identifies a decoded protocol layer.
type LayerType uint8

// Known layer types.
const (
	LayerTypeEthernet LayerType = iota + 1
	LayerTypeIPv4
	LayerTypeUDP
	LayerTypeTCP
	LayerTypePayload
)

// String returns the layer type name.
func (t LayerType) String() string {
	switch t {
	case LayerTypeEthernet:
		return "Ethernet"
	case LayerTypeIPv4:
		return "IPv4"
	case LayerTypeUDP:
		return "UDP"
	case LayerTypeTCP:
		return "TCP"
	case LayerTypePayload:
		return "Payload"
	default:
		return fmt.Sprintf("LayerType(%d)", uint8(t))
	}
}

// Layer is a protocol layer that can report its type and serialize itself.
type Layer interface {
	// LayerType reports which protocol this layer represents.
	LayerType() LayerType
	// SerializeTo appends the wire representation of the layer to b and
	// returns the extended slice. payloadLen is the total length of all
	// layers that follow, which length/checksum fields may need.
	SerializeTo(b []byte, payloadLen int) []byte
	// headerLen reports the serialized header size in bytes.
	headerLen() int
}

// Common protocol numbers and EtherTypes.
const (
	EtherTypeIPv4 uint16 = 0x0800

	IPProtoICMP uint8 = 1
	IPProtoTCP  uint8 = 6
	IPProtoUDP  uint8 = 17
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String formats the MAC in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// Ethernet is an Ethernet II frame header.
type Ethernet struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// LayerType implements Layer.
func (e *Ethernet) LayerType() LayerType { return LayerTypeEthernet }

func (e *Ethernet) headerLen() int { return 14 }

// SerializeTo implements Layer.
func (e *Ethernet) SerializeTo(b []byte, _ int) []byte {
	b = append(b, e.Dst[:]...)
	b = append(b, e.Src[:]...)
	return binary.BigEndian.AppendUint16(b, e.EtherType)
}

// IPv4 is an IPv4 header. Options are carried verbatim; the IHL field is
// derived from their length at serialization time.
type IPv4 struct {
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3-bit flags field (DF = 0b010)
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src      netip.Addr
	Dst      netip.Addr
	Options  []byte // length must be a multiple of 4
}

// IPv4 flag bits.
const (
	IPv4DontFragment  uint8 = 0b010
	IPv4MoreFragments uint8 = 0b001
)

// LayerType implements Layer.
func (ip *IPv4) LayerType() LayerType { return LayerTypeIPv4 }

func (ip *IPv4) headerLen() int { return 20 + len(ip.Options) }

// SerializeTo implements Layer.
func (ip *IPv4) SerializeTo(b []byte, payloadLen int) []byte {
	hl := ip.headerLen()
	total := hl + payloadLen
	start := len(b)
	b = append(b, byte(4<<4|hl/4), ip.TOS)
	b = binary.BigEndian.AppendUint16(b, uint16(total))
	b = binary.BigEndian.AppendUint16(b, ip.ID)
	b = binary.BigEndian.AppendUint16(b, uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	b = append(b, ip.TTL, ip.Protocol, 0, 0) // checksum filled below
	src, dst := ip.Src.As4(), ip.Dst.As4()
	b = append(b, src[:]...)
	b = append(b, dst[:]...)
	b = append(b, ip.Options...)
	cs := Checksum(b[start : start+hl])
	binary.BigEndian.PutUint16(b[start+10:], cs)
	return b
}

// UDP is a UDP header. The checksum is computed over the IPv4
// pseudo-header when the packet is built via Build; standalone
// serialization leaves it zero (legal for IPv4).
type UDP struct {
	SrcPort uint16
	DstPort uint16
}

// LayerType implements Layer.
func (u *UDP) LayerType() LayerType { return LayerTypeUDP }

func (u *UDP) headerLen() int { return 8 }

// SerializeTo implements Layer.
func (u *UDP) SerializeTo(b []byte, payloadLen int) []byte {
	b = binary.BigEndian.AppendUint16(b, u.SrcPort)
	b = binary.BigEndian.AppendUint16(b, u.DstPort)
	b = binary.BigEndian.AppendUint16(b, uint16(8+payloadLen))
	return append(b, 0, 0) // checksum optional for IPv4
}

// TCP is a minimal TCP header (no options).
type TCP struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8 // FIN=0x01 SYN=0x02 RST=0x04 PSH=0x08 ACK=0x10
	Window  uint16
}

// TCP flag bits.
const (
	TCPFin uint8 = 0x01
	TCPSyn uint8 = 0x02
	TCPRst uint8 = 0x04
	TCPPsh uint8 = 0x08
	TCPAck uint8 = 0x10
)

// LayerType implements Layer.
func (t *TCP) LayerType() LayerType { return LayerTypeTCP }

func (t *TCP) headerLen() int { return 20 }

// SerializeTo implements Layer.
func (t *TCP) SerializeTo(b []byte, _ int) []byte {
	b = binary.BigEndian.AppendUint16(b, t.SrcPort)
	b = binary.BigEndian.AppendUint16(b, t.DstPort)
	b = binary.BigEndian.AppendUint32(b, t.Seq)
	b = binary.BigEndian.AppendUint32(b, t.Ack)
	b = append(b, 5<<4, t.Flags)
	b = binary.BigEndian.AppendUint16(b, t.Window)
	return append(b, 0, 0, 0, 0) // checksum + urgent pointer
}

// Payload is opaque application data.
type Payload []byte

// LayerType implements Layer.
func (p Payload) LayerType() LayerType { return LayerTypePayload }

func (p Payload) headerLen() int { return len(p) }

// SerializeTo implements Layer.
func (p Payload) SerializeTo(b []byte, _ int) []byte { return append(b, p...) }

// Build serializes the given layers outermost-first into a single packet.
// Length fields are derived from the sizes of inner layers.
func Build(layers ...Layer) []byte {
	// Compute the payload length below each layer.
	below := make([]int, len(layers))
	total := 0
	for i := len(layers) - 1; i >= 0; i-- {
		below[i] = total
		total += layers[i].headerLen()
	}
	b := make([]byte, 0, total)
	for i, l := range layers {
		b = l.SerializeTo(b, below[i])
	}
	return b
}

// Checksum computes the Internet checksum (RFC 1071) over b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum > 0xffff {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Decoded is the result of parsing a packet: the layers present and the
// application payload.
type Decoded struct {
	Ethernet *Ethernet
	IPv4     *IPv4
	UDP      *UDP
	TCP      *TCP
	Payload  []byte
	// TotalLen is the IPv4 total length field, i.e. the on-the-wire size
	// of the IP packet even if the capture was truncated.
	TotalLen int
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("packet: truncated")
	ErrNotIPv4     = errors.New("packet: not an IPv4 packet")
	ErrBadIHL      = errors.New("packet: bad IPv4 header length")
	ErrBadChecksum = errors.New("packet: bad IPv4 header checksum")
)

// DecodeEthernet parses an Ethernet frame and everything it carries.
func DecodeEthernet(b []byte) (*Decoded, error) {
	if len(b) < 14 {
		return nil, ErrTruncated
	}
	eth := &Ethernet{EtherType: binary.BigEndian.Uint16(b[12:14])}
	copy(eth.Dst[:], b[0:6])
	copy(eth.Src[:], b[6:12])
	if eth.EtherType != EtherTypeIPv4 {
		return nil, ErrNotIPv4
	}
	d, err := DecodeIPv4(b[14:])
	if err != nil {
		return nil, err
	}
	d.Ethernet = eth
	return d, nil
}

// DecodeIPv4 parses an IPv4 packet and its transport layer. The header
// checksum is verified.
func DecodeIPv4(b []byte) (*Decoded, error) {
	if len(b) < 20 {
		return nil, ErrTruncated
	}
	if b[0]>>4 != 4 {
		return nil, ErrNotIPv4
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < 20 || ihl > len(b) {
		return nil, ErrBadIHL
	}
	if Checksum(b[:ihl]) != 0 {
		return nil, ErrBadChecksum
	}
	ip := &IPv4{
		TOS:      b[1],
		ID:       binary.BigEndian.Uint16(b[4:6]),
		Flags:    b[6] >> 5,
		FragOff:  binary.BigEndian.Uint16(b[6:8]) & 0x1fff,
		TTL:      b[8],
		Protocol: b[9],
		Src:      netip.AddrFrom4([4]byte(b[12:16])),
		Dst:      netip.AddrFrom4([4]byte(b[16:20])),
	}
	if ihl > 20 {
		ip.Options = append([]byte(nil), b[20:ihl]...)
	}
	totalLen := int(binary.BigEndian.Uint16(b[2:4]))
	d := &Decoded{IPv4: ip, TotalLen: totalLen}
	end := totalLen
	if end > len(b) || end < ihl {
		end = len(b) // truncated or inconsistent capture: take what we have
	}
	rest := b[ihl:end]
	switch ip.Protocol {
	case IPProtoUDP:
		if len(rest) < 8 {
			return nil, ErrTruncated
		}
		d.UDP = &UDP{
			SrcPort: binary.BigEndian.Uint16(rest[0:2]),
			DstPort: binary.BigEndian.Uint16(rest[2:4]),
		}
		d.Payload = rest[8:]
	case IPProtoTCP:
		if len(rest) < 20 {
			return nil, ErrTruncated
		}
		dataOff := int(rest[12]>>4) * 4
		if dataOff < 20 || dataOff > len(rest) {
			return nil, ErrBadIHL
		}
		d.TCP = &TCP{
			SrcPort: binary.BigEndian.Uint16(rest[0:2]),
			DstPort: binary.BigEndian.Uint16(rest[2:4]),
			Seq:     binary.BigEndian.Uint32(rest[4:8]),
			Ack:     binary.BigEndian.Uint32(rest[8:12]),
			Flags:   rest[13],
			Window:  binary.BigEndian.Uint16(rest[14:16]),
		}
		d.Payload = rest[dataOff:]
	default:
		d.Payload = rest
	}
	return d, nil
}
