package packet

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestBuildDecodeUDPRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 100)
	pkt := Build(
		&Ethernet{Dst: MAC{1, 2, 3, 4, 5, 6}, Src: MAC{6, 5, 4, 3, 2, 1}, EtherType: EtherTypeIPv4},
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("192.0.2.9"), Flags: IPv4DontFragment},
		&UDP{SrcPort: 123, DstPort: 40000},
		Payload(payload),
	)
	if len(pkt) != 14+20+8+100 {
		t.Fatalf("packet length = %d, want %d", len(pkt), 14+20+8+100)
	}
	d, err := DecodeEthernet(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ethernet.Src != (MAC{6, 5, 4, 3, 2, 1}) {
		t.Errorf("eth src = %v", d.Ethernet.Src)
	}
	if d.IPv4.Src != mustAddr("10.0.0.1") || d.IPv4.Dst != mustAddr("192.0.2.9") {
		t.Errorf("ip addrs = %v -> %v", d.IPv4.Src, d.IPv4.Dst)
	}
	if d.IPv4.Flags != IPv4DontFragment {
		t.Errorf("flags = %#b", d.IPv4.Flags)
	}
	if d.UDP.SrcPort != 123 || d.UDP.DstPort != 40000 {
		t.Errorf("udp ports = %d -> %d", d.UDP.SrcPort, d.UDP.DstPort)
	}
	if !bytes.Equal(d.Payload, payload) {
		t.Error("payload mismatch")
	}
	if d.TotalLen != 20+8+100 {
		t.Errorf("TotalLen = %d", d.TotalLen)
	}
}

func TestBuildDecodeTCPRoundTrip(t *testing.T) {
	pkt := Build(
		&IPv4{TTL: 55, Protocol: IPProtoTCP, Src: mustAddr("198.51.100.7"), Dst: mustAddr("203.0.113.2")},
		&TCP{SrcPort: 443, DstPort: 51000, Seq: 0xdeadbeef, Ack: 42, Flags: TCPSyn | TCPAck, Window: 65535},
		Payload("hello"),
	)
	d, err := DecodeIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if d.TCP == nil {
		t.Fatal("no TCP layer decoded")
	}
	if d.TCP.Seq != 0xdeadbeef || d.TCP.Ack != 42 {
		t.Errorf("seq/ack = %x/%d", d.TCP.Seq, d.TCP.Ack)
	}
	if d.TCP.Flags != TCPSyn|TCPAck {
		t.Errorf("flags = %#x", d.TCP.Flags)
	}
	if string(d.Payload) != "hello" {
		t.Errorf("payload = %q", d.Payload)
	}
}

func TestIPv4Options(t *testing.T) {
	opts := []byte{0x01, 0x01, 0x01, 0x00} // NOPs + EOL, 4 bytes
	pkt := Build(
		&IPv4{TTL: 1, Protocol: IPProtoUDP, Src: mustAddr("1.1.1.1"), Dst: mustAddr("2.2.2.2"), Options: opts},
		&UDP{SrcPort: 1, DstPort: 2},
	)
	d, err := DecodeIPv4(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d.IPv4.Options, opts) {
		t.Errorf("options = %x", d.IPv4.Options)
	}
}

func TestChecksumValidation(t *testing.T) {
	pkt := Build(
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")},
		&UDP{SrcPort: 5, DstPort: 6},
	)
	pkt[8] ^= 0xff // corrupt TTL without fixing checksum
	if _, err := DecodeIPv4(pkt); err != ErrBadChecksum {
		t.Errorf("err = %v, want ErrBadChecksum", err)
	}
}

func TestChecksumRFC1071Example(t *testing.T) {
	// Classic example from RFC 1071 §3.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != ^uint16(0xddf2) {
		t.Errorf("checksum = %#x, want %#x", got, ^uint16(0xddf2))
	}
}

func TestChecksumOddLength(t *testing.T) {
	// An odd final byte is padded with zero on the right.
	even := Checksum([]byte{0x12, 0x34, 0x56, 0x00})
	odd := Checksum([]byte{0x12, 0x34, 0x56})
	if even != odd {
		t.Errorf("odd-length checksum %#x != padded %#x", odd, even)
	}
}

func TestDecodeTruncated(t *testing.T) {
	for _, n := range []int{0, 5, 13} {
		if _, err := DecodeEthernet(make([]byte, n)); err != ErrTruncated {
			t.Errorf("DecodeEthernet(%d bytes) err = %v", n, err)
		}
	}
	if _, err := DecodeIPv4(make([]byte, 10)); err != ErrTruncated {
		t.Errorf("short IPv4 err = %v", err)
	}
}

func TestDecodeNonIPv4EtherType(t *testing.T) {
	pkt := Build(
		&Ethernet{EtherType: 0x86dd}, // IPv6
		Payload(make([]byte, 40)),
	)
	if _, err := DecodeEthernet(pkt); err != ErrNotIPv4 {
		t.Errorf("err = %v, want ErrNotIPv4", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	b := make([]byte, 20)
	b[0] = 6 << 4
	if _, err := DecodeIPv4(b); err != ErrNotIPv4 {
		t.Errorf("err = %v, want ErrNotIPv4", err)
	}
}

func TestDecodeBadIHL(t *testing.T) {
	pkt := Build(
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")},
		&UDP{SrcPort: 5, DstPort: 6},
	)
	pkt[0] = 4<<4 | 4 // IHL of 16 bytes: below minimum
	if _, err := DecodeIPv4(pkt); err != ErrBadIHL {
		t.Errorf("err = %v, want ErrBadIHL", err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(srcPort, dstPort uint16, src, dst uint32, payload []byte) bool {
		if len(payload) > 1400 {
			payload = payload[:1400]
		}
		sa := netip.AddrFrom4([4]byte{byte(src >> 24), byte(src >> 16), byte(src >> 8), byte(src)})
		da := netip.AddrFrom4([4]byte{byte(dst >> 24), byte(dst >> 16), byte(dst >> 8), byte(dst)})
		pkt := Build(
			&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: sa, Dst: da},
			&UDP{SrcPort: srcPort, DstPort: dstPort},
			Payload(payload),
		)
		d, err := DecodeIPv4(pkt)
		if err != nil {
			return false
		}
		return d.UDP.SrcPort == srcPort && d.UDP.DstPort == dstPort &&
			d.IPv4.Src == sa && d.IPv4.Dst == da && bytes.Equal(d.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLayerTypeStrings(t *testing.T) {
	if LayerTypeIPv4.String() != "IPv4" || LayerTypeUDP.String() != "UDP" {
		t.Error("unexpected layer type names")
	}
	if LayerType(99).String() != "LayerType(99)" {
		t.Errorf("unknown layer type = %q", LayerType(99).String())
	}
}

func TestMACString(t *testing.T) {
	m := MAC{0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Errorf("MAC.String() = %q", got)
	}
}

func TestUDPLengthField(t *testing.T) {
	pkt := Build(
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")},
		&UDP{SrcPort: 123, DstPort: 123},
		Payload(make([]byte, 468)),
	)
	// UDP length lives at IP header (20) + 4.
	udpLen := int(pkt[24])<<8 | int(pkt[25])
	if udpLen != 8+468 {
		t.Errorf("UDP length field = %d, want %d", udpLen, 8+468)
	}
}

func BenchmarkBuildUDP(b *testing.B) {
	ip := &IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")}
	udp := &UDP{SrcPort: 123, DstPort: 40000}
	payload := Payload(make([]byte, 468))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Build(ip, udp, payload)
	}
}

func BenchmarkDecodeIPv4(b *testing.B) {
	pkt := Build(
		&IPv4{TTL: 64, Protocol: IPProtoUDP, Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")},
		&UDP{SrcPort: 123, DstPort: 40000},
		Payload(make([]byte, 468)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeIPv4(pkt); err != nil {
			b.Fatal(err)
		}
	}
}
