package pcap

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, LinkTypeRaw, 0)
	_ = w.WritePacket(time.Unix(1545220800, 0), []byte{1, 2, 3, 4})
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(make([]byte, fileHeaderLen))
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Read everything; bounded by input size, must not panic or
		// allocate unboundedly (capLen is checked against snapLen).
		for i := 0; i < 1000; i++ {
			_, pkt, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			if len(pkt) > r.SnapLen() {
				t.Fatal("packet exceeds snap length")
			}
		}
	})
}
