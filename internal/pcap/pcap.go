// Package pcap reads and writes libpcap capture files (the classic
// tcpdump format, magic 0xa1b2c3d4). The booterscope observatory stores
// self-attack captures in this format so they can be inspected with
// standard tools.
//
// Only the original microsecond-resolution, fixed-endianness file layout
// is implemented; both byte orders are accepted on read.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// LinkType identifies the data link layer of captured packets.
type LinkType uint32

// Link types used by booterscope captures.
const (
	LinkTypeEthernet LinkType = 1
	LinkTypeRaw      LinkType = 101 // raw IP, no link header
)

const (
	magicLE       = 0xd4c3b2a1 // on-disk little-endian magic as read big-endian
	magicBE       = 0xa1b2c3d4
	versionMajor  = 2
	versionMinor  = 4
	fileHeaderLen = 24
	recHeaderLen  = 16
)

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: bad magic number")
	ErrSnapped  = errors.New("pcap: packet exceeds snap length")
)

// Header describes one captured packet.
type Header struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// CaptureLength is the number of bytes stored in the file.
	CaptureLength int
	// OriginalLength is the packet's length on the wire.
	OriginalLength int
}

// Writer writes packets to a pcap stream. Create one with NewWriter.
type Writer struct {
	w       io.Writer
	snapLen int
	scratch [recHeaderLen]byte
}

// NewWriter writes a pcap file header to w and returns a Writer. snapLen
// is the maximum number of bytes stored per packet; 0 selects 65535.
func NewWriter(w io.Writer, link LinkType, snapLen int) (*Writer, error) {
	if snapLen <= 0 {
		snapLen = 65535
	}
	var hdr [fileHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:], magicBE)
	binary.BigEndian.PutUint16(hdr[4:], versionMajor)
	binary.BigEndian.PutUint16(hdr[6:], versionMinor)
	// thiszone, sigfigs stay zero
	binary.BigEndian.PutUint32(hdr[16:], uint32(snapLen))
	binary.BigEndian.PutUint32(hdr[20:], uint32(link))
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing file header: %w", err)
	}
	return &Writer{w: w, snapLen: snapLen}, nil
}

// WritePacket stores one packet. data longer than the snap length is
// truncated; the original length is preserved in the record header.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	origLen := len(data)
	if origLen > w.snapLen {
		data = data[:w.snapLen]
	}
	binary.BigEndian.PutUint32(w.scratch[0:], uint32(ts.Unix()))
	binary.BigEndian.PutUint32(w.scratch[4:], uint32(ts.Nanosecond()/1000))
	binary.BigEndian.PutUint32(w.scratch[8:], uint32(len(data)))
	binary.BigEndian.PutUint32(w.scratch[12:], uint32(origLen))
	if _, err := w.w.Write(w.scratch[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing record data: %w", err)
	}
	return nil
}

// Reader reads packets from a pcap stream. Create one with NewReader.
type Reader struct {
	r       io.Reader
	order   binary.ByteOrder
	link    LinkType
	snapLen int
	scratch [recHeaderLen]byte
}

// NewReader parses the file header from r and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading file header: %w", err)
	}
	var order binary.ByteOrder
	switch binary.BigEndian.Uint32(hdr[0:]) {
	case magicBE:
		order = binary.BigEndian
	case magicLE:
		order = binary.LittleEndian
	default:
		return nil, ErrBadMagic
	}
	return &Reader{
		r:       r,
		order:   order,
		link:    LinkType(order.Uint32(hdr[20:])),
		snapLen: int(order.Uint32(hdr[16:])),
	}, nil
}

// LinkType reports the capture's link layer.
func (r *Reader) LinkType() LinkType { return r.link }

// SnapLen reports the capture's snap length.
func (r *Reader) SnapLen() int { return r.snapLen }

// Next returns the next packet. It returns io.EOF cleanly at end of file.
// The returned data slice is freshly allocated and owned by the caller.
func (r *Reader) Next() (Header, []byte, error) {
	if _, err := io.ReadFull(r.r, r.scratch[:]); err != nil {
		if err == io.EOF {
			return Header{}, nil, io.EOF
		}
		return Header{}, nil, fmt.Errorf("pcap: reading record header: %w", err)
	}
	sec := r.order.Uint32(r.scratch[0:])
	usec := r.order.Uint32(r.scratch[4:])
	capLen := int(r.order.Uint32(r.scratch[8:]))
	origLen := int(r.order.Uint32(r.scratch[12:]))
	if capLen > r.snapLen {
		return Header{}, nil, ErrSnapped
	}
	data := make([]byte, capLen)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Header{}, nil, fmt.Errorf("pcap: reading record data: %w", err)
	}
	h := Header{
		Timestamp:      time.Unix(int64(sec), int64(usec)*1000).UTC(),
		CaptureLength:  capLen,
		OriginalLength: origLen,
	}
	return h, data, nil
}
