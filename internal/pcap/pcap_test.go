package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"time"
)

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 0)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2018, 12, 19, 12, 0, 0, 123456000, time.UTC)
	pkts := [][]byte{
		{1, 2, 3, 4},
		bytes.Repeat([]byte{0xee}, 490),
		{},
	}
	for i, p := range pkts {
		if err := w.WritePacket(t0.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeRaw {
		t.Errorf("link type = %d", r.LinkType())
	}
	if r.SnapLen() != 65535 {
		t.Errorf("snap len = %d", r.SnapLen())
	}
	for i, want := range pkts {
		h, data, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(data, want) {
			t.Errorf("packet %d data mismatch", i)
		}
		if h.OriginalLength != len(want) || h.CaptureLength != len(want) {
			t.Errorf("packet %d lengths = %d/%d", i, h.CaptureLength, h.OriginalLength)
		}
		wantTS := t0.Add(time.Duration(i) * time.Second)
		if !h.Timestamp.Equal(wantTS) {
			t.Errorf("packet %d ts = %v, want %v", i, h.Timestamp, wantTS)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Errorf("after last packet err = %v, want io.EOF", err)
	}
}

func TestSnapLenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeEthernet, 64)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{7}, 1500)
	if err := w.WritePacket(time.Unix(0, 0), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	h, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 64 {
		t.Errorf("captured %d bytes, want 64", len(data))
	}
	if h.OriginalLength != 1500 {
		t.Errorf("original length = %d, want 1500", h.OriginalLength)
	}
}

func TestLittleEndianRead(t *testing.T) {
	// Hand-build a little-endian capture with one 3-byte packet.
	var buf bytes.Buffer
	le := binary.LittleEndian
	hdr := make([]byte, fileHeaderLen)
	le.PutUint32(hdr[0:], magicBE) // LE writers store the magic in LE order
	le.PutUint16(hdr[4:], versionMajor)
	le.PutUint16(hdr[6:], versionMinor)
	le.PutUint32(hdr[16:], 65535)
	le.PutUint32(hdr[20:], uint32(LinkTypeEthernet))
	buf.Write(hdr)
	rec := make([]byte, recHeaderLen)
	le.PutUint32(rec[0:], 1545220800)
	le.PutUint32(rec[4:], 42)
	le.PutUint32(rec[8:], 3)
	le.PutUint32(rec[12:], 3)
	buf.Write(rec)
	buf.Write([]byte{9, 8, 7})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType() != LinkTypeEthernet {
		t.Errorf("link = %d", r.LinkType())
	}
	h, data, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, []byte{9, 8, 7}) {
		t.Errorf("data = %v", data)
	}
	if h.Timestamp.Unix() != 1545220800 {
		t.Errorf("ts = %v", h.Timestamp)
	}
}

func TestBadMagic(t *testing.T) {
	junk := bytes.Repeat([]byte{0x55}, fileHeaderLen)
	if _, err := NewReader(bytes.NewReader(junk)); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error on truncated file header")
	}
}

func TestTruncatedRecordData(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, LinkTypeRaw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Unix(0, 0), []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	short := buf.Bytes()[:buf.Len()-2] // drop the last 2 payload bytes
	r, err := NewReader(bytes.NewReader(short))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("err = %v, want read error", err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, err := NewWriter(io.Discard, LinkTypeRaw, 0)
	if err != nil {
		b.Fatal(err)
	}
	pkt := bytes.Repeat([]byte{0xaa}, 490)
	ts := time.Unix(1545220800, 0)
	b.ReportAllocs()
	b.SetBytes(int64(len(pkt)))
	for i := 0; i < b.N; i++ {
		if err := w.WritePacket(ts, pkt); err != nil {
			b.Fatal(err)
		}
	}
}
