package pipe

import (
	"errors"
	"testing"
	"time"

	"booterscope/internal/flow"
)

// slowCountStage counts records with an artificial per-batch delay so
// the barrier has real in-flight work to wait out.
type slowCountStage struct {
	delay time.Duration
	count int
}

func (s *slowCountStage) Process(b *Batch) error {
	if s.delay > 0 {
		time.Sleep(s.delay)
	}
	s.count += len(b.Recs)
	return nil
}

func (s *slowCountStage) Close() error { return nil }

// TestBarrierQuiescesAllShards pins the stop-the-world contract: when
// the barrier callback runs, every record routed so far has been fully
// processed by its shard and no worker is executing, so the callback
// reads shard state without synchronization (the race detector guards
// the claim). The barrier must also be reusable and the pipeline must
// keep working after each one.
func TestBarrierQuiescesAllShards(t *testing.T) {
	t0 := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	shards := []*slowCountStage{
		{delay: time.Millisecond}, {delay: time.Millisecond},
		{delay: time.Millisecond}, {delay: time.Millisecond},
	}
	stages := make([]Stage, len(shards))
	for i, s := range shards {
		stages[i] = s
	}
	f := NewFanOut(KeyDst, stages...)

	routed := 0
	for round := 0; round < 3; round++ {
		for i := 0; i < 500; i++ {
			rb := NewBatch()
			rb.Recs = append(rb.Recs, testRec(routed, t0.Add(time.Duration(routed)*time.Second)))
			routed++
			if err := f.Process(rb); err != nil {
				t.Fatalf("round %d: Process: %v", round, err)
			}
			rb.Release()
		}
		if err := f.Barrier(func() error {
			total := 0
			for _, s := range shards {
				total += s.count
			}
			if total != routed {
				t.Errorf("round %d: barrier sees %d processed, %d routed", round, total, routed)
			}
			return nil
		}); err != nil {
			t.Fatalf("round %d: Barrier: %v", round, err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.count
	}
	if total != routed {
		t.Fatalf("after close: %d processed, %d routed", total, routed)
	}
}

// TestBarrierPropagatesCallbackError pins that fn's error comes back
// and the pipeline still resumes.
func TestBarrierPropagatesCallbackError(t *testing.T) {
	t0 := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	shards := []*slowCountStage{{}, {}}
	f := NewFanOut(KeyDst, shards[0], shards[1])
	boom := errors.New("boom")
	if err := f.Barrier(func() error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("Barrier error = %v, want %v", err, boom)
	}
	b := NewBatch()
	b.Recs = append(b.Recs, testRec(1, t0))
	if err := f.Process(b); err != nil {
		t.Fatalf("Process after failed barrier: %v", err)
	}
	b.Release()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if shards[0].count+shards[1].count != 1 {
		t.Fatal("record lost after barrier error")
	}
}

// TestResumeRestoresPipelinePosition pins the checkpoint-resume
// contract: a fresh fan-out primed with Resume stamps records with the
// watermark and sequence the previous run left off at.
func TestResumeRestoresPipelinePosition(t *testing.T) {
	t0 := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	c := &collectStage{}
	f := NewFanOut(KeyDst, c)
	f.SetMarkFilter(func(r *flow.Record) bool { return true })
	f.Resume(t0.Unix(), 42)
	if got := f.Seq(); got != 42 {
		t.Fatalf("Seq after Resume = %d, want 42", got)
	}
	b := NewBatch()
	// A record older than the resumed watermark must not lower it; a
	// newer one advances it as usual.
	b.Recs = append(b.Recs, testRec(0, t0.Add(-time.Hour)))
	b.Recs = append(b.Recs, testRec(1, t0.Add(time.Minute)))
	if err := f.Process(b); err != nil {
		t.Fatal(err)
	}
	b.Release()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if len(c.seqs) != 2 || c.seqs[0] != 42 || c.seqs[1] != 43 {
		t.Fatalf("seqs = %v, want [42 43]", c.seqs)
	}
	want := []int64{t0.Unix(), t0.Add(time.Minute).Unix()}
	if len(c.marks) != 2 || c.marks[0] != want[0] || c.marks[1] != want[1] {
		t.Fatalf("marks = %v, want %v", c.marks, want)
	}
}
