package pipe

import (
	"fmt"
	"testing"
	"time"

	"booterscope/internal/flow"
)

// colsSource emits recs as columnar batches of batchLen.
func colsSource(recs []flow.Record, batchLen int) Source {
	return func(emit func(*Batch) error) error {
		for off := 0; off < len(recs); off += batchLen {
			end := off + batchLen
			if end > len(recs) {
				end = len(recs)
			}
			b := NewColsBatch()
			for i := off; i < end; i++ {
				b.Cols.AppendRecord(&recs[i])
			}
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	}
}

func batchKey(r *flow.Record) string {
	return fmt.Sprintf("%v|%d|%d|%d|%d", r.Key, r.Packets, r.Bytes,
		r.Start.UnixNano(), r.End.UnixNano())
}

// TestColsBatchLazyMaterialization pins the Batch shape contract: a
// columnar batch reports its columnar length, Records materializes
// once (and caches), and Release detaches the columns so pooled
// batches come back row-shaped.
func TestColsBatchLazyMaterialization(t *testing.T) {
	recs := make([]flow.Record, 100)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	b := NewColsBatch()
	for i := range recs {
		b.Cols.AppendRecord(&recs[i])
	}
	if b.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(recs))
	}
	if len(b.Recs) != 0 {
		t.Fatalf("columnar batch pre-materialized %d records", len(b.Recs))
	}
	got := b.Records()
	if len(got) != len(recs) {
		t.Fatalf("Records materialized %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if batchKey(&got[i]) != batchKey(&recs[i]) {
			t.Fatalf("record %d diverges after materialization", i)
		}
	}
	// Second call must return the cache, not re-materialize.
	if &got[0] != &b.Records()[0] {
		t.Fatal("Records re-materialized instead of returning the cache")
	}
	b.Release()
	nb := NewBatch()
	defer nb.Release()
	if nb.Cols != nil && nb.Cols.Len() != 0 {
		t.Fatal("pooled batch came back with live columns")
	}
}

// TestFanOutColumnarMatchesRowRouting is the pipe-level differential:
// the same records as row batches and as columnar batches must route
// to identical shards with identical watermark stamps and global
// sequence order.
func TestFanOutColumnarMatchesRowRouting(t *testing.T) {
	recs := make([]flow.Record, 3000)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i%97)*time.Second))
	}
	run := func(src Source) []*collectStage {
		shards := []*collectStage{{}, {}, {}}
		stages := make([]Stage, len(shards))
		for i, s := range shards {
			stages[i] = s
		}
		f := NewFanOut(KeyDst, stages...)
		f.SetMarkFilter(func(*flow.Record) bool { return true })
		f.SetColKey(KeyDstCols)
		f.SetColMarkFilter(func(*flow.Columns, int) bool { return true })
		if err := Run(src, f); err != nil {
			t.Fatalf("run: %v", err)
		}
		return shards
	}
	row := run(sliceSource(recs, 256))
	col := run(colsSource(recs, 256))
	for si := range row {
		r, c := row[si], col[si]
		if len(r.dsts) != len(c.dsts) {
			t.Fatalf("shard %d: row path saw %d records, columnar %d", si, len(r.dsts), len(c.dsts))
		}
		for i := range r.dsts {
			if r.dsts[i] != c.dsts[i] {
				t.Fatalf("shard %d record %d: dst %v vs %v", si, i, r.dsts[i], c.dsts[i])
			}
			if r.marks[i] != c.marks[i] {
				t.Fatalf("shard %d record %d: mark %d vs %d", si, i, r.marks[i], c.marks[i])
			}
			if r.seqs[i] != c.seqs[i] {
				t.Fatalf("shard %d record %d: seq %d vs %d", si, i, r.seqs[i], c.seqs[i])
			}
		}
	}
}

// TestFanOutColumnarFallback: a columnar batch fed to a fan-out with
// no columnar key must still deliver every record (materialized via
// the row path) — unported callers lose speed, never records.
func TestFanOutColumnarFallback(t *testing.T) {
	recs := make([]flow.Record, 800)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	shards := []*collectStage{{}, {}}
	f := NewFanOut(KeyDst, shards[0], shards[1])
	// Row key only: columnar batches must fall back to materialization.
	if err := Run(colsSource(recs, 128), f); err != nil {
		t.Fatalf("run: %v", err)
	}
	total := len(shards[0].dsts) + len(shards[1].dsts)
	if total != len(recs) {
		t.Fatalf("fallback delivered %d records, want %d", total, len(recs))
	}
}

// collectColsStage counts records without materializing, to prove the
// columnar path reaches stages columnar.
type collectColsStage struct {
	colRecords int
	rowRecords int
}

func (c *collectColsStage) Process(b *Batch) error {
	if b.Cols != nil {
		c.colRecords += b.Cols.Len()
		return nil
	}
	c.rowRecords += len(b.Recs)
	return nil
}

func (c *collectColsStage) Close() error { return nil }

// TestFanOutColumnarStaysColumnar: with columnar routing configured and
// a columnar source, shard stages must receive columnar batches — the
// fan-out must not silently materialize.
func TestFanOutColumnarStaysColumnar(t *testing.T) {
	recs := make([]flow.Record, 1200)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	shards := []*collectColsStage{{}, {}}
	f := NewFanOut(KeyDst, shards[0], shards[1])
	f.SetColKey(KeyDstCols)
	if err := Run(colsSource(recs, 256), f); err != nil {
		t.Fatalf("run: %v", err)
	}
	var colTotal, rowTotal int
	for _, s := range shards {
		colTotal += s.colRecords
		rowTotal += s.rowRecords
	}
	if rowTotal != 0 || colTotal != len(recs) {
		t.Fatalf("columnar routing materialized: %d columnar, %d row, want %d columnar only",
			colTotal, rowTotal, len(recs))
	}
}

// TestFanOutMixedShapes: alternating row and columnar batches through
// one fan-out must deliver every record exactly once — the pending
// slab's shape is fixed by its first append and cross-shape appends
// convert per record.
func TestFanOutMixedShapes(t *testing.T) {
	recs := make([]flow.Record, 2000)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	mixed := func(emit func(*Batch) error) error {
		for off := 0; off < len(recs); off += 100 {
			end := off + 100
			if end > len(recs) {
				end = len(recs)
			}
			var b *Batch
			if (off/100)%2 == 0 {
				b = NewColsBatch()
				for i := off; i < end; i++ {
					b.Cols.AppendRecord(&recs[i])
				}
			} else {
				b = NewBatch()
				b.Recs = append(b.Recs, recs[off:end]...)
			}
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	}
	shards := []*collectStage{{}, {}, {}}
	stages := make([]Stage, len(shards))
	for i, s := range shards {
		stages[i] = s
	}
	if err := RunShardedCols(mixed, KeyDst, KeyDstCols, stages...); err != nil {
		t.Fatalf("run: %v", err)
	}
	total := 0
	for _, s := range shards {
		total += len(s.dsts)
	}
	if total != len(recs) {
		t.Fatalf("mixed-shape run delivered %d records, want %d", total, len(recs))
	}
}
