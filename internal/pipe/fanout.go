package pipe

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/telemetry/eventlog"
)

// shardQueueDepth bounds each shard channel in batches. A routing
// producer that outruns a shard blocks on that shard's queue — this
// is the pipeline's backpressure: memory is capped at
// shards × depth × batch size records, and a slow stage slows the
// source instead of ballooning the heap.
const shardQueueDepth = 4

// Advancer is the optional stage extension for watermark-driven state
// (the sharded classify.Monitor): after the last record has been
// processed and workers have drained, FanOut.Close calls AdvanceTo
// with the final global watermark on every shard that implements it,
// so shards whose own records stopped early still observe the stream's
// end-of-input clock before Close folds their state.
type Advancer interface {
	AdvanceTo(unixSec int64)
}

// FanOut shards a record stream across worker stages by a per-record
// hash key. It is itself a Stage: Process routes each record of the
// incoming batch into a per-shard pending slab, flushing full slabs
// onto that shard's bounded queue; Close flushes the remainder, joins
// the workers, and then calls each shard's Close serially in index
// order — the deterministic merge point.
//
// The watermark/sequence sidecars (Batch.Marks, Batch.Seqs) are
// stamped only when a mark filter is set (SetMarkFilter): they exist
// for watermark-driven stages like the sharded classify.Monitor, which
// always configure a filter. Purely order-insensitive stages route
// lean record-only batches and skip the per-record clock bookkeeping.
//
// With a single shard — or a single available CPU, where workers could
// only interleave, not overlap — FanOut skips goroutines and channels
// entirely and drives the shards inline: sharded state and the
// deterministic merge are preserved, but records stop paying for
// channel hops that cannot buy any parallelism.
type FanOut struct {
	key     func(*flow.Record) uint64
	shards  []Stage
	chans   []chan *Batch
	pending []*Batch
	wg      sync.WaitGroup
	inline  bool

	// colKey and colMarkIf are the columnar counterparts of key and
	// markIf. When the incoming batch is columnar and the needed
	// columnar predicates are set, routing reads the column vectors
	// directly and the records are never materialized; otherwise the
	// fan-out falls back to materializing the batch and running the row
	// loop — an unported caller loses speed, never records.
	colKey    func(*flow.Columns, int) uint64
	colMarkIf func(*flow.Columns, int) bool
	// colIdx and colMarks are routeCols's per-batch gather scratch
	// (per-shard row indices; sequential watermark stamps), reused
	// across batches.
	colIdx   [][]int32
	colMarks []int64

	watermark int64
	markIf    func(*flow.Record) bool
	seq       uint64
	routed    bool

	// barrierToken is a sentinel batch (never pooled) that parks a
	// worker at the barrier rendezvous; the release channel and the two
	// wait groups coordinate one Barrier call at a time.
	barrierToken   *Batch
	barrierArrived sync.WaitGroup
	barrierResumed sync.WaitGroup
	barrierRelease chan struct{}

	failed atomic.Bool
	errMu  sync.Mutex
	//bsvet:guards errMu
	firstErr error
}

// NewFanOut builds a fan-out over the given shard stages. key maps a
// record to a hash; records with equal key%len(shards) are processed
// by the same shard in stream order. Workers start immediately for
// len(shards) > 1.
func NewFanOut(key func(*flow.Record) uint64, shards ...Stage) *FanOut {
	if len(shards) == 0 {
		panic("pipe: NewFanOut needs at least one shard")
	}
	f := &FanOut{
		key:          key,
		shards:       shards,
		pending:      make([]*Batch, len(shards)),
		inline:       len(shards) == 1 || runtime.GOMAXPROCS(0) == 1,
		watermark:    math.MinInt64,
		barrierToken: &Batch{},
	}
	for i := range f.pending {
		f.pending[i] = NewBatch()
	}
	if !f.inline {
		f.chans = make([]chan *Batch, len(shards))
		for i := range f.chans {
			f.chans[i] = make(chan *Batch, shardQueueDepth)
			f.wg.Add(1)
			go f.worker(i)
		}
	}
	return f
}

func (f *FanOut) worker(s int) {
	defer f.wg.Done()
	for b := range f.chans[s] {
		if b == f.barrierToken {
			// Rendezvous: everything queued before the token has been
			// processed. Park until Barrier releases the world.
			rel := f.barrierRelease
			f.barrierArrived.Done()
			<-rel
			f.barrierResumed.Done()
			continue
		}
		if f.failed.Load() {
			// A peer already failed: drain without processing so the
			// router never blocks on this queue while unwinding.
			b.Release()
			continue
		}
		start := time.Now() //bsvet:allow determinism stage latency telemetry measures host time, not simulated time
		err := f.shards[s].Process(b)
		metricStageLatency.ObserveDuration(time.Since(start)) //bsvet:allow determinism stage latency telemetry measures host time, not simulated time
		b.Release()
		if err != nil {
			metricStageErrors.Inc()
			f.fail(err)
		}
	}
}

func (f *FanOut) fail(err error) {
	f.errMu.Lock()
	latched := f.firstErr == nil
	if latched {
		f.firstErr = err
	}
	f.errMu.Unlock()
	if latched {
		// Only the latched (first) error is emitted: it is the one err()
		// reports and the one that aborted the pipeline.
		eventlog.Active().Emit("pipe", "pipe_stage_error", 0,
			eventlog.A("error", err.Error()))
	}
	f.failed.Store(true)
}

func (f *FanOut) err() error {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.firstErr
}

// Process routes one incoming batch. The caller keeps ownership of b;
// records are copied into per-shard slabs. Returns the first worker
// error as soon as any shard has failed, which aborts the source.
//
// Columnar batches route column-wise when SetColKey is configured (and
// SetColMarkFilter, if a mark filter is set); otherwise the batch is
// materialized and routed row-wise.
func (f *FanOut) Process(b *Batch) error {
	if f.failed.Load() {
		return f.err()
	}
	f.routed = f.routed || b.Len() > 0
	stamp := f.markIf != nil
	if b.Cols != nil && f.colKey != nil && (!stamp || f.colMarkIf != nil) {
		return f.routeCols(b.Cols)
	}
	return f.routeRows(b.Records())
}

// routeRows is the row routing loop. Pending slabs keep whatever shape
// their first append gave them — a record landing on a column-shaped
// slab is appended column-wise, never mixed in as a row.
//
//bsvet:hotpath
func (f *FanOut) routeRows(recs []flow.Record) error {
	n := uint64(len(f.shards))
	stamp := f.markIf != nil
	for i := range recs {
		r := &recs[i]
		s := 0
		if n > 1 {
			s = int(f.key(r) % n)
		}
		p := f.pending[s]
		if stamp && f.markIf(r) {
			if ts := r.Start.Unix(); ts > f.watermark {
				f.watermark = ts
			}
		}
		if p.Cols != nil {
			p.Cols.AppendRecord(r)
		} else {
			p.Recs = append(p.Recs, *r)
		}
		if stamp {
			p.Marks = append(p.Marks, f.watermark)
			p.Seqs = append(p.Seqs, f.seq)
			f.seq++
		}
		if p.Len() >= DefaultBatchSize {
			if err := f.flush(s); err != nil {
				return err
			}
		}
	}
	metricRecordsRouted.Add(uint64(len(recs)))
	return nil
}

// routeCols is the columnar routing loop: shard keys and watermark
// advancement read the column vectors directly, and routed rows are
// gathered column-to-column into the shard's pending slab. No
// flow.Record is built anywhere on this path.
//
// The loop runs as scatter/gather: one pass computes each row's shard
// (and, when stamping, the same sequential prefix-max watermark and
// sequence stamps the row loop produces), then each shard's rows are
// bulk-appended with Columns.AppendIndexed — 17 tight per-column loops
// per shard per batch instead of 17 slice appends per record. Pending
// slabs flush after the batch, so they can briefly exceed
// DefaultBatchSize; stages are batch-size agnostic by contract.
//
//bsvet:hotpath
func (f *FanOut) routeCols(c *flow.Columns) error {
	m := c.Len()
	if m == 0 {
		return nil
	}
	n := uint64(len(f.shards))
	stamp := f.markIf != nil
	if f.colIdx == nil {
		f.colIdx = make([][]int32, len(f.shards))
	}
	idx := f.colIdx
	for s := range idx {
		idx[s] = idx[s][:0]
	}
	if n > 1 {
		for i := 0; i < m; i++ {
			s := f.colKey(c, i) % n
			idx[s] = append(idx[s], int32(i))
		}
	} else {
		for i := 0; i < m; i++ {
			idx[0] = append(idx[0], int32(i))
		}
	}
	var marks []int64
	seq0 := f.seq
	if stamp {
		if cap(f.colMarks) < m {
			f.colMarks = make([]int64, m)
		}
		marks = f.colMarks[:m]
		w := f.watermark
		for i := 0; i < m; i++ {
			if f.colMarkIf(c, i) {
				if ts := c.StartSec[i]; ts > w {
					w = ts
				}
			}
			marks[i] = w
		}
		f.watermark = w
		f.seq += uint64(m)
	}
	for s := range f.shards {
		rows := idx[s]
		if len(rows) == 0 {
			continue
		}
		p := f.pending[s]
		if p.Cols == nil && len(p.Recs) > 0 {
			// Row-shaped slab (from an earlier row batch): convert per
			// record rather than mixing shapes.
			for _, i := range rows {
				p.Recs = append(p.Recs, c.Record(int(i)))
			}
		} else {
			p.EnsureCols().AppendIndexed(c, rows)
		}
		if stamp {
			for _, i := range rows {
				p.Marks = append(p.Marks, marks[i])
				p.Seqs = append(p.Seqs, seq0+uint64(i))
			}
		}
		if p.Len() >= DefaultBatchSize {
			if err := f.flush(s); err != nil {
				return err
			}
		}
	}
	metricRecordsRouted.Add(uint64(m))
	return nil
}

// flush hands shard s's pending slab to its worker (or processes it
// inline for the single-shard fast path) and starts a fresh slab.
func (f *FanOut) flush(s int) error {
	p := f.pending[s]
	if p.Len() == 0 {
		return nil
	}
	f.pending[s] = NewBatch()
	metricBatchesRouted.Inc()
	if f.inline {
		start := time.Now() //bsvet:allow determinism stage latency telemetry measures host time, not simulated time
		err := f.shards[s].Process(p)
		metricStageLatency.ObserveDuration(time.Since(start)) //bsvet:allow determinism stage latency telemetry measures host time, not simulated time
		p.Release()
		if err != nil {
			metricStageErrors.Inc()
			f.fail(err)
			return err
		}
		return nil
	}
	if f.failed.Load() {
		p.Release()
		return f.err()
	}
	f.chans[s] <- p
	metricShardQueueHWM.SetMax(float64(len(f.chans[s])))
	return nil
}

// Close flushes pending slabs, joins the workers, advances every
// Advancer shard to the final global watermark, and closes the shards
// serially in index order. The first error from routing, any worker,
// or any Close is returned; every shard's Close still runs.
func (f *FanOut) Close() error {
	for s := range f.pending {
		if f.failed.Load() {
			break
		}
		f.flush(s)
	}
	for s := range f.pending {
		if f.pending[s] != nil {
			f.pending[s].Release()
			f.pending[s] = nil
		}
	}
	if !f.inline {
		for _, ch := range f.chans {
			close(ch)
		}
		f.wg.Wait()
	}
	err := f.err()
	if f.watermark != math.MinInt64 && err == nil {
		for _, st := range f.shards {
			if a, ok := st.(Advancer); ok {
				a.AdvanceTo(f.watermark)
			}
		}
	}
	for _, st := range f.shards {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Watermark reports the maximum record start time (unix seconds)
// routed so far over mark-filtered records; math.MinInt64 before the
// first match or when no mark filter is set.
func (f *FanOut) Watermark() int64 { return f.watermark }

// Seq reports the global sequence number the next routed record will
// be stamped with — equivalently, how many records have been routed
// with stamping enabled. Together with Watermark it is the pipeline
// position a checkpoint records.
func (f *FanOut) Seq() uint64 { return f.seq }

// Resume pre-loads the watermark and sequence counters from a
// checkpoint, so a restarted pipeline stamps records exactly where the
// crashed one left off. Must be called before the first Process.
func (f *FanOut) Resume(watermark int64, seq uint64) {
	if f.routed {
		panic("pipe: Resume after records were routed")
	}
	if watermark > f.watermark {
		f.watermark = watermark
	}
	f.seq = seq
}

// Barrier quiesces the fan-out and runs fn with the world stopped:
// pending slabs are flushed, every worker drains its queue up to a
// rendezvous token and parks, fn runs, and the workers resume. While
// fn runs, every record routed so far has been fully processed by its
// shard and no shard is executing — fn may read and mutate shard state
// without synchronization. This is the drain point checkpointing and
// threshold reloads run at.
//
// Barrier must not race Process or Close: the caller serializes them
// (the service daemon holds its ingest lock across both). Returns the
// pipeline's first error if it has already failed, without running fn.
func (f *FanOut) Barrier(fn func() error) error {
	if f.failed.Load() {
		return f.err()
	}
	for s := range f.pending {
		if err := f.flush(s); err != nil {
			return err
		}
	}
	if f.inline {
		return fn()
	}
	f.barrierRelease = make(chan struct{})
	f.barrierArrived.Add(len(f.chans))
	f.barrierResumed.Add(len(f.chans))
	for _, ch := range f.chans {
		ch <- f.barrierToken
	}
	f.barrierArrived.Wait()
	err := fn()
	close(f.barrierRelease)
	// Wait for every worker to leave the rendezvous before returning,
	// so a subsequent Barrier can reuse the coordination fields.
	f.barrierResumed.Wait()
	return err
}

// SetMarkFilter enables watermark/sequence stamping, restricting
// watermark advancement to records satisfying pred. A watermark-driven
// stage whose serial form only moves its clock on a subset of records
// (classify.Monitor advances on filter-matched records only) needs the
// stamped prefix-max computed over exactly that subset, or the
// parallel run would evict earlier than the serial one. Must be called
// before the first Process.
func (f *FanOut) SetMarkFilter(pred func(*flow.Record) bool) {
	if f.routed {
		panic("pipe: SetMarkFilter after records were routed")
	}
	f.markIf = pred
}

// SetColKey enables columnar routing: for columnar batches, key hashes
// row i of the slab without materializing a record. It must agree with
// the row key function for every record (pipe.KeyDstCols pairs with
// pipe.KeyDst), or parallel and serial runs diverge. Must be called
// before the first Process.
func (f *FanOut) SetColKey(key func(*flow.Columns, int) uint64) {
	if f.routed {
		panic("pipe: SetColKey after records were routed")
	}
	f.colKey = key
}

// SetColMarkFilter is SetMarkFilter's columnar counterpart. When a
// mark filter is set, columnar routing additionally requires this
// predicate (agreeing with the row predicate row-for-row) — without it
// the fan-out materializes batches and stamps through the row loop.
// Must be called before the first Process.
func (f *FanOut) SetColMarkFilter(pred func(*flow.Columns, int) bool) {
	if f.routed {
		panic("pipe: SetColMarkFilter after records were routed")
	}
	f.colMarkIf = pred
}

// RunSharded drives src through a fan-out over shards and returns the
// first error. Equivalent to Run(src, NewFanOut(key, shards...)).
func RunSharded(src Source, key func(*flow.Record) uint64, shards ...Stage) error {
	return Run(src, NewFanOut(key, shards...))
}

// RunShardedCols is RunSharded with a columnar routing key alongside
// the row key, so columnar batches from the source route without
// materializing records. The two keys must agree row-for-row.
func RunShardedCols(src Source, key func(*flow.Record) uint64,
	colKey func(*flow.Columns, int) uint64, shards ...Stage) error {
	f := NewFanOut(key, shards...)
	f.SetColKey(colKey)
	return Run(src, f)
}

// Parallelism normalizes a -parallelism flag value: n >= 1 is used as
// given, anything else means runtime.NumCPU().
func Parallelism(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.NumCPU()
}
