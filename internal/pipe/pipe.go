// Package pipe is the batch-oriented analysis pipeline every record
// consumer in booterscope runs on: reusable record slabs (Batch) pooled
// with sync.Pool, a Stage interface for serial consumers, and a hash
// fan-out (FanOut) that shards a record stream across bounded worker
// queues and merges per-shard state deterministically on Close.
//
// The pipeline exists because the producers are parallel — the
// flowstore scans segments per shard, the traffic generator emits whole
// days — while the paper's analyses were written as one serial
// func(*flow.Record) callback chain. pipe moves records in batches and
// lets each aggregation run one instance per shard, so the scan →
// classify → analyze path keeps every core busy without giving up the
// replay-equals-live guarantee.
//
// # Batch lifecycle and ownership
//
// A Batch is produced by exactly one party (a Source, or FanOut when it
// re-slabs routed records) and consumed by exactly one Stage. The
// caller of Process retains ownership: after Process returns, the
// batch may be released and its backing arrays reused, so a stage must
// copy anything it keeps. Sources hand ownership of each emitted batch
// to the consumer via emit; whoever drives the source (Run, FanOut)
// releases it.
//
// # Determinism
//
// Every aggregation in the repository is either order-insensitive
// (integer-valued sums, per-key maps — identical under any delivery
// order) or watermark-driven (classify.Monitor eviction). FanOut stamps
// two per-record sidecars to make parallel runs reproduce serial ones
// bit-for-bit: Marks, the running prefix-maximum record start time
// (the watermark a sharded monitor advances its eviction clock with),
// and Seqs, the global record sequence number (the key an emitting
// stage sorts its output by to reproduce serial emission order).
package pipe

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"booterscope/internal/flow"
)

// DefaultBatchSize is the record capacity new pooled batches start
// with — large enough to amortize channel and pool operations, small
// enough that a shard queue of a few batches bounds memory.
const DefaultBatchSize = 4096

// Batch is a reusable slab of flow records moving through the
// pipeline, with optional per-record sidecars stamped by FanOut.
//
// A batch carries its records in exactly one of two shapes: row form
// (Recs, the original representation) or columnar form (Cols, the
// structure-of-arrays slab the flowstore scan emits). The shapes are
// not mixed — when Cols is non-nil it is the source of truth and Recs
// is only the lazy materialization cache Records() fills on first
// demand, so stages that read columns directly never pay for record
// structs at all.
type Batch struct {
	// Recs are the records; consumers iterate Recs[i] by index and must
	// not retain pointers into the slice past Process. For a columnar
	// batch, Recs is empty until Records() materializes it.
	Recs []flow.Record
	// Cols, when non-nil, holds the batch's records in columnar form.
	// Consumers must not retain Cols or any of its column slices past
	// Process — Release recycles the slab.
	Cols *flow.Columns
	// Marks, when non-nil, holds one watermark per record: the maximum
	// record start time (unix seconds) over every record the fan-out
	// routed up to and including this one, across all shards.
	Marks []int64
	// Seqs, when non-nil, holds one global sequence number per record:
	// the record's position in the source stream before fan-out.
	Seqs []uint64
}

var batchPool = sync.Pool{
	New: func() any {
		return &Batch{Recs: make([]flow.Record, 0, DefaultBatchSize)}
	},
}

// colsPool recycles columnar slabs independently of batches, so row
// batches never carry 17 unused column arrays.
var colsPool = sync.Pool{New: func() any { return new(flow.Columns) }}

// NewBatch returns an empty row batch from the pool.
func NewBatch() *Batch {
	b := batchPool.Get().(*Batch)
	metricBatchesInFlight.Add(1)
	return b
}

// NewColsBatch returns an empty columnar batch from the pool: Cols is
// attached (and recycled on Release), Recs stays empty until a
// consumer demands records.
func NewColsBatch() *Batch {
	b := NewBatch()
	b.Cols = colsPool.Get().(*flow.Columns)
	return b
}

// EnsureCols attaches (or returns) the batch's columnar slab —
// producers appending column-wise call this once per batch.
func (b *Batch) EnsureCols() *flow.Columns {
	if b.Cols == nil {
		b.Cols = colsPool.Get().(*flow.Columns)
	}
	return b.Cols
}

// Wrap adopts an existing record slice as a batch without copying.
// The caller must not touch recs after Wrap; Release returns the slab
// to the pool for reuse.
func Wrap(recs []flow.Record) *Batch {
	b := batchPool.Get().(*Batch)
	b.Recs = recs
	metricBatchesInFlight.Add(1)
	return b
}

// Len reports the record count.
func (b *Batch) Len() int {
	if b.Cols != nil {
		return b.Cols.Len()
	}
	return len(b.Recs)
}

// Records returns the batch's records in row form, materializing them
// from the columnar slab on first call (cached for the batch's
// lifetime). Stages that need whole flow.Records call this; stages
// ported to read b.Cols directly skip the copy entirely — that skip is
// the lazy-materialization win of the columnar hot path.
func (b *Batch) Records() []flow.Record {
	if b.Cols != nil && len(b.Recs) == 0 && b.Cols.Len() > 0 {
		b.Recs = b.Cols.MaterializeAppend(b.Recs)
	}
	return b.Recs
}

// Release resets the batch and returns it to the pool. The batch and
// its slices must not be used afterwards. A columnar slab goes back to
// its own pool, so pooled batches are always row-shaped until a
// producer attaches columns again.
func (b *Batch) Release() {
	b.Recs = b.Recs[:0]
	if b.Cols != nil {
		b.Cols.Reset()
		colsPool.Put(b.Cols)
		b.Cols = nil
	}
	b.Marks = b.Marks[:0]
	b.Seqs = b.Seqs[:0]
	metricBatchesInFlight.Add(-1)
	batchPool.Put(b)
}

// appendRec appends one record with its sidecars.
func (b *Batch) appendRec(r *flow.Record, mark int64, seq uint64) {
	b.Recs = append(b.Recs, *r)
	b.Marks = append(b.Marks, mark)
	b.Seqs = append(b.Seqs, seq)
}

// appendColRec appends row i of c column-wise with its sidecars.
func (b *Batch) appendColRec(c *flow.Columns, i int, mark int64, seq uint64) {
	b.EnsureCols().AppendFrom(c, i)
	b.Marks = append(b.Marks, mark)
	b.Seqs = append(b.Seqs, seq)
}

// Stage consumes batches serially: Process is never called
// concurrently on one stage, and Close is called exactly once after
// the last Process. Close is where a sharded stage folds its state
// into the merged result — the engine calls it on the driving
// goroutine, shard by shard in index order, so merge code needs no
// locking.
type Stage interface {
	Process(b *Batch) error
	Close() error
}

// Source streams batches to emit until the stream is exhausted or emit
// returns an error, which the source must propagate immediately —
// early exit and cancellation flow through this return value.
// Ownership of each emitted batch passes to emit's implementation.
type Source func(emit func(*Batch) error) error

// Run drives src through st on the calling goroutine and closes the
// stage. The first error — source, Process, or Close — is returned;
// Close always runs so stages can release resources.
func Run(src Source, st Stage) error {
	err := src(func(b *Batch) error {
		defer b.Release()
		return st.Process(b)
	})
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	return err
}

// StageFunc adapts a pair of funcs to Stage; either may be nil.
type StageFunc struct {
	ProcessFn func(b *Batch) error
	CloseFn   func() error
}

// Process implements Stage.
func (s StageFunc) Process(b *Batch) error {
	if s.ProcessFn == nil {
		return nil
	}
	return s.ProcessFn(b)
}

// Close implements Stage.
func (s StageFunc) Close() error {
	if s.CloseFn == nil {
		return nil
	}
	return s.CloseFn()
}

// multiStage drives several stages over the same batches — how one
// scan of a source feeds several aggregations in a single pass.
type multiStage []Stage

// MultiStage composes stages into one: Process feeds each stage the
// same batch in order, Close closes each in order (first error wins,
// every Close still runs).
func MultiStage(stages ...Stage) Stage {
	if len(stages) == 1 {
		return stages[0]
	}
	return multiStage(stages)
}

// Process implements Stage.
func (m multiStage) Process(b *Batch) error {
	for _, st := range m {
		if err := st.Process(b); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Stage.
func (m multiStage) Close() error {
	var first error
	for _, st := range m {
		if err := st.Close(); first == nil {
			first = err
		}
	}
	return first
}

// AdvanceTo forwards the final watermark to every composed stage that
// is watermark-driven.
func (m multiStage) AdvanceTo(unixSec int64) {
	for _, st := range m {
		if a, ok := st.(Advancer); ok {
			a.AdvanceTo(unixSec)
		}
	}
}

// fnv1aAddr folds a netip.Addr into an FNV-1a-style hash, word-wise
// rather than byte-wise: two multiply rounds per address keep the
// per-record routing cost negligible, and any deterministic key works
// — shard assignment never shows in the output (the golden parallelism
// tests pin this).
func fnv1aAddr(h uint64, a [16]byte) uint64 {
	const prime64 = 1099511628211
	h ^= binary.LittleEndian.Uint64(a[:8])
	h *= prime64
	h ^= binary.LittleEndian.Uint64(a[8:])
	h *= prime64
	return h
}

const fnvOffset64 = 14695981039346656037

// KeyDst routes records by destination (victim) address: every record
// about one victim lands on the same shard, which is what keeps the
// per-victim aggregations (classify, attack counting) shard-local and
// their merge exact.
func KeyDst(r *flow.Record) uint64 {
	return KeyDstAddr(r.Dst.As16())
}

// KeyDstAddr is KeyDst over a raw 16-byte address — checkpoint restore
// uses it to re-shard saved per-victim state with exactly the routing
// the live fan-out applies.
func KeyDstAddr(a [16]byte) uint64 {
	return fnv1aAddr(fnvOffset64, a)
}

// KeyDstCols is KeyDst evaluated directly against a columnar slab —
// the fan-out's columnar routing path hashes the raw address halves
// without materializing a record or a 16-byte array: fnv1aAddr reads
// the address little-endian while the halves are big-endian words, so
// a byte swap per half reproduces KeyDst bit-exactly for every address
// shape (including invalid addresses, whose halves and As16 are both
// zero). The columnar fan-out golden pins the equality.
func KeyDstCols(c *flow.Columns, i int) uint64 {
	const prime64 = 1099511628211
	h := uint64(fnvOffset64)
	h ^= bits.ReverseBytes64(c.DstHi[i])
	h *= prime64
	h ^= bits.ReverseBytes64(c.DstLo[i])
	h *= prime64
	return h
}

// KeyFlow routes records by the full 5-tuple — for stages keyed on
// flows rather than victims.
func KeyFlow(r *flow.Record) uint64 {
	h := fnv1aAddr(fnvOffset64, r.Src.As16())
	h = fnv1aAddr(h, r.Dst.As16())
	h ^= uint64(r.SrcPort)<<32 | uint64(r.DstPort)<<16 | uint64(r.Protocol)
	const prime64 = 1099511628211
	h *= prime64
	return h
}
