package pipe

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"booterscope/internal/flow"
)

var t0 = time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)

func testRec(i int, start time.Time) flow.Record {
	return flow.Record{
		Key: flow.Key{
			Src:      netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
			Dst:      netip.AddrFrom4([4]byte{192, 168, byte(i % 7), byte(i % 13)}),
			SrcPort:  123,
			DstPort:  uint16(1024 + i%100),
			Protocol: 17,
		},
		Packets:      uint64(1 + i%10),
		Bytes:        uint64(100 * (1 + i%10)),
		Start:        start,
		End:          start.Add(time.Second),
		SamplingRate: 1,
	}
}

// sliceSource emits recs in batches of batchLen.
func sliceSource(recs []flow.Record, batchLen int) Source {
	return func(emit func(*Batch) error) error {
		for off := 0; off < len(recs); off += batchLen {
			end := off + batchLen
			if end > len(recs) {
				end = len(recs)
			}
			b := NewBatch()
			b.Recs = append(b.Recs, recs[off:end]...)
			if err := emit(b); err != nil {
				return err
			}
		}
		return nil
	}
}

// collectStage records every (seq, dst, mark) it sees, optionally
// failing after failAfter records.
type collectStage struct {
	mu        sync.Mutex
	seqs      []uint64
	dsts      []netip.Addr
	marks     []int64
	closed    int
	failAfter int
	seen      int
}

func (c *collectStage) Process(b *Batch) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	recs := b.Records() // materializes columnar batches
	for i := range recs {
		if c.failAfter > 0 && c.seen >= c.failAfter {
			return errors.New("stage failed")
		}
		c.seen++
		c.dsts = append(c.dsts, recs[i].Dst)
		if i < len(b.Seqs) {
			c.seqs = append(c.seqs, b.Seqs[i])
		}
		if i < len(b.Marks) {
			c.marks = append(c.marks, b.Marks[i])
		}
	}
	return nil
}

func (c *collectStage) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed++
	return nil
}

func TestRunDrivesStageAndCloses(t *testing.T) {
	recs := make([]flow.Record, 500)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	st := &collectStage{}
	if err := Run(sliceSource(recs, 64), st); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if st.closed != 1 {
		t.Fatalf("Close called %d times, want 1", st.closed)
	}
	if len(st.dsts) != len(recs) {
		t.Fatalf("stage saw %d records, want %d", len(st.dsts), len(recs))
	}
}

// runMarked drives src through a fan-out with an always-true mark
// filter, exercising the stamped (watermark-driven) routing path that
// the sharded monitor uses.
func runMarked(src Source, shards ...Stage) error {
	f := NewFanOut(KeyDst, shards...)
	f.SetMarkFilter(func(*flow.Record) bool { return true })
	return Run(src, f)
}

func TestFanOutRoutesAllRecordsByKey(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			recs := make([]flow.Record, 10_000)
			for i := range recs {
				recs[i] = testRec(i, t0.Add(time.Duration(i%300)*time.Second))
			}
			sts := make([]*collectStage, shards)
			stages := make([]Stage, shards)
			for i := range sts {
				sts[i] = &collectStage{}
				stages[i] = sts[i]
			}
			if err := runMarked(sliceSource(recs, 512), stages...); err != nil {
				t.Fatalf("runMarked: %v", err)
			}
			total := 0
			seen := map[uint64]bool{}
			for s, st := range sts {
				if st.closed != 1 {
					t.Fatalf("shard %d: Close called %d times", s, st.closed)
				}
				total += len(st.dsts)
				for i, d := range st.dsts {
					if want := int(KeyDst(&flow.Record{Key: flow.Key{Dst: d}}) % uint64(shards)); want != s {
						t.Fatalf("record for %s landed on shard %d, want %d", d, s, want)
					}
					if seen[st.seqs[i]] {
						t.Fatalf("sequence %d delivered twice", st.seqs[i])
					}
					seen[st.seqs[i]] = true
				}
				// Within one shard, sequence numbers preserve stream order.
				for i := 1; i < len(st.seqs); i++ {
					if st.seqs[i] <= st.seqs[i-1] {
						t.Fatalf("shard %d: seqs out of order at %d: %d after %d", s, i, st.seqs[i], st.seqs[i-1])
					}
				}
			}
			if total != len(recs) {
				t.Fatalf("shards saw %d records total, want %d", total, len(recs))
			}
		})
	}
}

func TestFanOutWatermarkIsGlobalPrefixMax(t *testing.T) {
	// Timestamps jump around; the stamped mark must be the running max
	// across the whole stream, not per shard.
	rng := rand.New(rand.NewSource(7))
	recs := make([]flow.Record, 5000)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(rng.Intn(100_000))*time.Second))
	}
	wantMarks := make(map[uint64]int64, len(recs))
	max := int64(-1 << 62)
	for i := range recs {
		if ts := recs[i].Start.Unix(); ts > max {
			max = ts
		}
		wantMarks[uint64(i)] = max
	}
	sts := []*collectStage{{}, {}, {}, {}}
	stages := []Stage{sts[0], sts[1], sts[2], sts[3]}
	if err := runMarked(sliceSource(recs, 256), stages...); err != nil {
		t.Fatalf("runMarked: %v", err)
	}
	for s, st := range sts {
		for i := range st.seqs {
			if st.marks[i] != wantMarks[st.seqs[i]] {
				t.Fatalf("shard %d: record seq %d stamped mark %d, want %d",
					s, st.seqs[i], st.marks[i], wantMarks[st.seqs[i]])
			}
		}
	}
}

// abortSource verifies satellite 1's contract from the source side: a
// source must stop emitting the moment emit returns an error.
func TestFanOutPropagatesStageErrorAndCancelsSource(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			emitted := 0
			src := Source(func(emit func(*Batch) error) error {
				for i := 0; ; i++ {
					b := NewBatch()
					for j := 0; j < DefaultBatchSize; j++ {
						r := testRec(i*DefaultBatchSize+j, t0)
						b.Recs = append(b.Recs, r)
					}
					emitted++
					if err := emit(b); err != nil {
						return err // cancellation propagates out
					}
					if emitted > 10_000 {
						return errors.New("source never cancelled")
					}
				}
			})
			sts := make([]Stage, shards)
			for i := range sts {
				sts[i] = &collectStage{failAfter: 100}
			}
			err := RunSharded(src, KeyDst, sts...)
			if err == nil || err.Error() != "stage failed" {
				t.Fatalf("RunSharded error = %v, want stage failed", err)
			}
			if emitted > 1000 {
				t.Fatalf("source emitted %d batches after stage failure — cancellation not propagated", emitted)
			}
		})
	}
}

type advanceStage struct {
	collectStage
	final int64
}

func (a *advanceStage) AdvanceTo(unixSec int64) { a.final = unixSec }

func TestFanOutAdvancesShardsToFinalWatermark(t *testing.T) {
	recs := make([]flow.Record, 1000)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Minute))
	}
	want := recs[len(recs)-1].Start.Unix()
	sts := []*advanceStage{{}, {}, {}}
	stages := []Stage{sts[0], sts[1], sts[2]}
	if err := runMarked(sliceSource(recs, 128), stages...); err != nil {
		t.Fatalf("runMarked: %v", err)
	}
	for s, st := range sts {
		if st.final != want {
			t.Fatalf("shard %d advanced to %d, want %d", s, st.final, want)
		}
	}
}

// Without a mark filter the fan-out routes lean batches: all records
// still arrive on the right shard, but no sidecars are stamped.
func TestFanOutLeanWithoutMarkFilter(t *testing.T) {
	recs := make([]flow.Record, 3000)
	for i := range recs {
		recs[i] = testRec(i, t0.Add(time.Duration(i)*time.Second))
	}
	sts := []*collectStage{{}, {}, {}}
	stages := []Stage{sts[0], sts[1], sts[2]}
	if err := RunSharded(sliceSource(recs, 256), KeyDst, stages...); err != nil {
		t.Fatalf("RunSharded: %v", err)
	}
	total := 0
	for s, st := range sts {
		total += len(st.dsts)
		if len(st.seqs) != 0 || len(st.marks) != 0 {
			t.Fatalf("shard %d: lean routing stamped %d seqs, %d marks", s, len(st.seqs), len(st.marks))
		}
	}
	if total != len(recs) {
		t.Fatalf("shards saw %d records total, want %d", total, len(recs))
	}
}

func TestBatchPoolReuse(t *testing.T) {
	b := NewBatch()
	b.Recs = append(b.Recs, testRec(1, t0))
	b.Marks = append(b.Marks, 42)
	b.Seqs = append(b.Seqs, 7)
	b.Release()
	nb := NewBatch()
	if nb.Len() != 0 || len(nb.Marks) != 0 || len(nb.Seqs) != 0 {
		t.Fatalf("pooled batch not reset: %d recs, %d marks, %d seqs", nb.Len(), len(nb.Marks), len(nb.Seqs))
	}
	nb.Release()
}

func TestParallelismNormalization(t *testing.T) {
	if got := Parallelism(4); got != 4 {
		t.Fatalf("Parallelism(4) = %d", got)
	}
	if got := Parallelism(0); got < 1 {
		t.Fatalf("Parallelism(0) = %d, want >= 1", got)
	}
	if got := Parallelism(-3); got < 1 {
		t.Fatalf("Parallelism(-3) = %d, want >= 1", got)
	}
}
