package pipe

import "booterscope/internal/telemetry"

// Package-level pipeline accounting. Like internal/flow, fan-outs are
// created per run (one per study pass or collector), so the metrics
// are process-wide aggregates rather than per-instance fields.
var (
	metricBatchesInFlight = telemetry.NewGauge()
	metricBatchesRouted   = telemetry.NewCounter()
	metricRecordsRouted   = telemetry.NewCounter()
	metricShardQueueHWM   = telemetry.NewGauge()
	metricStageLatency    = telemetry.NewHistogram(
		1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10,
	)
	metricStageErrors = telemetry.NewCounter()
)

// RegisterTelemetry attaches the pipeline accounting to r under the
// pipe_* names required by scripts/lint-telemetry.sh.
func RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister("pipe_batches_in_flight", "pooled batches currently checked out", metricBatchesInFlight)
	r.MustRegister("pipe_batches_routed_total", "batches emitted to shard queues by fan-outs", metricBatchesRouted)
	r.MustRegister("pipe_records_routed_total", "records hashed across shard queues by fan-outs", metricRecordsRouted)
	r.MustRegister("pipe_shard_queue_depth_max", "high-watermark of shard queue depth (batches)", metricShardQueueHWM)
	r.MustRegister("pipe_stage_batch_latency_seconds", "per-stage Process latency per batch", metricStageLatency)
	r.MustRegister("pipe_stage_errors_total", "errors returned by stage Process calls", metricStageErrors)
}
