// Package reflector models the pools of abusable amplifiers (open NTP
// servers, resolvers, memcached instances) that booter services draw on.
//
// The study's Figure 1(c) observations drive the model: a booter holds a
// small working set (hundreds) out of a huge global universe (millions of
// potential NTP amplifiers), reuses the same set for same-day attacks,
// churns it moderately (~30 % over two weeks), occasionally swaps it out
// entirely overnight, and partially shares reflectors with other booters.
package reflector

import (
	"fmt"
	"net/netip"
	"sort"

	"booterscope/internal/amplify"
	"booterscope/internal/netutil"
)

// Reflector is one abusable amplifier.
type Reflector struct {
	Addr netip.Addr
	// AS is the origin AS announcing the reflector's prefix.
	AS uint32
}

// Pool is the global universe of amplifiers for one protocol, spread
// across origin ASes with a heavy-tailed distribution (a few hosting
// networks run many amplifiers).
type Pool struct {
	vector   amplify.Vector
	universe []Reflector
}

// NewPool synthesizes a universe of size amplifiers spread over asCount
// origin ASes. The same seed always yields the same universe.
func NewPool(vector amplify.Vector, size, asCount int, seed uint64) *Pool {
	if size < 1 {
		size = 1
	}
	if asCount < 1 {
		asCount = 1
	}
	r := netutil.NewRand(seed).Fork(fmt.Sprintf("pool-%s", vector))
	universe := make([]Reflector, size)
	seen := make(map[netip.Addr]bool, size)
	for i := range universe {
		// Skewed AS assignment: low-index ASes (big hosting networks)
		// run disproportionately many amplifiers. The cubic transform
		// puts ~(1/asCount)^(1/3) of the universe in the top AS while
		// keeping a long tail of small origins.
		u := r.Float64()
		asIdx := int(float64(asCount) * u * u * u)
		if asIdx >= asCount {
			asIdx = asCount - 1
		}
		var addr netip.Addr
		for {
			// Public-ish space, avoiding 0/8 and 10/8.
			addr = netutil.Addr4(uint32(11+r.IntN(200))<<24 | uint32(r.Uint32N(1<<24)))
			if !seen[addr] {
				seen[addr] = true
				break
			}
		}
		universe[i] = Reflector{Addr: addr, AS: uint32(1000 + asIdx)}
	}
	return &Pool{vector: vector, universe: universe}
}

// Vector reports the pool's protocol.
func (p *Pool) Vector() amplify.Vector { return p.vector }

// Size reports the universe size.
func (p *Pool) Size() int { return len(p.universe) }

// sample draws n distinct reflectors (indices) from the universe.
func (p *Pool) sample(r *netutil.Rand, n int) []Reflector {
	if n > len(p.universe) {
		n = len(p.universe)
	}
	// Partial Fisher-Yates over an index view.
	idx := make([]int, len(p.universe))
	for i := range idx {
		idx[i] = i
	}
	out := make([]Reflector, n)
	for i := 0; i < n; i++ {
		j := i + r.IntN(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = p.universe[idx[i]]
	}
	return out
}

// WorkingSet is the set of reflectors a booter currently uses for one
// protocol.
type WorkingSet struct {
	pool *Pool
	r    *netutil.Rand
	cur  []Reflector
	// DailyChurn is the fraction of the set replaced per day of Advance.
	// The default 0.025/day yields ~30 % churn over two weeks, matching
	// the paper's observation (1).
	DailyChurn float64
}

// NewWorkingSet draws an initial working set of size n for a booter.
// name keys the randomness so different booters using the same pool get
// different (but potentially overlapping) sets — the paper's observation
// (4).
func NewWorkingSet(pool *Pool, name string, n int, seed uint64) *WorkingSet {
	r := netutil.NewRand(seed).Fork("ws-" + name)
	return &WorkingSet{
		pool:       pool,
		r:          r,
		cur:        pool.sample(r, n),
		DailyChurn: 0.025,
	}
}

// Current returns the working set. Same-day attacks calling Current
// repeatedly observe the identical set — the paper's observation (3).
// The returned slice is shared; callers must not modify it.
func (w *WorkingSet) Current() []Reflector { return w.cur }

// Size reports the working set size.
func (w *WorkingSet) Size() int { return len(w.cur) }

// Advance ages the working set by days, replacing ~DailyChurn of the set
// per day with fresh draws from the universe.
func (w *WorkingSet) Advance(days float64) {
	if days <= 0 || len(w.cur) == 0 {
		return
	}
	target := len(w.cur)
	// Each member independently survives with (1-churn)^days.
	survive := pow1m(w.DailyChurn, days)
	kept := make([]Reflector, 0, target)
	inSet := make(map[netip.Addr]bool, target)
	for _, ref := range w.cur {
		if w.r.Float64() < survive {
			kept = append(kept, ref)
			inSet[ref.Addr] = true
		}
	}
	// Refill from the universe, skipping reflectors already kept. The
	// universe dwarfs the working set, so a few rounds always suffice.
	for attempts := 0; len(kept) < target && attempts < 16; attempts++ {
		for _, ref := range w.pool.sample(w.r, target-len(kept)) {
			if !inSet[ref.Addr] {
				kept = append(kept, ref)
				inSet[ref.Addr] = true
			}
		}
	}
	w.cur = kept
}

// Swap replaces the entire working set overnight — the sudden set change
// the paper observed for booter B between consecutive days.
func (w *WorkingSet) Swap() {
	w.cur = w.pool.sample(w.r, len(w.cur))
}

// Select returns up to n reflectors from the current working set for one
// attack. If n exceeds the set size the whole set is used.
func (w *WorkingSet) Select(n int) []Reflector {
	if n >= len(w.cur) {
		out := make([]Reflector, len(w.cur))
		copy(out, w.cur)
		return out
	}
	// Deterministic draw without replacement from the current set.
	idx := w.r.Perm(len(w.cur))[:n]
	sort.Ints(idx)
	out := make([]Reflector, n)
	for i, j := range idx {
		out[i] = w.cur[j]
	}
	return out
}

// pow1m computes (1-x)^days without importing math for tiny helpers.
func pow1m(x, days float64) float64 {
	// days is small (<=60 in practice); iterate integer part, then a
	// linear blend for the fraction.
	result := 1.0
	whole := int(days)
	for i := 0; i < whole; i++ {
		result *= 1 - x
	}
	frac := days - float64(whole)
	if frac > 0 {
		result *= 1 - x*frac
	}
	return result
}

// Overlap returns the Jaccard index of two reflector sets: |A∩B|/|A∪B|.
func Overlap(a, b []Reflector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[netip.Addr]bool, len(a))
	for _, r := range a {
		inA[r.Addr] = true
	}
	inter := 0
	union := len(inA)
	seenB := make(map[netip.Addr]bool, len(b))
	for _, r := range b {
		if seenB[r.Addr] {
			continue
		}
		seenB[r.Addr] = true
		if inA[r.Addr] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// OverlapMatrix computes the pairwise Jaccard overlap of several
// reflector sets — the data behind Figure 1(c).
func OverlapMatrix(sets [][]Reflector) [][]float64 {
	n := len(sets)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		for j := range m[i] {
			m[i][j] = Overlap(sets[i], sets[j])
		}
	}
	return m
}

// UniqueAddrs counts distinct reflector addresses across sets (the
// paper's "in total 868 reflectors" figure).
func UniqueAddrs(sets [][]Reflector) int {
	seen := make(map[netip.Addr]bool)
	for _, set := range sets {
		for _, r := range set {
			seen[r.Addr] = true
		}
	}
	return len(seen)
}

// UniqueASes counts distinct origin ASes in a set (the paper's "peer
// ASes handing over traffic" dimension).
func UniqueASes(set []Reflector) int {
	seen := make(map[uint32]bool)
	for _, r := range set {
		seen[r.AS] = true
	}
	return len(seen)
}
