package reflector

import (
	"math"
	"net/netip"
	"testing"

	"booterscope/internal/amplify"
)

func TestPoolDeterministic(t *testing.T) {
	a := NewPool(amplify.NTP, 1000, 50, 42)
	b := NewPool(amplify.NTP, 1000, 50, 42)
	if a.Size() != 1000 || b.Size() != 1000 {
		t.Fatalf("sizes = %d/%d", a.Size(), b.Size())
	}
	wsA := NewWorkingSet(a, "x", 100, 1)
	wsB := NewWorkingSet(b, "x", 100, 1)
	if Overlap(wsA.Current(), wsB.Current()) != 1 {
		t.Error("same seeds should produce identical working sets")
	}
}

func TestPoolUniqueAddresses(t *testing.T) {
	p := NewPool(amplify.NTP, 5000, 100, 7)
	seen := make(map[netip.Addr]bool)
	for _, ref := range p.universe {
		if seen[ref.Addr] {
			t.Fatalf("duplicate reflector address %v", ref.Addr)
		}
		seen[ref.Addr] = true
		if ref.AS < 1000 || ref.AS >= 1100 {
			t.Fatalf("AS %d outside expected range", ref.AS)
		}
	}
}

func TestPoolHeavyTailedASes(t *testing.T) {
	p := NewPool(amplify.NTP, 10000, 200, 9)
	counts := make(map[uint32]int)
	for _, ref := range p.universe {
		counts[ref.AS]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	mean := float64(p.Size()) / float64(len(counts))
	if float64(max) < 3*mean {
		t.Errorf("largest AS hosts %d amplifiers, mean %.0f — distribution not heavy-tailed", max, mean)
	}
}

func TestWorkingSetStableWithinDay(t *testing.T) {
	p := NewPool(amplify.NTP, 10000, 100, 3)
	ws := NewWorkingSet(p, "boaterB", 500, 3)
	a := ws.Current()
	b := ws.Current()
	if Overlap(a, b) != 1 {
		t.Error("same-day working set must be identical (paper observation 3)")
	}
}

func TestWorkingSetChurnRate(t *testing.T) {
	p := NewPool(amplify.NTP, 100000, 100, 4)
	ws := NewWorkingSet(p, "boaterB", 1000, 4)
	before := append([]Reflector(nil), ws.Current()...)
	ws.Advance(14) // two weeks
	after := ws.Current()
	if len(after) != 1000 {
		t.Fatalf("set size changed: %d", len(after))
	}
	ov := Overlap(before, after)
	// (1-0.025)^14 ~ 0.70 survive; Jaccard of 70% retained ~ 0.70/1.30 ~ 0.54.
	// The paper's "30% churn over two weeks" speaks of member turnover:
	// check retained fraction instead of Jaccard.
	inBefore := make(map[netip.Addr]bool)
	for _, r := range before {
		inBefore[r.Addr] = true
	}
	retained := 0
	for _, r := range after {
		if inBefore[r.Addr] {
			retained++
		}
	}
	frac := float64(retained) / 1000
	if math.Abs(frac-0.70) > 0.06 {
		t.Errorf("retained fraction = %.3f, want ~0.70", frac)
	}
	if ov >= 1 {
		t.Error("two-week-aged set should differ")
	}
}

func TestWorkingSetSwap(t *testing.T) {
	p := NewPool(amplify.NTP, 100000, 100, 5)
	ws := NewWorkingSet(p, "boaterB", 500, 5)
	before := append([]Reflector(nil), ws.Current()...)
	ws.Swap()
	after := ws.Current()
	if len(after) != 500 {
		t.Fatalf("size after swap = %d", len(after))
	}
	if ov := Overlap(before, after); ov > 0.05 {
		t.Errorf("overlap after swap = %.3f, want near 0", ov)
	}
}

func TestWorkingSetSelect(t *testing.T) {
	p := NewPool(amplify.NTP, 10000, 100, 6)
	ws := NewWorkingSet(p, "boaterA", 300, 6)
	sel := ws.Select(100)
	if len(sel) != 100 {
		t.Fatalf("selected %d", len(sel))
	}
	// All selected reflectors come from the working set.
	if Overlap(sel, ws.Current()) <= 0 {
		t.Error("selection disjoint from working set")
	}
	inSet := make(map[netip.Addr]bool)
	for _, r := range ws.Current() {
		inSet[r.Addr] = true
	}
	seen := make(map[netip.Addr]bool)
	for _, r := range sel {
		if !inSet[r.Addr] {
			t.Fatalf("selected %v not in working set", r.Addr)
		}
		if seen[r.Addr] {
			t.Fatalf("duplicate selection %v", r.Addr)
		}
		seen[r.Addr] = true
	}
	// Selecting more than available returns the whole set.
	all := ws.Select(10000)
	if len(all) != 300 {
		t.Errorf("over-select returned %d", len(all))
	}
}

func TestAdvanceNoOp(t *testing.T) {
	p := NewPool(amplify.NTP, 1000, 10, 7)
	ws := NewWorkingSet(p, "b", 100, 7)
	before := append([]Reflector(nil), ws.Current()...)
	ws.Advance(0)
	ws.Advance(-3)
	if Overlap(before, ws.Current()) != 1 {
		t.Error("zero-day advance changed the set")
	}
}

func TestOverlapJaccard(t *testing.T) {
	a := []Reflector{{Addr: netip.MustParseAddr("1.1.1.1")}, {Addr: netip.MustParseAddr("2.2.2.2")}}
	b := []Reflector{{Addr: netip.MustParseAddr("2.2.2.2")}, {Addr: netip.MustParseAddr("3.3.3.3")}}
	if got := Overlap(a, b); got != 1.0/3 {
		t.Errorf("overlap = %v, want 1/3", got)
	}
	if Overlap(a, a) != 1 {
		t.Error("self overlap should be 1")
	}
	if Overlap(a, nil) != 0 {
		t.Error("disjoint overlap should be 0")
	}
	if Overlap(nil, nil) != 1 {
		t.Error("empty/empty defined as 1")
	}
	// Duplicates within a set must not distort the index.
	dup := []Reflector{{Addr: netip.MustParseAddr("2.2.2.2")}, {Addr: netip.MustParseAddr("2.2.2.2")}}
	if got := Overlap(a, dup); got != 0.5 {
		t.Errorf("overlap with dup set = %v, want 0.5", got)
	}
}

func TestOverlapMatrix(t *testing.T) {
	p := NewPool(amplify.NTP, 100000, 100, 8)
	wsA := NewWorkingSet(p, "A", 200, 8)
	wsB := NewWorkingSet(p, "B", 200, 8)
	sets := [][]Reflector{wsA.Current(), wsB.Current(), wsA.Current()}
	m := OverlapMatrix(sets)
	if len(m) != 3 {
		t.Fatalf("matrix dim = %d", len(m))
	}
	for i := range m {
		if m[i][i] != 1 {
			t.Errorf("diagonal [%d] = %v", i, m[i][i])
		}
	}
	if m[0][2] != 1 {
		t.Error("identical sets should overlap 1")
	}
	if m[0][1] != m[1][0] {
		t.Error("matrix not symmetric")
	}
	// Different booters on a huge universe barely overlap.
	if m[0][1] > 0.1 {
		t.Errorf("independent sets overlap %v", m[0][1])
	}
}

func TestUniqueAddrsAndASes(t *testing.T) {
	a := []Reflector{
		{Addr: netip.MustParseAddr("1.1.1.1"), AS: 10},
		{Addr: netip.MustParseAddr("2.2.2.2"), AS: 20},
	}
	b := []Reflector{
		{Addr: netip.MustParseAddr("2.2.2.2"), AS: 20},
		{Addr: netip.MustParseAddr("3.3.3.3"), AS: 10},
	}
	if got := UniqueAddrs([][]Reflector{a, b}); got != 3 {
		t.Errorf("unique addrs = %d", got)
	}
	if got := UniqueASes(append(a, b...)); got != 2 {
		t.Errorf("unique ASes = %d", got)
	}
}

func TestVectorAccessor(t *testing.T) {
	p := NewPool(amplify.CLDAP, 100, 10, 1)
	if p.Vector() != amplify.CLDAP {
		t.Errorf("vector = %v", p.Vector())
	}
}

func BenchmarkAdvance(b *testing.B) {
	p := NewPool(amplify.NTP, 100000, 100, 1)
	ws := NewWorkingSet(p, "bench", 1000, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws.Advance(1)
	}
}
