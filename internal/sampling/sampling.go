// Package sampling implements the packet sampling strategies used by the
// study's vantage points: systematic count-based (1-in-N) sampling as
// deployed on IXP platforms, and uniform random sampling. Scale-up
// estimators invert the sampling to recover traffic totals, which is how
// the paper reports Gbps figures from sampled IPFIX data.
package sampling

import (
	"errors"
	"math"

	"booterscope/internal/netutil"
)

// ErrBadRate reports an invalid sampling configuration.
var ErrBadRate = errors.New("sampling: rate must be >= 1")

// Sampler decides, packet by packet, whether an observation is kept.
type Sampler interface {
	// Sample reports whether the next observation is selected.
	Sample() bool
	// Rate reports the nominal 1-in-N rate for scale-up.
	Rate() uint32
}

// Systematic is deterministic count-based sampling: exactly one packet
// out of every N is selected (the first of each period, matching common
// router implementations).
type Systematic struct {
	n       uint32
	counter uint32
}

// NewSystematic returns a 1-in-n systematic sampler.
func NewSystematic(n uint32) (*Systematic, error) {
	if n < 1 {
		return nil, ErrBadRate
	}
	return &Systematic{n: n}, nil
}

// Sample implements Sampler.
func (s *Systematic) Sample() bool {
	hit := s.counter == 0
	s.counter++
	if s.counter == s.n {
		s.counter = 0
	}
	return hit
}

// Rate implements Sampler.
func (s *Systematic) Rate() uint32 { return s.n }

// Random is uniform probabilistic sampling: each packet is selected
// independently with probability 1/N.
type Random struct {
	n uint32
	r *netutil.Rand
}

// NewRandom returns a probabilistic 1-in-n sampler driven by r.
func NewRandom(n uint32, r *netutil.Rand) (*Random, error) {
	if n < 1 {
		return nil, ErrBadRate
	}
	return &Random{n: n, r: r}, nil
}

// Sample implements Sampler.
func (s *Random) Sample() bool {
	if s.n == 1 {
		return true
	}
	return s.r.Uint32N(s.n) == 0
}

// Rate implements Sampler.
func (s *Random) Rate() uint32 { return s.n }

// ScaleUp inverts sampling: given a sampled count and the rate, it
// returns the unbiased estimate of the original count.
func ScaleUp(sampled uint64, rate uint32) uint64 {
	if rate <= 1 {
		return sampled
	}
	return sampled * uint64(rate)
}

// Estimator accumulates sampled packet/byte observations and produces
// scaled totals together with the standard error of the packet estimate
// (binomial model), so analyses can reason about sampling noise.
type Estimator struct {
	rate    uint32
	packets uint64
	bytes   uint64
}

// NewEstimator returns an estimator for a 1-in-rate sampled stream.
func NewEstimator(rate uint32) (*Estimator, error) {
	if rate < 1 {
		return nil, ErrBadRate
	}
	return &Estimator{rate: rate}, nil
}

// Observe records one sampled packet of the given size.
func (e *Estimator) Observe(bytes uint64) {
	e.packets++
	e.bytes += bytes
}

// Packets returns the scaled packet count estimate.
func (e *Estimator) Packets() uint64 { return ScaleUp(e.packets, e.rate) }

// Bytes returns the scaled byte count estimate.
func (e *Estimator) Bytes() uint64 { return ScaleUp(e.bytes, e.rate) }

// SampledPackets returns the raw (unscaled) number of samples.
func (e *Estimator) SampledPackets() uint64 { return e.packets }

// StdErrPackets returns the standard error of the packet estimate under
// the independent-sampling model: N * sqrt(k) where k is the number of
// samples, divided out per the estimator variance k*N*(N-1).
func (e *Estimator) StdErrPackets() float64 {
	if e.rate <= 1 {
		return 0
	}
	n := float64(e.rate)
	k := float64(e.packets)
	return math.Sqrt(k * n * (n - 1))
}
