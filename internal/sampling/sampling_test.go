package sampling

import (
	"math"
	"testing"

	"booterscope/internal/netutil"
)

func TestSystematicExactRate(t *testing.T) {
	s, err := NewSystematic(10)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if s.Sample() {
			hits++
		}
	}
	if hits != 100 {
		t.Errorf("hits = %d, want exactly 100", hits)
	}
	if s.Rate() != 10 {
		t.Errorf("rate = %d", s.Rate())
	}
}

func TestSystematicFirstOfPeriod(t *testing.T) {
	s, _ := NewSystematic(4)
	pattern := make([]bool, 8)
	for i := range pattern {
		pattern[i] = s.Sample()
	}
	want := []bool{true, false, false, false, true, false, false, false}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("pattern = %v", pattern)
		}
	}
}

func TestSystematicRateOne(t *testing.T) {
	s, _ := NewSystematic(1)
	for i := 0; i < 10; i++ {
		if !s.Sample() {
			t.Fatal("1-in-1 sampler dropped a packet")
		}
	}
}

func TestRandomApproximateRate(t *testing.T) {
	r := netutil.NewRand(5)
	s, err := NewRandom(100, r)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Sample() {
			hits++
		}
	}
	// Expect ~1000 hits; allow 4 sigma (~126).
	if math.Abs(float64(hits)-1000) > 130 {
		t.Errorf("hits = %d, want ~1000", hits)
	}
}

func TestRandomRateOne(t *testing.T) {
	s, _ := NewRandom(1, netutil.NewRand(1))
	for i := 0; i < 10; i++ {
		if !s.Sample() {
			t.Fatal("1-in-1 random sampler dropped a packet")
		}
	}
}

func TestBadRates(t *testing.T) {
	if _, err := NewSystematic(0); err != ErrBadRate {
		t.Errorf("systematic err = %v", err)
	}
	if _, err := NewRandom(0, netutil.NewRand(1)); err != ErrBadRate {
		t.Errorf("random err = %v", err)
	}
	if _, err := NewEstimator(0); err != ErrBadRate {
		t.Errorf("estimator err = %v", err)
	}
}

func TestScaleUp(t *testing.T) {
	if got := ScaleUp(7, 10000); got != 70000 {
		t.Errorf("ScaleUp = %d", got)
	}
	if got := ScaleUp(7, 1); got != 7 {
		t.Errorf("unsampled ScaleUp = %d", got)
	}
	if got := ScaleUp(7, 0); got != 7 {
		t.Errorf("zero-rate ScaleUp = %d", got)
	}
}

func TestEstimatorRecoversTotals(t *testing.T) {
	// Sample a synthetic stream of 1M packets of 486 bytes at 1-in-1000
	// and check the estimate lands near the truth.
	const rate = 1000
	const total = 1_000_000
	s, _ := NewSystematic(rate)
	e, _ := NewEstimator(rate)
	for i := 0; i < total; i++ {
		if s.Sample() {
			e.Observe(486)
		}
	}
	if e.Packets() != total {
		t.Errorf("packet estimate = %d, want %d (systematic is exact)", e.Packets(), total)
	}
	if e.Bytes() != total*486 {
		t.Errorf("byte estimate = %d", e.Bytes())
	}
	if e.SampledPackets() != total/rate {
		t.Errorf("samples = %d", e.SampledPackets())
	}
}

func TestEstimatorStdErr(t *testing.T) {
	e, _ := NewEstimator(100)
	for i := 0; i < 400; i++ {
		e.Observe(100)
	}
	want := math.Sqrt(400 * 100 * 99)
	if got := e.StdErrPackets(); math.Abs(got-want) > 1e-6 {
		t.Errorf("stderr = %v, want %v", got, want)
	}
	unsampled, _ := NewEstimator(1)
	unsampled.Observe(1)
	if unsampled.StdErrPackets() != 0 {
		t.Error("unsampled stream should have zero stderr")
	}
}

func BenchmarkSystematic(b *testing.B) {
	s, _ := NewSystematic(10000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}

func BenchmarkRandom(b *testing.B) {
	s, _ := NewRandom(10000, netutil.NewRand(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample()
	}
}
