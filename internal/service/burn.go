package service

import "booterscope/internal/telemetry"

// Multi-window burn-rate evaluation of the detection-latency SLO
// (replacing the raw p99 check the shed ladder originally used). The
// objective is "at most BudgetFraction of detections exceed
// TargetP99"; the burn rate is how many times faster than budget the
// error budget is being consumed over a window. Alerting requires
// BOTH a fast window (reacts quickly, noisy alone) and a slow window
// (smooths transients) to burn above BurnThreshold — the standard
// multi-window construction, which fires within minutes on a real
// overload but stays quiet through a single slow batch.
//
// Windows are counted in evaluation samples, not wall time, so the
// evaluator is deterministic under test: at the default 1-minute
// Serve cadence the defaults (5/60) correspond to 5m/1h windows. At
// startup, windows shorter than the configured span use whatever
// history exists — a daemon overloaded from its first minutes still
// breaches.

// burnSample is one cumulative (observations, over-target) reading of
// the detection-latency histogram.
type burnSample struct {
	count uint64
	bad   uint64
}

// burnEvaluator folds periodic histogram readings into fast/slow
// burn rates. It is driven from the single evaluation goroutine (the
// same contract as the shed ladder) and needs no locking.
type burnEvaluator struct {
	opts SLOOptions
	// ring holds the last SlowWindow+1 cumulative samples; samples
	// before process start read as zero, which is exact (the histogram
	// started empty).
	ring []burnSample
	n    int
	// breached is the current alert state, for edge detection.
	breached bool
}

func newBurnEvaluator(opts SLOOptions) *burnEvaluator {
	o := opts.withDefaults()
	return &burnEvaluator{opts: o, ring: make([]burnSample, o.SlowWindow+1)}
}

// observe folds one cumulative reading and returns the two window
// burn rates, whether the SLO is breaching (both windows over
// threshold), and whether that state just flipped (the event/dump
// edge).
func (b *burnEvaluator) observe(count, bad uint64) (fast, slow float64, breach, edge bool) {
	b.ring[b.n%len(b.ring)] = burnSample{count: count, bad: bad}
	b.n++
	fast = b.burnOver(b.opts.FastWindow)
	slow = b.burnOver(b.opts.SlowWindow)
	breach = fast >= b.opts.BurnThreshold && slow >= b.opts.BurnThreshold
	edge = breach != b.breached
	b.breached = breach
	return fast, slow, breach, edge
}

// burnOver computes the burn rate over the trailing w samples: the
// fraction of that window's observations over target, divided by the
// error budget. A window with no observations burns nothing.
func (b *burnEvaluator) burnOver(w int) float64 {
	newest := b.ring[(b.n-1)%len(b.ring)]
	var oldest burnSample
	if i := b.n - 1 - w; i >= 0 {
		oldest = b.ring[i%len(b.ring)]
	}
	count := newest.count - oldest.count
	if count == 0 {
		return 0
	}
	badFrac := float64(newest.bad-oldest.bad) / float64(count)
	return badFrac / b.opts.BudgetFraction
}

// badCount extracts the over-target observation count from a
// histogram snapshot: total observations minus those in buckets at or
// under the target. The default TargetP99 (250ms) is an exact
// DefBuckets bound, so the default objective loses nothing to bucket
// quantization.
func badCount(snap telemetry.HistogramSnapshot, targetSeconds float64) uint64 {
	var good uint64
	for _, bk := range snap.Buckets {
		if bk.UpperBound <= targetSeconds {
			good += bk.Count
		}
	}
	return snap.Count - good
}
