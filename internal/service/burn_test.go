package service

import (
	"testing"
	"time"

	"booterscope/internal/telemetry"
)

// burnOpts gives tiny windows so tests exercise the window arithmetic
// without sixty evaluations per case.
var burnOpts = SLOOptions{FastWindow: 2, SlowWindow: 4}

func TestBurnEvaluatorQuietStreamNeverBreaches(t *testing.T) {
	b := newBurnEvaluator(burnOpts)
	for i := uint64(1); i <= 20; i++ {
		// 1000 observations per step, none over target.
		fast, slow, breach, edge := b.observe(i*1000, 0)
		if fast != 0 || slow != 0 || breach || edge {
			t.Fatalf("step %d: fast=%v slow=%v breach=%v edge=%v, want all zero",
				i, fast, slow, breach, edge)
		}
	}
}

func TestBurnEvaluatorBreachesOnSustainedBurn(t *testing.T) {
	b := newBurnEvaluator(burnOpts)
	// Every observation over target: badFrac 1, burn 1/0.01 = 100 in
	// both windows from the very first sample (startup windows use the
	// zero baseline, which is exact — the histogram began empty).
	fast, slow, breach, edge := b.observe(100, 100)
	if fast != 100 || slow != 100 {
		t.Fatalf("burn = %v/%v, want 100/100", fast, slow)
	}
	if !breach || !edge {
		t.Fatalf("breach=%v edge=%v, want true/true", breach, edge)
	}
	// Staying breached is not an edge.
	_, _, breach, edge = b.observe(200, 200)
	if !breach || edge {
		t.Fatalf("sustained: breach=%v edge=%v, want true/false", breach, edge)
	}
}

func TestBurnEvaluatorFastWindowAloneDoesNotPage(t *testing.T) {
	b := newBurnEvaluator(burnOpts)
	// A long clean history, then a short spike: the fast window burns
	// hot but the slow window still averages it away — the multi-window
	// construction's whole point.
	var count uint64
	for i := 0; i < 10; i++ {
		count += 100
		b.observe(count, 0)
	}
	// 40 bad in one step: the 2-sample fast window sees 40/200 (burn
	// 20), the 4-sample slow window 40/400 (burn 10) — over and under
	// the 14.4 threshold respectively.
	count += 100
	fast, slow, breach, _ := b.observe(count, 40)
	if fast < b.opts.BurnThreshold {
		t.Fatalf("fast burn = %v, want >= threshold %v (spike must register)", fast, b.opts.BurnThreshold)
	}
	if slow >= b.opts.BurnThreshold {
		t.Fatalf("slow burn = %v, want < threshold (spike must be smoothed)", slow)
	}
	if breach {
		t.Fatal("breached on a fast-window spike alone")
	}
}

func TestBurnEvaluatorRecoveryEdge(t *testing.T) {
	b := newBurnEvaluator(burnOpts)
	b.observe(100, 100) // breach
	// Clean traffic pushes both windows under threshold once the bad
	// samples age out of them.
	var count, bad uint64 = 100, 100
	sawRecovery := false
	for i := 0; i < 10; i++ {
		count += 100_000
		_, _, breach, edge := b.observe(count, bad)
		if edge && !breach {
			sawRecovery = true
			break
		}
	}
	if !sawRecovery {
		t.Fatal("no recovery edge after sustained clean traffic")
	}
}

func TestBurnEvaluatorWindowForgets(t *testing.T) {
	b := newBurnEvaluator(burnOpts)
	b.observe(100, 100)
	// Five clean steps — beyond SlowWindow — must drop both burns to 0:
	// the old bad sample is outside every window.
	var fast, slow float64
	for i := uint64(1); i <= 5; i++ {
		fast, slow, _, _ = b.observe(100+i*100, 100)
	}
	if fast != 0 || slow != 0 {
		t.Fatalf("burn after window passed = %v/%v, want 0/0", fast, slow)
	}
}

func TestBurnDefaults(t *testing.T) {
	o := SLOOptions{}.withDefaults()
	if o.BudgetFraction != 0.01 || o.BurnThreshold != 14.4 || o.FastWindow != 5 || o.SlowWindow != 60 {
		t.Fatalf("defaults = %+v", o)
	}
	// SlowWindow can never be shorter than FastWindow.
	o = SLOOptions{FastWindow: 10, SlowWindow: 3}.withDefaults()
	if o.SlowWindow < o.FastWindow {
		t.Fatalf("SlowWindow %d < FastWindow %d after defaults", o.SlowWindow, o.FastWindow)
	}
}

func TestBadCountMatchesHistogram(t *testing.T) {
	h := telemetry.NewHistogram()
	for i := 0; i < 40; i++ {
		h.Observe(0.001) // well under target
	}
	for i := 0; i < 7; i++ {
		h.Observe(1.0) // over target
	}
	// 250ms is an exact DefBuckets bound, so the split is lossless.
	if got := badCount(h.Snapshot(), 0.25); got != 7 {
		t.Fatalf("badCount = %d, want 7", got)
	}
	// An observation exactly on the target bound counts as good
	// (histogram buckets are <= upper bound).
	h.Observe(0.25)
	if got := badCount(h.Snapshot(), 0.25); got != 7 {
		t.Fatalf("badCount with on-target observation = %d, want 7", got)
	}
}

func TestEvaluateExportsBurnGauges(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := openService(t, t.TempDir(), "", testCfg, Options{Registry: reg})
	defer func() { _, _ = svc.Drain() }()

	// All detections over the 250ms default target: one evaluation is
	// enough to breach both startup windows.
	for i := 0; i < 50; i++ {
		svc.detect.ObserveDuration(time.Second)
	}
	svc.Evaluate()
	if v := svc.m.burnFast.Value(); v < 14.4 {
		t.Fatalf("burnFast gauge = %v, want >= 14.4", v)
	}
	if v := svc.m.burnSlow.Value(); v < 14.4 {
		t.Fatalf("burnSlow gauge = %v, want >= 14.4", v)
	}
	if svc.Stats().SLOBreaches != 1 {
		t.Fatalf("SLOBreaches = %d, want 1", svc.Stats().SLOBreaches)
	}
}
