package service

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"

	"booterscope/internal/chaos"
	"booterscope/internal/classify"
)

// Checkpoint file layout (the flowstore CRC-framing pattern applied to
// monitor state):
//
//	magic (8 bytes "BSCKPT01")
//	frame*:
//	  u32 frameLen   — length of payload
//	  u32 crc        — IEEE CRC32 over payload
//	  payload        — first byte is the frame type:
//	    1 header  — version, pipeline position (watermark, seq), store
//	                durability watermark, eviction clock, classifier
//	                config, monitor counters
//	    2 bins    — a chunk of (victim, minute) bins with source sets
//	    3 alerted — re-alert suppression markers
//	    4 attacks — open attack lifecycle states (stable attack IDs)
//	    255 trailer — end marker; a file without it is torn
//
// Writes go to checkpoint.tmp and are published by atomic rename, so
// the visible checkpoint.bsck is always a complete snapshot: a crash
// mid-write (every write runs through a chaos.Failpoint hook in tests)
// leaves the previous checkpoint untouched. Load still verifies every
// CRC and requires the trailer, so a checkpoint torn by the filesystem
// itself is detected and reported rather than half-loaded — the caller
// falls back to a cold start plus archive replay, the same
// torn-tail-truncation stance the flowstore takes.

var ckptMagic = [8]byte{'B', 'S', 'C', 'K', 'P', 'T', '0', '1'}

const (
	ckptFileName = "checkpoint.bsck"
	ckptTmpName  = "checkpoint.tmp"

	frameHeader  = 1
	frameBins    = 2
	frameAlerted = 3
	frameAttacks = 4
	frameTrailer = 255

	// ckptVersion 2 added the attacks frame. Version 1 files are
	// rejected as unsupported; the daemon then cold-starts and replays
	// the archive — the same stance it takes on a corrupt checkpoint.
	ckptVersion = 2

	// binsPerFrame chunks the victim table so large checkpoints are
	// written (and fault-injected) in multiple operations.
	binsPerFrame = 256
)

// ErrCheckpointCorrupt marks a checkpoint file that fails CRC or
// framing validation — the daemon treats it as absent and replays from
// the flow archive instead.
var ErrCheckpointCorrupt = errors.New("service: corrupt checkpoint")

// Checkpoint is the complete persisted state of the detection daemon:
// the monitor snapshot plus the pipeline position (the fan-out's
// watermark and global sequence) and the archive durability watermark
// the restart replays from.
type Checkpoint struct {
	// Watermark is the fan-out's eviction-clock watermark
	// (math.MinInt64 when no matched record has been routed).
	Watermark int64
	// Seq is the fan-out's global record sequence — how many records
	// the pipeline had routed when the snapshot was taken.
	Seq uint64
	// StoreDurable is the flow archive's durable record count at the
	// snapshot (the store is sealed at every checkpoint, so this is
	// the exact replay skip point).
	StoreDurable uint64
	// Config is the classifier thresholds in force — a SIGHUP reload
	// survives a restart.
	Config classify.Config
	// Monitor is the folded monitor state.
	Monitor *classify.MonitorSnapshot
}

// CheckpointPath returns the checkpoint file location under dir.
func CheckpointPath(dir string) string { return filepath.Join(dir, ckptFileName) }

func appendFrame(dst []byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

func encodeHeader(cp *Checkpoint) []byte {
	s := cp.Monitor
	b := []byte{frameHeader}
	b = binary.BigEndian.AppendUint16(b, ckptVersion)
	b = binary.BigEndian.AppendUint64(b, uint64(cp.Watermark))
	b = binary.BigEndian.AppendUint64(b, cp.Seq)
	b = binary.BigEndian.AppendUint64(b, cp.StoreDurable)
	b = binary.BigEndian.AppendUint64(b, uint64(s.LatestUnix))
	if s.LatestValid {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(cp.Config.SizeThreshold))
	b = binary.BigEndian.AppendUint64(b, math.Float64bits(cp.Config.MinRateBps))
	b = binary.BigEndian.AppendUint64(b, uint64(int64(cp.Config.MinSources)))
	for _, v := range [...]uint64{
		s.Stats.Records, s.Stats.Matched, s.Stats.Alerts,
		s.Stats.RejectedRecords, s.Stats.EvictedBins, s.Stats.SourceOverflows,
	} {
		b = binary.BigEndian.AppendUint64(b, v)
	}
	return b
}

const headerLen = 1 + 2 + 8*4 + 1 + 8*3 + 8*6

func decodeHeader(b []byte, cp *Checkpoint) error {
	if len(b) != headerLen {
		return fmt.Errorf("%w: header frame is %d bytes, want %d", ErrCheckpointCorrupt, len(b), headerLen)
	}
	if v := binary.BigEndian.Uint16(b[1:]); v != ckptVersion {
		return fmt.Errorf("%w: unsupported checkpoint version %d", ErrCheckpointCorrupt, v)
	}
	s := cp.Monitor
	cp.Watermark = int64(binary.BigEndian.Uint64(b[3:]))
	cp.Seq = binary.BigEndian.Uint64(b[11:])
	cp.StoreDurable = binary.BigEndian.Uint64(b[19:])
	s.LatestUnix = int64(binary.BigEndian.Uint64(b[27:]))
	s.LatestValid = b[35] == 1
	cp.Config.SizeThreshold = math.Float64frombits(binary.BigEndian.Uint64(b[36:]))
	cp.Config.MinRateBps = math.Float64frombits(binary.BigEndian.Uint64(b[44:]))
	cp.Config.MinSources = int(int64(binary.BigEndian.Uint64(b[52:])))
	s.Stats.Records = binary.BigEndian.Uint64(b[60:])
	s.Stats.Matched = binary.BigEndian.Uint64(b[68:])
	s.Stats.Alerts = binary.BigEndian.Uint64(b[76:])
	s.Stats.RejectedRecords = binary.BigEndian.Uint64(b[84:])
	s.Stats.EvictedBins = binary.BigEndian.Uint64(b[92:])
	s.Stats.SourceOverflows = binary.BigEndian.Uint64(b[100:])
	return nil
}

func encodeBins(bins []classify.BinSnapshot) []byte {
	b := []byte{frameBins}
	b = binary.BigEndian.AppendUint32(b, uint32(len(bins)))
	for i := range bins {
		bin := &bins[i]
		b = append(b, bin.Victim[:]...)
		b = binary.BigEndian.AppendUint64(b, uint64(bin.MinuteUnix))
		b = binary.BigEndian.AppendUint64(b, bin.Bytes)
		b = binary.BigEndian.AppendUint64(b, bin.SourceOverflow)
		b = binary.BigEndian.AppendUint32(b, uint32(len(bin.Sources)))
		for _, src := range bin.Sources {
			b = append(b, src[:]...)
		}
	}
	return b
}

func decodeBins(b []byte, snap *classify.MonitorSnapshot) error {
	if len(b) < 5 {
		return fmt.Errorf("%w: short bins frame", ErrCheckpointCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b[1:]))
	off := 5
	for i := 0; i < n; i++ {
		if len(b)-off < 16+8+8+8+4 {
			return fmt.Errorf("%w: truncated bin %d", ErrCheckpointCorrupt, i)
		}
		var bin classify.BinSnapshot
		copy(bin.Victim[:], b[off:])
		bin.MinuteUnix = int64(binary.BigEndian.Uint64(b[off+16:]))
		bin.Bytes = binary.BigEndian.Uint64(b[off+24:])
		bin.SourceOverflow = binary.BigEndian.Uint64(b[off+32:])
		nsrc := int(binary.BigEndian.Uint32(b[off+40:]))
		off += 44
		if nsrc < 0 || len(b)-off < nsrc*16 {
			return fmt.Errorf("%w: truncated source set of bin %d", ErrCheckpointCorrupt, i)
		}
		bin.Sources = make([][16]byte, nsrc)
		for j := 0; j < nsrc; j++ {
			copy(bin.Sources[j][:], b[off:])
			off += 16
		}
		snap.Bins = append(snap.Bins, bin)
	}
	if off != len(b) {
		return fmt.Errorf("%w: %d trailing bytes in bins frame", ErrCheckpointCorrupt, len(b)-off)
	}
	return nil
}

func encodeAlerted(ms []classify.AlertMarker) []byte {
	b := []byte{frameAlerted}
	b = binary.BigEndian.AppendUint32(b, uint32(len(ms)))
	for i := range ms {
		b = append(b, ms[i].Victim[:]...)
		b = binary.BigEndian.AppendUint64(b, uint64(ms[i].MinuteUnix))
	}
	return b
}

func decodeAlerted(b []byte, snap *classify.MonitorSnapshot) error {
	if len(b) < 5 {
		return fmt.Errorf("%w: short alerted frame", ErrCheckpointCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b[1:]))
	if len(b) != 5+n*24 {
		return fmt.Errorf("%w: alerted frame is %d bytes, want %d", ErrCheckpointCorrupt, len(b), 5+n*24)
	}
	off := 5
	for i := 0; i < n; i++ {
		var m classify.AlertMarker
		copy(m.Victim[:], b[off:])
		m.MinuteUnix = int64(binary.BigEndian.Uint64(b[off+16:]))
		snap.Alerted = append(snap.Alerted, m)
		off += 24
	}
	return nil
}

func encodeAttacks(as []classify.AttackSnapshot) []byte {
	b := []byte{frameAttacks}
	b = binary.BigEndian.AppendUint32(b, uint32(len(as)))
	for i := range as {
		b = append(b, as[i].Victim[:]...)
		b = binary.BigEndian.AppendUint64(b, as[i].ID)
		b = binary.BigEndian.AppendUint64(b, uint64(as[i].OpenedUnix))
		b = binary.BigEndian.AppendUint64(b, uint64(as[i].LastUnix))
	}
	return b
}

func decodeAttacks(b []byte, snap *classify.MonitorSnapshot) error {
	if len(b) < 5 {
		return fmt.Errorf("%w: short attacks frame", ErrCheckpointCorrupt)
	}
	n := int(binary.BigEndian.Uint32(b[1:]))
	if len(b) != 5+n*40 {
		return fmt.Errorf("%w: attacks frame is %d bytes, want %d", ErrCheckpointCorrupt, len(b), 5+n*40)
	}
	off := 5
	for i := 0; i < n; i++ {
		var a classify.AttackSnapshot
		copy(a.Victim[:], b[off:])
		a.ID = binary.BigEndian.Uint64(b[off+16:])
		a.OpenedUnix = int64(binary.BigEndian.Uint64(b[off+24:]))
		a.LastUnix = int64(binary.BigEndian.Uint64(b[off+32:]))
		snap.Attacks = append(snap.Attacks, a)
		off += 40
	}
	return nil
}

// EncodeCheckpoint serializes cp into the framed on-disk form. The
// encoding is deterministic: equal states produce identical bytes (the
// restore-equivalence test pins this).
func EncodeCheckpoint(cp *Checkpoint) []byte {
	out := append([]byte(nil), ckptMagic[:]...)
	out = appendFrame(out, encodeHeader(cp))
	bins := cp.Monitor.Bins
	for len(bins) > 0 {
		n := len(bins)
		if n > binsPerFrame {
			n = binsPerFrame
		}
		out = appendFrame(out, encodeBins(bins[:n]))
		bins = bins[n:]
	}
	out = appendFrame(out, encodeAlerted(cp.Monitor.Alerted))
	out = appendFrame(out, encodeAttacks(cp.Monitor.Attacks))
	return appendFrame(out, []byte{frameTrailer})
}

// DecodeCheckpoint parses bytes produced by EncodeCheckpoint, verifying
// magic, every frame CRC, and the trailer. Any damage — a torn tail, a
// flipped bit, a missing trailer — yields ErrCheckpointCorrupt.
func DecodeCheckpoint(b []byte) (*Checkpoint, error) {
	if len(b) < len(ckptMagic) || [8]byte(b[:8]) != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	cp := &Checkpoint{Monitor: &classify.MonitorSnapshot{}}
	off := len(ckptMagic)
	sawHeader, sawTrailer := false, false
	for off < len(b) {
		if sawTrailer {
			return nil, fmt.Errorf("%w: data after trailer", ErrCheckpointCorrupt)
		}
		if len(b)-off < 8 {
			return nil, fmt.Errorf("%w: torn frame header at offset %d", ErrCheckpointCorrupt, off)
		}
		frameLen := int(binary.BigEndian.Uint32(b[off:]))
		crc := binary.BigEndian.Uint32(b[off+4:])
		if frameLen < 1 || len(b)-off-8 < frameLen {
			return nil, fmt.Errorf("%w: torn frame at offset %d", ErrCheckpointCorrupt, off)
		}
		payload := b[off+8 : off+8+frameLen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrCheckpointCorrupt, off)
		}
		switch payload[0] {
		case frameHeader:
			if sawHeader {
				return nil, fmt.Errorf("%w: duplicate header frame", ErrCheckpointCorrupt)
			}
			sawHeader = true
			if err := decodeHeader(payload, cp); err != nil {
				return nil, err
			}
		case frameBins:
			if err := decodeBins(payload, cp.Monitor); err != nil {
				return nil, err
			}
		case frameAlerted:
			if err := decodeAlerted(payload, cp.Monitor); err != nil {
				return nil, err
			}
		case frameAttacks:
			if err := decodeAttacks(payload, cp.Monitor); err != nil {
				return nil, err
			}
		case frameTrailer:
			sawTrailer = true
		default:
			return nil, fmt.Errorf("%w: unknown frame type %d", ErrCheckpointCorrupt, payload[0])
		}
		off += 8 + frameLen
	}
	if !sawHeader || !sawTrailer {
		return nil, fmt.Errorf("%w: missing %s frame", ErrCheckpointCorrupt, map[bool]string{true: "trailer", false: "header"}[sawHeader])
	}
	return cp, nil
}

// SaveCheckpoint atomically publishes cp under dir: the framed bytes go
// to a temp file (every write, the fsync, and the rename run through
// the fault hook, so the chaos suite can kill the writer at each
// offset), and only a complete, synced temp file is renamed over the
// previous checkpoint. On any failure the previous checkpoint is left
// intact and the temp file removed. Returns the checkpoint size.
func SaveCheckpoint(dir string, cp *Checkpoint, fault *chaos.Failpoint) (int64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("service: checkpoint dir: %w", err)
	}
	tmp := filepath.Join(dir, ckptTmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("service: checkpoint temp file: %w", err)
	}
	enc := EncodeCheckpoint(cp)
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	// Write frame by frame so each frame is a distinct fault-injection
	// point — the granularity a real crash tears files at.
	for off := 0; off < len(enc); {
		end := len(enc)
		if off+8 <= len(enc) && off >= len(ckptMagic) {
			end = off + 8 + int(binary.BigEndian.Uint32(enc[off:]))
		} else if off == 0 {
			end = len(ckptMagic)
		}
		if err := fault.Check("checkpoint write"); err != nil {
			return fail(err)
		}
		if _, err := f.Write(enc[off:end]); err != nil {
			return fail(fmt.Errorf("service: writing checkpoint: %w", err))
		}
		off = end
	}
	if err := fault.Check("checkpoint fsync"); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("service: syncing checkpoint: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("service: closing checkpoint: %w", err))
	}
	if err := fault.Check("checkpoint rename"); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, CheckpointPath(dir)); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("service: publishing checkpoint: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return int64(len(enc)), nil
}

// LoadCheckpoint reads the checkpoint under dir. A missing file is not
// an error — (nil, nil) means cold start. A present but damaged file
// returns ErrCheckpointCorrupt; the caller falls back to a cold start
// with archive replay from record zero.
func LoadCheckpoint(dir string) (*Checkpoint, error) {
	b, err := os.ReadFile(CheckpointPath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("service: reading checkpoint: %w", err)
	}
	return DecodeCheckpoint(b)
}
