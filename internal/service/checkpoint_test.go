package service

import (
	"bytes"
	"math/rand"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"booterscope/internal/chaos"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/flowstore"
	"booterscope/internal/packet"
)

// testCfg lowers the thresholds so the synthetic streams below raise
// alerts without terabit volumes.
var testCfg = classify.Config{MinRateBps: 50_000, MinSources: 3}

// genStream builds a deterministic amplification-shaped stream with
// strictly increasing timestamps (the archive-replay contract), many
// victims (so checkpoints span multiple bins frames), enough duration
// for evictions and re-alerts, and benign/non-NTP records mixed in.
func genStream(seed int64, n int) []flow.Record {
	rng := rand.New(rand.NewSource(seed))
	base := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]flow.Record, 0, n)
	for i := 0; i < n; i++ {
		start := base.Add(time.Duration(i) * 250 * time.Millisecond)
		pkts := uint64(1 + rng.Intn(1500))
		rec := flow.Record{
			Key: flow.Key{
				Src:      netip.AddrFrom4([4]byte{198, 51, 100, byte(rng.Intn(64))}),
				Dst:      netip.AddrFrom4([4]byte{203, 0, 113, byte(rng.Intn(40))}),
				SrcPort:  classify.NTPPort,
				DstPort:  uint16(1024 + rng.Intn(5000)),
				Protocol: packet.IPProtoUDP,
			},
			Packets:      pkts,
			Bytes:        pkts * 480,
			Start:        start,
			End:          start.Add(time.Second),
			SamplingRate: 1,
		}
		switch rng.Intn(6) {
		case 0: // benign NTP: small packets, filtered out
			rec.Bytes = rec.Packets * 76
		case 1: // non-NTP
			rec.SrcPort = 443
		}
		recs = append(recs, rec)
	}
	return recs
}

// openService opens a daemon over dir/storeDir with 4 shards. The
// returned store is owned by the test (abandon it to simulate a
// crash; reopening the same storeDir runs flowstore recovery).
func openService(t *testing.T, dir, storeDir string, cfg classify.Config, opts Options) *Service {
	t.Helper()
	opts.Classify = cfg
	if opts.Parallelism == 0 {
		opts.Parallelism = 4
	}
	opts.CheckpointDir = dir
	if storeDir != "" {
		st, err := flowstore.Open(storeDir, flowstore.Options{Shards: 2, BlockRecords: 64, NoSync: true})
		if err != nil {
			t.Fatalf("opening store: %v", err)
		}
		opts.Store = st
	}
	svc, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return svc
}

func feed(t *testing.T, s *Service, recs []flow.Record) {
	t.Helper()
	for off := 0; off < len(recs); off += 400 {
		end := off + 400
		if end > len(recs) {
			end = len(recs)
		}
		if err := s.Ingest(recs[off:end]); err != nil {
			t.Fatalf("Ingest: %v", err)
		}
	}
}

func mustCheckpoint(t *testing.T, s *Service) {
	t.Helper()
	if n, err := s.Checkpoint(); err != nil || n == 0 {
		t.Fatalf("Checkpoint = %d, %v", n, err)
	}
}

// quiesceAlerts reads the alerts raised so far with the pipeline
// stopped at the barrier — the white-box way to observe a daemon that
// will be abandoned (crashed) rather than drained.
func quiesceAlerts(t *testing.T, s *Service) []classify.Alert {
	t.Helper()
	var alerts []classify.Alert
	s.mu.Lock()
	err := s.fan.Barrier(func() error { alerts = s.monitor.Alerts(); return nil })
	s.mu.Unlock()
	if err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	return alerts
}

func readCheckpoint(t *testing.T, dir string) []byte {
	t.Helper()
	b, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatalf("reading checkpoint: %v", err)
	}
	return b
}

func TestCheckpointCodecRoundTrip(t *testing.T) {
	snap := &classify.MonitorSnapshot{
		LatestUnix: 1543600000, LatestValid: true,
		Stats: classify.MonitorStats{Records: 10, Matched: 7, Alerts: 2, EvictedBins: 1},
	}
	for i := 0; i < 600; i++ { // > binsPerFrame: multiple bins frames
		snap.Bins = append(snap.Bins, classify.BinSnapshot{
			Victim:     [16]byte{0: byte(i >> 8), 1: byte(i)},
			MinuteUnix: int64(1543600000 + 60*i),
			Bytes:      uint64(i) * 1000,
			Sources:    [][16]byte{{2: byte(i)}, {3: byte(i)}},
		})
	}
	snap.Alerted = []classify.AlertMarker{{Victim: [16]byte{9}, MinuteUnix: 1543600060}}
	cp := &Checkpoint{
		Watermark: 1543600123, Seq: 4242, StoreDurable: 999,
		Config:  classify.Config{SizeThreshold: 200, MinRateBps: 50_000, MinSources: 3},
		Monitor: snap,
	}
	enc := EncodeCheckpoint(cp)
	if !bytes.Equal(enc, EncodeCheckpoint(cp)) {
		t.Fatal("encoding is not deterministic")
	}
	got, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatal("round trip diverges")
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeCheckpoint(mutate(append([]byte(nil), enc...))); err == nil {
				t.Fatalf("%s: decoded without error", name)
			}
		})
	}
	corrupt("torn tail", func(b []byte) []byte { return b[:len(b)-5] })
	corrupt("missing trailer", func(b []byte) []byte { return b[:len(b)-9] })
	corrupt("bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b })
	corrupt("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("data after trailer", func(b []byte) []byte { return append(b, 0, 0, 0, 1, 0, 0, 0, 0, 7) })
	corrupt("empty", func([]byte) []byte { return nil })
}

// TestCheckpointRestoreMatchesUninterrupted is the tentpole property:
// a daemon killed after a checkpoint and restarted — restoring monitor
// state, resuming the pipeline position, replaying the archive past
// the checkpoint's durability watermark — matches a never-restarted
// daemon exactly: same alerts (the mid-window ones re-raised, i.e. no
// detection gap), same accounting, and a byte-identical final
// checkpoint. A snapshot attempt dying mid-write under injected
// faults must not perturb any of it.
func TestCheckpointRestoreMatchesUninterrupted(t *testing.T) {
	recs := genStream(1, 24_000)
	p1, p2 := len(recs)/3, 2*len(recs)/3

	// Reference: never restarted, same checkpoint/durability schedule.
	dirA, storeA := t.TempDir(), t.TempDir()
	svcA := openService(t, dirA, storeA, testCfg, Options{})
	feed(t, svcA, recs[:p1])
	mustCheckpoint(t, svcA)
	feed(t, svcA, recs[p1:p2])
	if err := svcA.opts.Store.Seal(); err != nil {
		t.Fatal(err)
	}
	feed(t, svcA, recs[p2:])
	repA, err := svcA.Drain()
	if err != nil {
		t.Fatalf("drain A: %v", err)
	}
	alertsA := svcA.Alerts()
	if len(alertsA) == 0 || repA.Monitor.EvictedBins == 0 {
		t.Fatalf("degenerate stream: %d alerts, %d evictions", len(alertsA), repA.Monitor.EvictedBins)
	}

	// Interrupted: prefix → checkpoint → mid → SIGKILL (abandoned, no
	// drain). The archive is sealed before the crash — loss past the
	// durability point is the flowstore's own chaos-tested story; this
	// test pins the checkpoint/restore machinery.
	dirB, storeDirB := t.TempDir(), t.TempDir()
	svcB := openService(t, dirB, storeDirB, testCfg, Options{})
	feed(t, svcB, recs[:p1])
	mustCheckpoint(t, svcB)
	prefixAlerts := quiesceAlerts(t, svcB)

	// A checkpoint attempt that dies mid-write (fault injected from
	// write op 2 on, crashed-process shape) must fail loudly and leave
	// the published snapshot untouched.
	published := readCheckpoint(t, dirB)
	svcB.opts.WriteFault = chaos.FailFrom(2)
	if _, err := svcB.Checkpoint(); err == nil {
		t.Fatal("checkpoint under write faults succeeded")
	}
	svcB.opts.WriteFault = nil
	if got := readCheckpoint(t, dirB); !bytes.Equal(got, published) {
		t.Fatal("failed checkpoint attempt perturbed the published snapshot")
	}
	if svcB.Stats().CheckpointFailures != 1 {
		t.Fatalf("checkpoint failures = %d, want 1", svcB.Stats().CheckpointFailures)
	}

	feed(t, svcB, recs[p1:p2])
	if err := svcB.opts.Store.Seal(); err != nil {
		t.Fatal(err)
	}
	crashAlerts := quiesceAlerts(t, svcB)
	// svcB is abandoned here — the simulated SIGKILL.

	// Restart: restore the checkpoint, replay the archive past its
	// durability watermark, then resume the live stream.
	svcC := openService(t, dirB, storeDirB, testCfg, Options{})
	rr := svcC.Restore()
	if !rr.Restored || rr.Corrupt {
		t.Fatalf("restore report = %+v", rr)
	}
	replayed, err := svcC.ReplayFromStore()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if want := uint64(p2 - p1); replayed != want {
		t.Fatalf("replayed %d records, want %d", replayed, want)
	}
	replayAlerts := quiesceAlerts(t, svcC)
	// The alerts the crashed daemon raised after its checkpoint are
	// re-raised identically on replay: restart re-alerts, no gap.
	if want := crashAlerts[len(prefixAlerts):]; !reflect.DeepEqual(replayAlerts, want) {
		t.Fatalf("replay re-alerts diverge:\ngot  %v\nwant %v", replayAlerts, want)
	}
	if len(replayAlerts) == 0 {
		t.Fatal("no alerts re-raised across the restart window — property not exercised")
	}

	feed(t, svcC, recs[p2:])
	repC, err := svcC.Drain()
	if err != nil {
		t.Fatalf("drain C: %v", err)
	}

	got := append(append([]classify.Alert(nil), prefixAlerts...), svcC.Alerts()...)
	if !reflect.DeepEqual(got, alertsA) {
		t.Fatalf("alert series diverges: got %d, want %d", len(got), len(alertsA))
	}
	if repC.Monitor != repA.Monitor {
		t.Fatalf("monitor accounting diverges:\ngot  %+v\nwant %+v", repC.Monitor, repA.Monitor)
	}
	// Zero double counting: every record classified exactly once.
	if repC.Monitor.Records != uint64(len(recs)) {
		t.Fatalf("monitor saw %d records, want %d", repC.Monitor.Records, len(recs))
	}
	// The final checkpoints — bins, markers, clock, counters, config,
	// pipeline position, durability watermark — are byte-identical.
	if !bytes.Equal(readCheckpoint(t, dirA), readCheckpoint(t, dirB)) {
		t.Fatal("final checkpoints differ between restarted and uninterrupted runs")
	}
}

// TestCheckpointCrashAtEveryWriteOffset kills the snapshot writer at
// every fault-injection offset (crashed-process shape: once an op
// fails, all later ops fail). Whatever the offset, the previous
// snapshot must be adopted on restart, the archive replayed from its
// watermark, and no record double counted.
func TestCheckpointCrashAtEveryWriteOffset(t *testing.T) {
	recs := genStream(2, 12_000)
	p1, p2 := len(recs)/3, 2*len(recs)/3

	// Reference run, same schedule, no faults.
	dirR, storeR := t.TempDir(), t.TempDir()
	svcR := openService(t, dirR, storeR, testCfg, Options{})
	feed(t, svcR, recs[:p1])
	mustCheckpoint(t, svcR)
	feed(t, svcR, recs[p1:p2])
	if err := svcR.opts.Store.Seal(); err != nil {
		t.Fatal(err)
	}
	probe := chaos.NewFailpoint() // counts ops, never fires
	svcR.opts.WriteFault = probe
	mustCheckpoint(t, svcR)
	svcR.opts.WriteFault = nil
	ops := int(probe.Ops())
	if ops < 5 {
		t.Fatalf("checkpoint is only %d fault-visible ops — hook broken?", ops)
	}
	prefixAlertsR := quiesceAlerts(t, svcR)
	_ = prefixAlertsR
	feed(t, svcR, recs[p2:])
	repR, err := svcR.Drain()
	if err != nil {
		t.Fatal(err)
	}
	refAlerts := svcR.Alerts()
	refFinal := readCheckpoint(t, dirR)

	for off := 0; off < ops; off++ {
		dir, storeDir := t.TempDir(), t.TempDir()
		svc := openService(t, dir, storeDir, testCfg, Options{})
		feed(t, svc, recs[:p1])
		mustCheckpoint(t, svc)
		published := readCheckpoint(t, dir)
		prefixAlerts := quiesceAlerts(t, svc)
		feed(t, svc, recs[p1:p2])
		if err := svc.opts.Store.Seal(); err != nil {
			t.Fatal(err)
		}
		svc.opts.WriteFault = chaos.FailFrom(uint64(off))
		if _, err := svc.Checkpoint(); err == nil {
			t.Fatalf("offset %d: checkpoint survived its injected crash", off)
		}
		// The simulated kill: svc is abandoned. The published file must
		// be the previous snapshot, with no torn temp file left behind.
		if got := readCheckpoint(t, dir); !bytes.Equal(got, published) {
			t.Fatalf("offset %d: published checkpoint perturbed", off)
		}
		if _, err := os.Stat(filepath.Join(dir, "checkpoint.tmp")); !os.IsNotExist(err) {
			t.Fatalf("offset %d: stale checkpoint.tmp left behind (err=%v)", off, err)
		}

		svc2 := openService(t, dir, storeDir, testCfg, Options{})
		rr := svc2.Restore()
		if !rr.Restored || rr.Corrupt {
			t.Fatalf("offset %d: restore report = %+v", off, rr)
		}
		replayed, err := svc2.ReplayFromStore()
		if err != nil {
			t.Fatalf("offset %d: replay: %v", off, err)
		}
		if want := uint64(p2 - p1); replayed != want {
			t.Fatalf("offset %d: replayed %d, want %d", off, replayed, want)
		}
		feed(t, svc2, recs[p2:])
		rep, err := svc2.Drain()
		if err != nil {
			t.Fatalf("offset %d: drain: %v", off, err)
		}
		if rep.Monitor != repR.Monitor {
			t.Fatalf("offset %d: accounting diverges:\ngot  %+v\nwant %+v", off, rep.Monitor, repR.Monitor)
		}
		if rep.Monitor.Records != uint64(len(recs)) {
			t.Fatalf("offset %d: %d records classified, want %d (double counting)", off, rep.Monitor.Records, len(recs))
		}
		got := append(append([]classify.Alert(nil), prefixAlerts...), svc2.Alerts()...)
		if !reflect.DeepEqual(got, refAlerts) {
			t.Fatalf("offset %d: alert series diverges (%d vs %d alerts)", off, len(got), len(refAlerts))
		}
		if !bytes.Equal(readCheckpoint(t, dir), refFinal) {
			t.Fatalf("offset %d: final checkpoint differs from reference", off)
		}
	}
}

// TestCorruptCheckpointFallsBackToColdStartWithReplay pins the
// torn-file stance: a damaged checkpoint is detected, counted, and the
// daemon rebuilds the whole state from the archive.
func TestCorruptCheckpointFallsBackToColdStartWithReplay(t *testing.T) {
	recs := genStream(3, 8_000)
	dir, storeDir := t.TempDir(), t.TempDir()
	svc := openService(t, dir, storeDir, testCfg, Options{})
	feed(t, svc, recs)
	mustCheckpoint(t, svc)
	if err := svc.opts.Store.Seal(); err != nil {
		t.Fatal(err)
	}
	refStats := svc.MonitorStats()
	// Abandon svc; tear the checkpoint's tail.
	b := readCheckpoint(t, dir)
	if err := os.WriteFile(CheckpointPath(dir), b[:len(b)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	svc2 := openService(t, dir, storeDir, testCfg, Options{})
	rr := svc2.Restore()
	if rr.Restored || !rr.Corrupt {
		t.Fatalf("restore report = %+v, want corrupt cold start", rr)
	}
	if svc2.Stats().Checkpoints != 0 || svc2.Stats().Restores != 0 {
		t.Fatalf("stats = %+v", svc2.Stats())
	}
	replayed, err := svc2.ReplayFromStore()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if replayed != uint64(len(recs)) {
		t.Fatalf("cold start replayed %d, want all %d", replayed, len(recs))
	}
	rep, err := svc2.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Monitor != refStats {
		t.Fatalf("rebuilt accounting = %+v, want %+v", rep.Monitor, refStats)
	}
}
