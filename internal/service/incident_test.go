package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"testing"
	"time"

	"booterscope/internal/telemetry"
	"booterscope/internal/telemetry/debugserver"
	"booterscope/internal/telemetry/eventlog"
)

// TestIncidentDumpReconstructsLifecycle is the acceptance path end to
// end: a synthetic attack stream raises alerts and a FlowSpec rule,
// suppression is observed, a forced SLO burn breach triggers an
// incident dump, and the timeline reconstructed offline from the dump
// matches the live /attacks/{id} view exactly — same detection
// latency, same time to mitigate.
func TestIncidentDumpReconstructsLifecycle(t *testing.T) {
	ring := eventlog.New(1 << 14)
	incDir := t.TempDir()
	reg := telemetry.NewRegistry()
	svc := openService(t, t.TempDir(), "", testCfg, Options{
		Registry:    reg,
		Events:      ring,
		IncidentDir: incDir,
		Mitigation:  MitigationOptions{Enabled: true, SustainAlerts: 1},
	})

	recs := genStream(9, 6_000)
	feed(t, svc, recs[:4_000])
	if alerts := quiesceAlerts(t, svc); len(alerts) == 0 {
		t.Fatal("attack stream raised no alerts")
	}
	if len(svc.ActiveRules()) == 0 {
		t.Fatal("no FlowSpec rules announced")
	}
	// More attack traffic while rules are active: suppression events.
	feed(t, svc, recs[4_000:])
	quiesceAlerts(t, svc) // barrier: all shard-side events are in the ring

	// Force the burn breach: every detection over the 250ms target.
	for i := 0; i < 50; i++ {
		svc.detect.ObserveDuration(time.Second)
	}
	svc.Evaluate()

	d, err := eventlog.LoadDump(eventlog.DumpPath(incDir, "slo_burn"))
	if err != nil {
		t.Fatalf("loading slo_burn dump: %v", err)
	}
	if d.Reason != "slo_burn" {
		t.Fatalf("dump reason = %q", d.Reason)
	}

	// The dump must contain the breach event and a full lifecycle.
	tls := eventlog.BuildTimelines(d.Events)
	if len(tls) == 0 {
		t.Fatal("dump reconstructs no attack timelines")
	}
	var id uint64
	for _, tl := range tls {
		if tl.AnnouncedMonoNanos != 0 && tl.SuppressedRecords > 0 {
			id = tl.AttackID
			break
		}
	}
	if id == 0 {
		t.Fatal("no timeline with both a FlowSpec announcement and observed suppression")
	}
	dumped := eventlog.TimelineFor(d.Events, id)
	if dumped.OpenedMonoNanos == 0 || dumped.AlertMonoNanos == 0 {
		t.Fatalf("timeline missing open/alert transitions: %+v", dumped)
	}
	wantDL := float64(dumped.AlertMonoNanos-dumped.OpenedMonoNanos) / 1e9
	if dumped.DetectionLatencySeconds != wantDL {
		t.Fatalf("detection latency = %v, want %v", dumped.DetectionLatencySeconds, wantDL)
	}
	wantTTM := float64(dumped.AnnouncedMonoNanos-dumped.AlertMonoNanos) / 1e9
	if dumped.TimeToMitigateSeconds != wantTTM {
		t.Fatalf("time to mitigate = %v, want %v", dumped.TimeToMitigateSeconds, wantTTM)
	}
	if dumped.SuppressionRatio <= 0 || dumped.SuppressionRatio >= 1 {
		t.Fatalf("suppression ratio = %v, want in (0,1)", dumped.SuppressionRatio)
	}

	// The live debug surface over the same ring must agree exactly.
	srv := httptest.NewServer(debugserver.HandlerWith(reg, nil, ring))
	defer srv.Close()
	resp, err := http.Get(fmt.Sprintf("%s/attacks/%d", srv.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /attacks/%d = %d", id, resp.StatusCode)
	}
	var live eventlog.Timeline
	if err := json.NewDecoder(resp.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(live, *dumped) {
		t.Fatalf("live /attacks/%d differs from dump reconstruction:\nlive: %+v\ndump: %+v", id, live, *dumped)
	}

	// /attacks lists the same attack; /events serves the ring.
	for _, ep := range []string{"/attacks", "/events"} {
		r2, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", ep, r2.StatusCode)
		}
		r2.Body.Close()
	}

	// Drain fires its own dump, carrying the withdrawals — the complete
	// lifecycle for post-mortem reading.
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	dd, err := eventlog.LoadDump(eventlog.DumpPath(incDir, "drain"))
	if err != nil {
		t.Fatalf("loading drain dump: %v", err)
	}
	final := eventlog.TimelineFor(dd.Events, id)
	if final == nil || final.WithdrawnMonoNanos == 0 {
		t.Fatalf("drain dump timeline missing withdrawal: %+v", final)
	}
}

// TestCheckpointFailureDumpsIncident pins the checkpoint-failure
// trigger: a checkpoint directory that stops being writable fails the
// save, emits the event, and dumps the ring.
func TestCheckpointFailureDumpsIncident(t *testing.T) {
	ring := eventlog.New(256)
	incDir := t.TempDir()
	ckptDir := t.TempDir()
	svc := openService(t, ckptDir, "", testCfg, Options{
		Events:      ring,
		IncidentDir: incDir,
	})
	defer func() { _, _ = svc.Drain() }()
	feed(t, svc, genStream(3, 500))

	// Make the checkpoint dir unwritable; root (CI containers) ignores
	// mode bits, so fall back to replacing it with a file.
	if err := os.Chmod(ckptDir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = os.Chmod(ckptDir, 0o755) }()
	if _, err := svc.Checkpoint(); err == nil {
		_ = os.Chmod(ckptDir, 0o755)
		if err := os.RemoveAll(ckptDir); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(ckptDir, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Checkpoint(); err == nil {
			t.Skip("cannot make checkpoint fail in this environment")
		}
	}

	d, err := eventlog.LoadDump(eventlog.DumpPath(incDir, "checkpoint_failure"))
	if err != nil {
		t.Fatalf("no checkpoint_failure dump: %v", err)
	}
	found := false
	for i := range d.Events {
		if d.Events[i].Kind == "service_checkpoint_failed" {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("dump does not record the checkpoint failure event")
	}
}
