package service

import (
	"bytes"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"

	"booterscope/internal/bgp"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/telemetry/eventlog"
)

// MitigationOptions closes the detect→mitigate loop: on sustained
// detection the daemon emits a bgp FlowSpec discard rule scoped to the
// attack traffic (UDP from the NTP port, amplified packet sizes,
// toward the victim /32) and withdraws every active rule on drain —
// the paper's handover/mitigation analysis as a running control loop.
type MitigationOptions struct {
	// Enabled turns the loop on; off, alerts only log.
	Enabled bool
	// SustainAlerts is how many alerts a victim must accumulate before
	// a rule is announced (0 selects 2: one alert is detection, a
	// re-alert is sustained attack).
	SustainAlerts int
	// MinPacketLen is the rule's packet-length floor (0 selects the
	// classifier's optimistic size threshold).
	MinPacketLen int
	// Announce and Withdraw, when set, receive each rule as it changes
	// state (the collector binary logs them; a deployment would speak
	// BGP). Called with the mitigator's lock held — keep them fast.
	Announce func(bgp.FlowSpecRule)
	Withdraw func(bgp.FlowSpecRule)
}

func (o MitigationOptions) withDefaults() MitigationOptions {
	if o.SustainAlerts <= 0 {
		o.SustainAlerts = 2
	}
	if o.MinPacketLen <= 0 {
		o.MinPacketLen = int(classify.OptimisticSizeThreshold)
	}
	return o
}

// suppressedTotals is one victim's cumulative traffic observed while
// its rule was active — the volume a deployed filter would have
// discarded upstream.
type suppressedTotals struct {
	records uint64
	bytes   uint64
}

// Mitigator tracks per-victim alert counts and the active FlowSpec
// rules. Alerts arrive concurrently from shard workers.
type Mitigator struct {
	mu   sync.Mutex
	opts MitigationOptions
	//bsvet:guards mu
	counts map[netip.Addr]int
	//bsvet:guards mu
	rules map[netip.Addr]bgp.FlowSpecRule
	// ids joins each victim to its attack's lifecycle ID so announce,
	// suppression, and withdraw events link into the same timeline the
	// classifier opened.
	//bsvet:guards mu
	ids map[netip.Addr]uint64
	//bsvet:guards mu
	suppressed map[netip.Addr]*suppressedTotals
	// active mirrors len(rules) so the ingest hot path can skip
	// suppression accounting without taking the lock.
	active atomic.Int32
	m      *metrics
	events func() *eventlog.Log
}

func newMitigator(opts MitigationOptions, m *metrics, events func() *eventlog.Log) *Mitigator {
	return &Mitigator{
		opts:       opts.withDefaults(),
		counts:     make(map[netip.Addr]int),
		rules:      make(map[netip.Addr]bgp.FlowSpecRule),
		ids:        make(map[netip.Addr]uint64),
		suppressed: make(map[netip.Addr]*suppressedTotals),
		m:          m,
		events:     events,
	}
}

// OnAlert feeds one detection into the loop, announcing a rule once
// the victim's alert count reaches SustainAlerts.
func (mt *Mitigator) OnAlert(a classify.Alert) {
	if !mt.opts.Enabled {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	v := a.Victim.Unmap()
	if a.ID != 0 {
		mt.ids[v] = a.ID
	}
	mt.counts[v]++
	if mt.counts[v] < mt.opts.SustainAlerts {
		return
	}
	if _, active := mt.rules[v]; active {
		return
	}
	if !v.Is4() {
		// FlowSpec NLRI encoding here covers IPv4 only; skipping is
		// accounted, never silent.
		mt.m.mitigationSkipped.Inc()
		return
	}
	rule := bgp.FlowSpecRule{
		Dst:          netip.PrefixFrom(v, 32),
		Protocol:     17, // UDP
		SrcPort:      classify.NTPPort,
		MinPacketLen: mt.opts.MinPacketLen,
	}
	if _, err := rule.Encode(); err != nil {
		mt.m.mitigationSkipped.Inc()
		return
	}
	mt.rules[v] = rule
	mt.active.Add(1)
	mt.m.mitigationAnnounced.Inc()
	mt.m.mitigationActive.Add(1)
	mt.events().Emit("service", "service_flowspec_announced", mt.ids[v],
		eventlog.A("victim", v.String()),
		eventlog.AInt("min_packet_len", int64(rule.MinPacketLen)))
	if mt.opts.Announce != nil {
		mt.opts.Announce(rule)
	}
}

// observeSuppressed accounts batch traffic matching an active rule as
// suppressed attack volume and emits one cumulative suppression event
// per touched victim. Called on the ingest path; with no active rules
// it costs a single atomic load.
func (mt *Mitigator) observeSuppressed(recs []flow.Record) {
	if mt.active.Load() == 0 {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	var touched []netip.Addr
	for i := range recs {
		r := &recs[i]
		v := r.Dst.Unmap()
		rule, ok := mt.rules[v]
		if !ok {
			continue
		}
		if uint8(r.Protocol) != rule.Protocol || r.SrcPort != rule.SrcPort ||
			r.AvgPacketSize() < float64(rule.MinPacketLen) {
			continue
		}
		t := mt.suppressed[v]
		if t == nil {
			t = &suppressedTotals{}
			mt.suppressed[v] = t
		}
		if !containsAddr(touched, v) {
			touched = append(touched, v)
		}
		t.records++
		t.bytes += r.ScaledBytes()
		mt.m.suppressedRecords.Inc()
		mt.m.suppressedBytes.Add(r.ScaledBytes())
	}
	sort.Slice(touched, func(i, j int) bool {
		a, b := touched[i].As16(), touched[j].As16()
		return bytes.Compare(a[:], b[:]) < 0
	})
	for _, v := range touched {
		t := mt.suppressed[v]
		// Cumulative totals: timeline reconstruction takes the latest
		// suppression event per attack, so ring overwrites lose nothing.
		mt.events().Emit("service", "service_suppression_observed", mt.ids[v],
			eventlog.A("victim", v.String()),
			eventlog.AUint("records", t.records),
			eventlog.AUint("bytes", t.bytes))
	}
}

func containsAddr(addrs []netip.Addr, v netip.Addr) bool {
	for _, a := range addrs {
		if a == v {
			return true
		}
	}
	return false
}

// sortedVictimsLocked returns the active-rule victims in byte order, so
// withdrawal and listing never leak map iteration order into output.
func (mt *Mitigator) sortedVictimsLocked() []netip.Addr {
	out := make([]netip.Addr, 0, len(mt.rules))
	for v := range mt.rules {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].As16(), out[j].As16()
		return bytes.Compare(a[:], b[:]) < 0
	})
	return out
}

// ActiveRules lists the announced rules in deterministic victim order.
func (mt *Mitigator) ActiveRules() []bgp.FlowSpecRule {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	victims := mt.sortedVictimsLocked()
	out := make([]bgp.FlowSpecRule, 0, len(victims))
	for _, v := range victims {
		out = append(out, mt.rules[v])
	}
	return out
}

// WithdrawAll retracts every active rule (the drain path) and returns
// the withdrawn rules in deterministic victim order.
func (mt *Mitigator) WithdrawAll() []bgp.FlowSpecRule {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	victims := mt.sortedVictimsLocked()
	out := make([]bgp.FlowSpecRule, 0, len(victims))
	for _, v := range victims {
		rule := mt.rules[v]
		delete(mt.rules, v)
		mt.active.Add(-1)
		mt.m.mitigationWithdrawn.Inc()
		mt.m.mitigationActive.Add(-1)
		mt.events().Emit("service", "service_flowspec_withdrawn", mt.ids[v],
			eventlog.A("victim", v.String()))
		delete(mt.suppressed, v)
		if mt.opts.Withdraw != nil {
			mt.opts.Withdraw(rule)
		}
		out = append(out, rule)
	}
	return out
}
