package service

import (
	"bytes"
	"net/netip"
	"sort"
	"sync"

	"booterscope/internal/bgp"
	"booterscope/internal/classify"
)

// MitigationOptions closes the detect→mitigate loop: on sustained
// detection the daemon emits a bgp FlowSpec discard rule scoped to the
// attack traffic (UDP from the NTP port, amplified packet sizes,
// toward the victim /32) and withdraws every active rule on drain —
// the paper's handover/mitigation analysis as a running control loop.
type MitigationOptions struct {
	// Enabled turns the loop on; off, alerts only log.
	Enabled bool
	// SustainAlerts is how many alerts a victim must accumulate before
	// a rule is announced (0 selects 2: one alert is detection, a
	// re-alert is sustained attack).
	SustainAlerts int
	// MinPacketLen is the rule's packet-length floor (0 selects the
	// classifier's optimistic size threshold).
	MinPacketLen int
	// Announce and Withdraw, when set, receive each rule as it changes
	// state (the collector binary logs them; a deployment would speak
	// BGP). Called with the mitigator's lock held — keep them fast.
	Announce func(bgp.FlowSpecRule)
	Withdraw func(bgp.FlowSpecRule)
}

func (o MitigationOptions) withDefaults() MitigationOptions {
	if o.SustainAlerts <= 0 {
		o.SustainAlerts = 2
	}
	if o.MinPacketLen <= 0 {
		o.MinPacketLen = int(classify.OptimisticSizeThreshold)
	}
	return o
}

// Mitigator tracks per-victim alert counts and the active FlowSpec
// rules. Alerts arrive concurrently from shard workers.
type Mitigator struct {
	mu     sync.Mutex
	opts   MitigationOptions
	counts map[netip.Addr]int
	rules  map[netip.Addr]bgp.FlowSpecRule
	m      *metrics
}

func newMitigator(opts MitigationOptions, m *metrics) *Mitigator {
	return &Mitigator{
		opts:   opts.withDefaults(),
		counts: make(map[netip.Addr]int),
		rules:  make(map[netip.Addr]bgp.FlowSpecRule),
		m:      m,
	}
}

// OnAlert feeds one detection into the loop, announcing a rule once
// the victim's alert count reaches SustainAlerts.
func (mt *Mitigator) OnAlert(a classify.Alert) {
	if !mt.opts.Enabled {
		return
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	v := a.Victim.Unmap()
	mt.counts[v]++
	if mt.counts[v] < mt.opts.SustainAlerts {
		return
	}
	if _, active := mt.rules[v]; active {
		return
	}
	if !v.Is4() {
		// FlowSpec NLRI encoding here covers IPv4 only; skipping is
		// accounted, never silent.
		mt.m.mitigationSkipped.Inc()
		return
	}
	rule := bgp.FlowSpecRule{
		Dst:          netip.PrefixFrom(v, 32),
		Protocol:     17, // UDP
		SrcPort:      classify.NTPPort,
		MinPacketLen: mt.opts.MinPacketLen,
	}
	if _, err := rule.Encode(); err != nil {
		mt.m.mitigationSkipped.Inc()
		return
	}
	mt.rules[v] = rule
	mt.m.mitigationAnnounced.Inc()
	mt.m.mitigationActive.Add(1)
	if mt.opts.Announce != nil {
		mt.opts.Announce(rule)
	}
}

// sortedVictims returns the active-rule victims in byte order, so
// withdrawal and listing never leak map iteration order into output.
func (mt *Mitigator) sortedVictims() []netip.Addr {
	out := make([]netip.Addr, 0, len(mt.rules))
	for v := range mt.rules {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].As16(), out[j].As16()
		return bytes.Compare(a[:], b[:]) < 0
	})
	return out
}

// ActiveRules lists the announced rules in deterministic victim order.
func (mt *Mitigator) ActiveRules() []bgp.FlowSpecRule {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	victims := mt.sortedVictims()
	out := make([]bgp.FlowSpecRule, 0, len(victims))
	for _, v := range victims {
		out = append(out, mt.rules[v])
	}
	return out
}

// WithdrawAll retracts every active rule (the drain path) and returns
// the withdrawn rules in deterministic victim order.
func (mt *Mitigator) WithdrawAll() []bgp.FlowSpecRule {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	victims := mt.sortedVictims()
	out := make([]bgp.FlowSpecRule, 0, len(victims))
	for _, v := range victims {
		rule := mt.rules[v]
		delete(mt.rules, v)
		mt.m.mitigationWithdrawn.Inc()
		mt.m.mitigationActive.Add(-1)
		if mt.opts.Withdraw != nil {
			mt.opts.Withdraw(rule)
		}
		out = append(out, rule)
	}
	return out
}
