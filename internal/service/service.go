// Package service turns the collector→classify pipeline into an
// always-on detection daemon: periodic atomic checkpoints of the
// streaming monitor's state, graceful drain (SIGTERM) and threshold
// reload (SIGHUP) through the fan-out's stop-the-world barrier, a
// detection-latency SLO with a load-shedding ladder for overload, and
// a detect→mitigate loop emitting BGP FlowSpec rules on sustained
// attacks. A daemon restarted mid-attack restores the victim table
// from its last checkpoint and replays the flow archive past the
// checkpoint's durability watermark, so the minute-bin series — and
// therefore alerting — has no gap and no double counting.
package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"booterscope/internal/bgp"
	"booterscope/internal/chaos"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/flowstore"
	"booterscope/internal/pipe"
	"booterscope/internal/telemetry"
	"booterscope/internal/telemetry/eventlog"
)

// ErrDraining is returned for records arriving after Drain began; the
// refusal is counted in service_drain_refused_records_total.
var ErrDraining = errors.New("service: draining")

// Options configures the daemon.
type Options struct {
	// Classify is the detector's thresholds (reloadable via Reload).
	Classify classify.Config
	// Parallelism is the monitor shard count (pipe.Parallelism rules:
	// < 1 selects NumCPU).
	Parallelism int
	// CheckpointDir, when set, enables checkpoint/restore: New loads
	// the latest checkpoint from it, and Checkpoint/Drain publish
	// snapshots into it atomically.
	CheckpointDir string
	// Store, when set, is the flow archive: accepted records are
	// appended before classification (shed at ShedArchive), and a
	// restart replays it past the checkpoint's durability watermark.
	// The store is borrowed — the caller opens and closes it.
	Store *flowstore.Store
	// WriteFault, when set, injects faults into checkpoint writes (the
	// chaos suite's crash-mid-snapshot hook). Nil means no injection.
	WriteFault *chaos.Failpoint
	// OnAlert, when set, receives every alert (concurrently, from
	// shard workers — same contract as ShardedMonitor.OnAlert).
	OnAlert func(classify.Alert)
	// Mitigation configures the detect→mitigate FlowSpec loop.
	Mitigation MitigationOptions
	// SLO configures the detection-latency objective and shed ladder.
	SLO SLOOptions
	// QueueDepth, when set, probes the ingest queue (depth, capacity)
	// at each SLO evaluation — the collector's socket queue.
	QueueDepth func() (depth, capacity int)
	// Registry receives the service_* metrics (nil selects a private
	// registry). The detection-latency histogram lives here too.
	Registry *telemetry.Registry
	// Events, when set, is the flight recorder the daemon (and its
	// monitor shards) emits lifecycle events into; nil falls back to
	// the process-wide recorder (eventlog.Active), which may be nil —
	// recording disabled.
	Events *eventlog.Log
	// IncidentDir, when set, enables incident dumps: on an SLO
	// burn-rate breach, a shed-ladder escalation, a checkpoint
	// failure, or drain, the flight recorder's ring is written there
	// atomically (CRC-framed, rename-committed — the checkpoint
	// pattern) for post-hoc timeline reconstruction.
	IncidentDir string
}

// RestoreReport describes what New found in the checkpoint directory
// and what ReplayFromStore then reprocessed.
type RestoreReport struct {
	// Restored reports monitor state loaded from a checkpoint.
	Restored bool
	// Corrupt reports a checkpoint present but failing validation —
	// the daemon cold-started (replaying the archive from record zero
	// if one is configured).
	Corrupt bool
	// Watermark and Seq are the restored pipeline position.
	Watermark int64
	Seq       uint64
	// StoreDurable is the archive record count the checkpoint covers;
	// ReplayFromStore skips exactly this many records.
	StoreDurable uint64
	// Replayed counts archive records reprocessed by ReplayFromStore.
	Replayed uint64
}

// DrainReport is the final accounting a graceful shutdown returns.
type DrainReport struct {
	// Checkpointed reports a final checkpoint published.
	Checkpointed bool
	// Withdrawn lists the FlowSpec rules retracted on the way down.
	Withdrawn []bgp.FlowSpecRule
	// Service and Monitor are the closing accounting snapshots.
	Service ServiceStats
	Monitor classify.MonitorStats
}

// HealthReport condenses the daemon's state into an operational
// verdict for /healthz-style probes.
type HealthReport struct {
	Monitor  classify.MonitorHealth
	Shed     ShedLevel
	Draining bool
	// ActiveRules counts announced FlowSpec mitigations.
	ActiveRules int
}

// Service is the always-on detection daemon. All ingest-path entry
// points (Ingest, Checkpoint, Reload, Drain, ReplayFromStore) are
// serialized on one mutex — the fan-out's Barrier/Process contract
// requires it — so they may be called from any goroutine.
type Service struct {
	opts    Options
	reg     *telemetry.Registry
	m       *metrics
	monitor *classify.ShardedMonitor
	fan     *pipe.FanOut
	mit     *Mitigator
	shed    *shedder
	burn    *burnEvaluator
	tracer  *telemetry.Tracer
	detect  *telemetry.Histogram

	mu sync.Mutex
	//bsvet:guards mu
	restore RestoreReport
	//bsvet:guards mu
	draining bool
	//bsvet:guards mu
	drainRep *DrainReport
	//bsvet:guards mu
	drainErr error
	//bsvet:guards mu
	sampleTick uint64
}

// New builds the daemon and, when a checkpoint directory is
// configured, restores the monitor and pipeline position from the
// latest checkpoint. A corrupt checkpoint is not fatal: it is counted
// (service_restore_corrupt_total), reported in Restore(), and the
// daemon cold-starts — call ReplayFromStore to rebuild state from the
// flow archive in either case.
func New(opts Options) (*Service, error) {
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Service{opts: opts, reg: reg, m: newMetrics()}
	s.monitor = classify.NewShardedMonitor(opts.Classify, pipe.Parallelism(opts.Parallelism))
	s.monitor.SetEvents(opts.Events)
	s.mit = newMitigator(opts.Mitigation, s.m, s.eventsLog)
	s.monitor.OnAlert = func(a classify.Alert) {
		s.mit.OnAlert(a)
		if opts.OnAlert != nil {
			opts.OnAlert(a)
		}
	}
	s.shed = newShedder(opts.SLO, s.m)
	s.burn = newBurnEvaluator(opts.SLO)
	if opts.CheckpointDir != "" {
		cp, err := LoadCheckpoint(opts.CheckpointDir)
		switch {
		case errors.Is(err, ErrCheckpointCorrupt):
			s.m.restoreCorrupt.Inc()
			s.restore.Corrupt = true
		case err != nil:
			return nil, err
		case cp != nil:
			s.monitor.SetConfig(cp.Config)
			s.monitor.Restore(cp.Monitor)
			s.restore = RestoreReport{
				Restored:     true,
				Watermark:    cp.Watermark,
				Seq:          cp.Seq,
				StoreDurable: cp.StoreDurable,
			}
			s.m.restores.Inc()
		}
	}
	// The fan-out is built after a possible SetConfig so its watermark
	// filter reads the restored thresholds from the first record on.
	s.fan = s.monitor.FanOut()
	if s.restore.Restored {
		s.fan.Resume(s.restore.Watermark, s.restore.Seq)
	}
	s.tracer = reg.Tracer()
	// Pre-create the span histogram so Evaluate can read it before the
	// first ingest; Span.End resolves to this same object by name.
	s.detect = reg.Histogram("pipeline_stage_service_detect_seconds",
		"duration of pipeline stage service_detect")
	s.RegisterTelemetry(reg)
	return s, nil
}

// eventsLog resolves the flight recorder the daemon emits into: the
// configured one, else the process-wide recorder (possibly nil —
// Emit and DumpTo are nil-safe).
func (s *Service) eventsLog() *eventlog.Log {
	if s.opts.Events != nil {
		return s.opts.Events
	}
	return eventlog.Active()
}

// dumpIncident writes the flight recorder's ring into the incident
// directory (no-op without one). Dump failures are counted by the
// recorder (eventlog_dump_failures_total) and never interrupt the
// trigger path — an incident dump must not make the incident worse.
func (s *Service) dumpIncident(reason string) {
	if s.opts.IncidentDir == "" {
		return
	}
	_, _, _ = s.eventsLog().DumpTo(s.opts.IncidentDir, reason, nil)
}

// Restore reports what New found in the checkpoint directory.
func (s *Service) Restore() RestoreReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restore
}

// Config returns the active classification thresholds.
func (s *Service) Config() classify.Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.monitor.Config()
}

// Ingest feeds one decoded batch into the detection path: archive
// append (unless shed), then classification through the fan-out. The
// whole call runs under the service_detect span, so its histogram is
// the flow-arrival→detection-handoff latency the SLO evaluates —
// including shard-queue backpressure, which is where overload shows
// up first.
func (s *Service) Ingest(recs []flow.Record) error {
	sp := s.tracer.Start("service_detect")
	err := s.ingest(recs)
	sp.End(err)
	return err
}

func (s *Service) ingest(recs []flow.Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.m.refused.Add(uint64(len(recs)))
		return ErrDraining
	}
	lvl := s.shed.current()
	kept := recs
	if lvl >= ShedSample {
		// 1-in-N systematic sampling with the sampling rate scaled by
		// N: rate estimates stay unbiased, per-record cost drops
		// N-fold. Source counts thin — a declared degradation.
		n := uint64(s.shed.opts.SampleN)
		kept = make([]flow.Record, 0, len(recs)/int(n)+1)
		for i := range recs {
			s.sampleTick++
			if s.sampleTick%n != 0 {
				continue
			}
			r := recs[i]
			if r.SamplingRate < 1 {
				r.SamplingRate = 1
			}
			r.SamplingRate *= uint32(n)
			kept = append(kept, r)
		}
		s.m.sampledOut.Add(uint64(len(recs) - len(kept)))
	}
	if len(kept) == 0 {
		return nil
	}
	if s.opts.Store != nil {
		if lvl >= ShedArchive {
			s.m.archiveShed.Add(uint64(len(kept)))
		} else if err := s.opts.Store.Append(kept); err != nil {
			return fmt.Errorf("service: archiving: %w", err)
		}
	}
	s.m.records.Add(uint64(len(kept)))
	// Traffic still arriving for victims under an announced rule is
	// the attack volume a deployed FlowSpec filter would have dropped
	// upstream — record it as observed suppression for the paper-style
	// suppression ratio. No-op (one atomic load) with no active rules.
	s.mit.observeSuppressed(kept)
	b := pipe.Batch{Recs: kept}
	return s.fan.Process(&b)
}

// Checkpoint quiesces the pipeline and atomically publishes a
// snapshot: the archive is sealed (making its durable count the exact
// replay skip point), every shard is advanced to the global watermark
// (so the snapshot is shard-count independent), and the monitor state
// plus pipeline position go to disk via write-temp/fsync/rename. A
// failed attempt leaves the previous checkpoint intact and is counted
// in service_checkpoint_failures_total. Returns the snapshot size.
func (s *Service) Checkpoint() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpointLocked()
}

func (s *Service) checkpointLocked() (int64, error) {
	if s.opts.CheckpointDir == "" {
		return 0, errors.New("service: no checkpoint directory configured")
	}
	var size int64
	err := s.fan.Barrier(func() error {
		var durable uint64
		if st := s.opts.Store; st != nil {
			if err := st.Seal(); err != nil {
				return fmt.Errorf("service: sealing archive: %w", err)
			}
			// Count durable records from the manifest, not the store's
			// per-instance counter: the manifest survives restarts, and
			// after Seal it covers exactly the records a Scan returns —
			// so the same stream yields the same watermark whether or
			// not the daemon was restarted along the way.
			for _, e := range st.Segments() {
				durable += e.Records
			}
		}
		s.monitor.AdvanceAll(s.fan.Watermark())
		cp := &Checkpoint{
			Watermark:    s.fan.Watermark(),
			Seq:          s.fan.Seq(),
			StoreDurable: durable,
			Config:       s.monitor.Config(),
			Monitor:      s.monitor.Snapshot(),
		}
		n, err := SaveCheckpoint(s.opts.CheckpointDir, cp, s.opts.WriteFault)
		if err != nil {
			return err
		}
		size = n
		return nil
	})
	if err != nil {
		s.m.checkpointFailures.Inc()
		s.eventsLog().Emit("service", "service_checkpoint_failed", 0,
			eventlog.A("error", err.Error()))
		s.dumpIncident("checkpoint_failure")
		return 0, err
	}
	s.m.checkpoints.Inc()
	s.m.checkpointBytes.Set(float64(size))
	s.eventsLog().Emit("service", "service_checkpoint_saved", 0,
		eventlog.AInt("bytes", size))
	return size, nil
}

// Reload swaps the classification thresholds under the fan-out
// barrier — the SIGHUP path. In-flight state (victim table, markers,
// clocks) is kept; only the thresholds and the fan-out's watermark
// filter change. Sockets are untouched: reload happens entirely
// inside the running process.
func (s *Service) Reload(cfg classify.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	err := s.fan.Barrier(func() error {
		s.monitor.SetConfig(cfg)
		return nil
	})
	if err == nil {
		s.m.reloads.Inc()
	}
	return err
}

// ReplayFromStore rebuilds monitor state from the flow archive after a
// restart: the first Restore().StoreDurable records (already reflected
// in the restored snapshot) are skipped, everything after is fed back
// through the pipeline. With the resumed watermark and sequence the
// replayed records are stamped exactly as the crashed process stamped
// them, so no record is double counted. The skip is exact because the
// archive is sealed at every checkpoint and scans are time-ordered —
// which assumes, as the store's partitioning does, broadly monotone
// record timestamps.
func (s *Service) ReplayFromStore() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.Store == nil {
		return 0, nil
	}
	if s.draining {
		return 0, ErrDraining
	}
	skip := s.restore.StoreDurable
	var seen, replayed uint64
	recs := make([]flow.Record, 0, pipe.DefaultBatchSize)
	flush := func() error {
		if len(recs) == 0 {
			return nil
		}
		b := pipe.Batch{Recs: recs}
		err := s.fan.Process(&b)
		recs = recs[:0]
		return err
	}
	_, err := s.opts.Store.Scan(flowstore.Query{}, func(r *flow.Record) error {
		seen++
		if seen <= skip {
			return nil
		}
		recs = append(recs, *r)
		replayed++
		if len(recs) >= pipe.DefaultBatchSize {
			return flush()
		}
		return nil
	})
	if err == nil {
		err = flush()
	}
	s.m.replayed.Add(replayed)
	s.restore.Replayed += replayed
	return replayed, err
}

// Evaluate samples the detection-latency SLO and the ingest queue and
// feeds the shed ladder. Call it periodically (Serve does). The SLO
// verdict is a multi-window burn-rate evaluation (see burn.go), not a
// raw p99 comparison: both the fast and slow windows must burn the
// error budget faster than BurnThreshold. Breach edges and ladder
// escalations are recorded as events and trigger incident dumps.
func (s *Service) Evaluate() ShedLevel {
	snap := s.detect.Snapshot()
	p99 := snap.Quantile(0.99)
	if math.IsNaN(p99) {
		p99 = 0
	}
	s.m.sloP99.Set(p99)
	target := s.shed.opts.TargetP99.Seconds()
	fast, slow, breach, edge := s.burn.observe(snap.Count, badCount(snap, target))
	s.m.burnFast.Set(fast)
	s.m.burnSlow.Set(slow)
	if edge {
		if breach {
			s.eventsLog().Emit("service", "service_slo_burn_breach", 0,
				eventlog.AFloat("fast_burn", fast),
				eventlog.AFloat("slow_burn", slow),
				eventlog.AFloat("target_p99_seconds", target))
			s.dumpIncident("slo_burn")
		} else {
			s.eventsLog().Emit("service", "service_slo_burn_recovered", 0,
				eventlog.AFloat("fast_burn", fast),
				eventlog.AFloat("slow_burn", slow))
		}
	}
	var frac float64
	if s.opts.QueueDepth != nil {
		if d, c := s.opts.QueueDepth(); c > 0 {
			frac = float64(d) / float64(c)
		}
	}
	before := s.shed.current()
	lvl := s.shed.observe(breach, frac)
	if lvl > before {
		s.eventsLog().Emit("service", "service_shed_escalated", 0,
			eventlog.A("level", lvl.String()),
			eventlog.AFloat("queue_frac", frac))
		s.dumpIncident("shed_escalation")
	}
	return lvl
}

// Drain is the SIGTERM path: refuse new records, publish a final
// checkpoint (when configured; otherwise seal the archive), close the
// fan-out — flushing every shard queue — and withdraw all announced
// mitigations. Idempotent: later calls return the first report.
func (s *Service) Drain() (*DrainReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drainRep != nil {
		return s.drainRep, s.drainErr
	}
	s.draining = true
	s.eventsLog().Emit("service", "service_drain_begun", 0)
	rep := &DrainReport{}
	var firstErr error
	if s.opts.CheckpointDir != "" {
		if _, err := s.checkpointLocked(); err != nil {
			firstErr = err
		} else {
			rep.Checkpointed = true
		}
	} else if s.opts.Store != nil {
		if err := s.opts.Store.Seal(); err != nil {
			firstErr = err
		}
	}
	if err := s.fan.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	rep.Withdrawn = s.mit.WithdrawAll()
	s.m.drains.Inc()
	rep.Monitor = s.monitor.Stats()
	rep.Service = s.Stats()
	s.drainRep, s.drainErr = rep, firstErr
	// Dump after the withdrawals so the incident file carries each
	// attack's complete lifecycle, announcement through retraction.
	s.dumpIncident("drain")
	return rep, firstErr
}

// Alerts returns every alert raised, in global stream order. Call
// only after Drain (the fan-out must have closed).
func (s *Service) Alerts() []classify.Alert { return s.monitor.Alerts() }

// ActiveRules lists the announced FlowSpec mitigations.
func (s *Service) ActiveRules() []bgp.FlowSpecRule { return s.mit.ActiveRules() }

// MonitorStats returns the embedded monitor's accounting.
func (s *Service) MonitorStats() classify.MonitorStats { return s.monitor.Stats() }

// Health condenses the daemon's state into an operational verdict.
func (s *Service) Health() HealthReport {
	s.mu.Lock()
	draining := s.draining
	h := s.monitor.Health()
	s.mu.Unlock()
	return HealthReport{
		Monitor:     h,
		Shed:        s.shed.current(),
		Draining:    draining,
		ActiveRules: len(s.mit.ActiveRules()),
	}
}

// Serve runs the daemon's periodic duties — checkpoints and SLO
// evaluations — until ctx is cancelled. Checkpoint failures are
// accounted (the previous snapshot stays valid) and serving
// continues. Ingest keeps running concurrently; cancel ctx and then
// call Drain for a graceful shutdown.
func (s *Service) Serve(ctx context.Context, checkpointEvery, evaluateEvery time.Duration) {
	var ckptC, evalC <-chan time.Time
	if checkpointEvery > 0 && s.opts.CheckpointDir != "" {
		t := time.NewTicker(checkpointEvery) //bsvet:allow determinism checkpoint cadence is wall-clock by design; tests drive Checkpoint directly
		defer t.Stop()
		ckptC = t.C
	}
	if evaluateEvery > 0 {
		t := time.NewTicker(evaluateEvery) //bsvet:allow determinism the latency SLO measures host time by design; tests drive Evaluate directly
		defer t.Stop()
		evalC = t.C
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-ckptC:
			_, _ = s.Checkpoint()
		case <-evalC:
			s.Evaluate()
		}
	}
}
