package service

import (
	"errors"
	"net/netip"
	"os"
	"strings"
	"testing"
	"time"

	"booterscope/internal/bgp"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/flowstore"
	"booterscope/internal/telemetry"
	"booterscope/internal/telemetry/eventlog"
)

func TestDrainRefusesRecordsAndIsIdempotent(t *testing.T) {
	recs := genStream(4, 4_000)
	dir, storeDir := t.TempDir(), t.TempDir()
	svc := openService(t, dir, storeDir, testCfg, Options{})
	feed(t, svc, recs[:3_000])

	rep, err := svc.Drain()
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if !rep.Checkpointed {
		t.Fatal("drain did not publish a final checkpoint")
	}
	if rep.Service.Drains != 1 || rep.Monitor.Records != 3_000 {
		t.Fatalf("drain report accounting = %+v / %+v", rep.Service, rep.Monitor)
	}
	// The final checkpoint is complete and valid on disk.
	b, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeCheckpoint(b); err != nil {
		t.Fatalf("final checkpoint does not decode: %v", err)
	}

	// Records arriving after drain are refused loudly and accounted.
	if err := svc.Ingest(recs[3_000:]); !errors.Is(err, ErrDraining) {
		t.Fatalf("Ingest after drain = %v, want ErrDraining", err)
	}
	if got := svc.Stats().RefusedRecords; got != 1_000 {
		t.Fatalf("refused records = %d, want 1000", got)
	}
	if err := svc.Reload(testCfg); !errors.Is(err, ErrDraining) {
		t.Fatalf("Reload after drain = %v, want ErrDraining", err)
	}
	if _, err := svc.ReplayFromStore(); !errors.Is(err, ErrDraining) {
		t.Fatalf("ReplayFromStore after drain = %v, want ErrDraining", err)
	}
	if !svc.Health().Draining {
		t.Fatal("health does not report draining")
	}

	rep2, err := svc.Drain()
	if err != nil || rep2 != rep {
		t.Fatalf("second Drain = %p, %v; want the first report", rep2, err)
	}
}

// TestReloadSwapsThresholdsAndPersists pins the SIGHUP path: thresholds
// swap in-process without touching pipeline state, and the active
// config rides the next checkpoint across a restart.
func TestReloadSwapsThresholdsAndPersists(t *testing.T) {
	strict := classify.Config{MinRateBps: 1e15, MinSources: 1 << 20}
	recs := genStream(5, 12_000)
	half := len(recs) / 2
	dir := t.TempDir()
	svc := openService(t, dir, "", strict, Options{})

	feed(t, svc, recs[:half])
	if got := quiesceAlerts(t, svc); len(got) != 0 {
		t.Fatalf("strict thresholds raised %d alerts", len(got))
	}

	if err := svc.Reload(testCfg); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if got := svc.Config(); got.MinRateBps != testCfg.MinRateBps || got.MinSources != testCfg.MinSources {
		t.Fatalf("active config after reload = %+v", got)
	}
	if svc.Stats().Reloads != 1 {
		t.Fatalf("reloads = %d, want 1", svc.Stats().Reloads)
	}
	feed(t, svc, recs[half:])
	if got := quiesceAlerts(t, svc); len(got) == 0 {
		t.Fatal("reloaded thresholds raised no alerts on attack traffic")
	}
	mustCheckpoint(t, svc)

	// A restart configured with the old strict thresholds restores the
	// reloaded ones from the checkpoint — operator intent survives.
	svc2 := openService(t, dir, "", strict, Options{})
	if !svc2.Restore().Restored {
		t.Fatal("restart did not restore the checkpoint")
	}
	if got := svc2.Config(); got.MinRateBps != testCfg.MinRateBps || got.MinSources != testCfg.MinSources {
		t.Fatalf("restored config = %+v, want the reloaded thresholds", got)
	}
}

func TestShedLadderHysteresis(t *testing.T) {
	sh := newShedder(SLOOptions{
		TargetP99: 100 * time.Millisecond, StepUpAfter: 2, StepDownAfter: 2,
	}, newMetrics())
	// The burn evaluator now decides SLO breaches; the ladder takes a
	// boolean verdict per evaluation.
	slow, fast := true, false

	if got := sh.observe(slow, 0); got != ShedNone {
		t.Fatalf("one breach escalated to %v", got)
	}
	if got := sh.observe(slow, 0); got != ShedSample {
		t.Fatalf("second consecutive breach = %v, want ShedSample", got)
	}
	// A healthy sample resets the breach streak.
	if got := sh.observe(fast, 0); got != ShedSample {
		t.Fatalf("single healthy sample de-escalated to %v", got)
	}
	if got := sh.observe(slow, 0); got != ShedSample {
		t.Fatalf("breach streak did not reset: %v", got)
	}
	if got := sh.observe(slow, 0); got != ShedArchive {
		t.Fatalf("escalation = %v, want ShedArchive", got)
	}
	// The ladder tops out: classification is never shed.
	for i := 0; i < 5; i++ {
		if got := sh.observe(slow, 0); got != ShedArchive {
			t.Fatalf("ladder escalated past ShedArchive: %v", got)
		}
	}
	// Queue pressure alone is a breach too.
	sh2 := newShedder(SLOOptions{StepUpAfter: 1}, newMetrics())
	if got := sh2.observe(false, 0.95); got != ShedSample {
		t.Fatalf("queue breach = %v, want ShedSample", got)
	}
	// Recovery walks down one rung per StepDownAfter healthy streak.
	sh.observe(fast, 0)
	if got := sh.observe(fast, 0); got != ShedSample {
		t.Fatalf("recovery = %v, want ShedSample", got)
	}
	sh.observe(fast, 0)
	if got := sh.observe(fast, 0); got != ShedNone {
		t.Fatalf("recovery = %v, want ShedNone", got)
	}
}

// TestIngestUnderShedLevels pins the degradation semantics on the
// ingest path: ShedSample keeps 1-in-N with SamplingRate scaled by N
// (unbiased rates), ShedArchive skips only the archive append — the
// classifier sees every kept record at every level.
func TestIngestUnderShedLevels(t *testing.T) {
	recs := genStream(6, 1_200)
	for i := range recs {
		recs[i].SamplingRate = 1
	}
	dir, storeDir := t.TempDir(), t.TempDir()
	svc := openService(t, dir, storeDir, testCfg, Options{SLO: SLOOptions{SampleN: 4}})

	svc.shed.level.Store(int32(ShedSample))
	if err := svc.Ingest(recs[:400]); err != nil {
		t.Fatal(err)
	}
	quiesceAlerts(t, svc) // wait out the shard queues before reading stats
	st := svc.Stats()
	if st.SampledOutRecords != 300 || st.IngestedRecords != 100 {
		t.Fatalf("ShedSample accounting = %+v, want 300 sampled out / 100 kept", st)
	}
	if got := svc.MonitorStats().Records; got != 100 {
		t.Fatalf("classifier saw %d records, want 100", got)
	}
	if got := svc.opts.Store.Stats().RecordsAppended; got != 100 {
		t.Fatalf("archive got %d records, want 100", got)
	}

	svc.shed.level.Store(int32(ShedArchive))
	if err := svc.Ingest(recs[400:800]); err != nil {
		t.Fatal(err)
	}
	quiesceAlerts(t, svc)
	st = svc.Stats()
	if st.ArchiveShedRecords != 100 || st.SampledOutRecords != 600 {
		t.Fatalf("ShedArchive accounting = %+v", st)
	}
	if got := svc.opts.Store.Stats().RecordsAppended; got != 100 {
		t.Fatalf("archive grew to %d under ShedArchive", got)
	}
	if got := svc.MonitorStats().Records; got != 200 {
		t.Fatalf("classifier saw %d records, want 200 — classification must never be shed", got)
	}

	// Kept records carry the scaled sampling rate into the archive.
	svc.shed.level.Store(int32(ShedNone))
	if err := svc.opts.Store.Seal(); err != nil {
		t.Fatal(err)
	}
	var scaled, total int
	if _, err := svc.opts.Store.Scan(flowstore.Query{}, func(r *flow.Record) error {
		total++
		if r.SamplingRate == 4 {
			scaled++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if total != 100 || scaled != 100 {
		t.Fatalf("archived records: %d total, %d with SamplingRate 4; want 100/100", total, scaled)
	}
}

func TestEvaluateWalksLadderFromQueuePressure(t *testing.T) {
	depth := 0
	svc := openService(t, t.TempDir(), "", testCfg, Options{
		QueueDepth: func() (int, int) { return depth, 100 },
		SLO:        SLOOptions{TargetP99: time.Second, StepUpAfter: 1, StepDownAfter: 2},
	})
	if got := svc.Evaluate(); got != ShedNone {
		t.Fatalf("idle evaluation = %v", got)
	}
	depth = 90 // past the 0.8 high-watermark
	if got := svc.Evaluate(); got != ShedSample {
		t.Fatalf("overload evaluation = %v, want ShedSample", got)
	}
	if got := svc.Evaluate(); got != ShedArchive {
		t.Fatalf("sustained overload = %v, want ShedArchive", got)
	}
	if got := svc.Health().Shed; got != ShedArchive {
		t.Fatalf("health shed level = %v", got)
	}
	if got := svc.Stats().SLOBreaches; got != 2 {
		t.Fatalf("SLO breaches = %d, want 2", got)
	}
	depth = 0
	svc.Evaluate()
	if got := svc.Evaluate(); got != ShedSample {
		t.Fatalf("recovery = %v, want ShedSample", got)
	}
	svc.Evaluate()
	if got := svc.Evaluate(); got != ShedNone {
		t.Fatalf("recovery = %v, want ShedNone", got)
	}
}

// TestMitigationAnnounceAndWithdraw pins the detect→mitigate loop: a
// sustained alert announces one FlowSpec discard rule per victim, and
// drain withdraws everything.
func TestMitigationAnnounceAndWithdraw(t *testing.T) {
	var announced, withdrawn []bgp.FlowSpecRule
	recs := genStream(7, 8_000)
	svc := openService(t, t.TempDir(), "", testCfg, Options{
		Mitigation: MitigationOptions{
			Enabled:       true,
			SustainAlerts: 1,
			Announce:      func(r bgp.FlowSpecRule) { announced = append(announced, r) },
			Withdraw:      func(r bgp.FlowSpecRule) { withdrawn = append(withdrawn, r) },
		},
	})
	feed(t, svc, recs)
	quiesceAlerts(t, svc) // alerts arrive from shard workers; quiesce first

	active := svc.ActiveRules()
	if len(active) == 0 {
		t.Fatal("no mitigations announced under attack traffic")
	}
	st := svc.Stats()
	if uint64(len(active)) != st.MitigationAnnounced || uint64(len(announced)) != st.MitigationAnnounced {
		t.Fatalf("announce accounting: %d active, %d callback, stats %+v", len(active), len(announced), st)
	}
	if got := svc.Health().ActiveRules; got != len(active) {
		t.Fatalf("health active rules = %d, want %d", got, len(active))
	}
	for _, r := range active {
		if r.Protocol != 17 || r.SrcPort != classify.NTPPort || r.Dst.Bits() != 32 || r.MinPacketLen != int(classify.OptimisticSizeThreshold) {
			t.Fatalf("rule not scoped to NTP amplification at the victim /32: %+v", r)
		}
		if _, err := r.Encode(); err != nil {
			t.Fatalf("announced rule does not encode: %v", err)
		}
	}

	rep, err := svc.Drain()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Withdrawn) != len(active) || len(withdrawn) != len(active) {
		t.Fatalf("drain withdrew %d (callback %d), want %d", len(rep.Withdrawn), len(withdrawn), len(active))
	}
	if got := len(svc.ActiveRules()); got != 0 {
		t.Fatalf("%d rules still active after drain", got)
	}
	if st := svc.Stats(); st.MitigationWithdrawn != uint64(len(active)) {
		t.Fatalf("withdraw accounting = %+v", st)
	}
}

func TestMitigationSkipsNonIPv4Victims(t *testing.T) {
	m := newMetrics()
	mit := newMitigator(MitigationOptions{Enabled: true, SustainAlerts: 1}, m, func() *eventlog.Log { return nil })
	mit.OnAlert(classify.Alert{Victim: netip.MustParseAddr("2001:db8::1")})
	if got := len(mit.ActiveRules()); got != 0 {
		t.Fatalf("%d rules announced for an IPv6 victim", got)
	}
	if got := m.mitigationSkipped.Value(); got != 1 {
		t.Fatalf("skipped counter = %d, want 1 — skips must be accounted", got)
	}
}

// TestServiceMetricsRegistered pins the scrape surface: every service_*
// series and the detection-latency histogram appear on the registry the
// daemon was built with.
func TestServiceMetricsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	svc := openService(t, t.TempDir(), "", testCfg, Options{Registry: reg})
	feed(t, svc, genStream(8, 500))
	if _, err := svc.Drain(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		"service_ingest_records_total",
		"service_shed_sampled_records_total",
		"service_shed_archive_records_total",
		"service_drain_refused_records_total",
		"service_checkpoints_total",
		"service_checkpoint_failures_total",
		"service_checkpoint_bytes",
		"service_restores_total",
		"service_restore_corrupt_total",
		"service_replayed_records_total",
		"service_reloads_total",
		"service_drains_total",
		"service_slo_breaches_total",
		"service_slo_detect_p99_seconds",
		"service_shed_level",
		"service_mitigation_rules_active",
		"service_mitigation_announced_total",
		"service_mitigation_withdrawn_total",
		"service_mitigation_skipped_total",
		"classify_monitor_records_total",
		"pipeline_stage_service_detect_seconds",
	} {
		if !strings.Contains(out, name) {
			t.Errorf("scrape is missing %s", name)
		}
	}
	if snap := reg.Snapshot(); snap.Counters["service_ingest_records_total"] != 500 {
		t.Fatalf("scraped ingest counter = %d, want 500", snap.Counters["service_ingest_records_total"])
	}
}
