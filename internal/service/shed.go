package service

import (
	"fmt"
	"sync/atomic"
	"time"
)

// ShedLevel is one rung of the overload-degradation ladder. Each step
// gives up a declared slice of fidelity to protect detection latency;
// classification itself is never shed — the ladder tops out at
// ShedArchive with the classifier still seeing (sampled) traffic.
type ShedLevel int32

// The ladder, in escalation order.
const (
	// ShedNone is full fidelity: every record archived and classified.
	ShedNone ShedLevel = iota
	// ShedSample widens sampling: 1-in-SampleN records enter the
	// pipeline with SamplingRate scaled by N, so rate estimates stay
	// unbiased while per-record cost drops N-fold. Source counts are
	// thinned — a declared, accounted degradation.
	ShedSample
	// ShedArchive additionally sheds the landscape-only archive stage:
	// records are classified but no longer persisted. This is the top
	// rung; classification is never shed.
	ShedArchive
)

// String names the level for telemetry labels and logs.
func (l ShedLevel) String() string {
	switch l {
	case ShedNone:
		return "none"
	case ShedSample:
		return "sample"
	case ShedArchive:
		return "archive"
	}
	return fmt.Sprintf("level%d", int32(l))
}

// SLOOptions declares the detection-latency objective and the ladder's
// trigger thresholds.
type SLOOptions struct {
	// TargetP99 is the detection-latency SLO: the p99 of the
	// service_detect span (flow arrival to detection-pipeline
	// hand-off, including shard-queue backpressure) must stay under
	// it. 0 selects 250ms.
	TargetP99 time.Duration
	// BudgetFraction is the error budget: the fraction of detections
	// allowed over TargetP99. 0 selects 0.01 (a 99% objective).
	BudgetFraction float64
	// BurnThreshold is the burn-rate multiple both windows must exceed
	// to declare a breach. 0 selects 14.4 (the classic fast-page
	// threshold: at that rate a 30-day budget is gone in ~2 days).
	BurnThreshold float64
	// FastWindow and SlowWindow are the burn windows in evaluation
	// samples (5m/1h at the default 1-minute evaluation cadence).
	// 0 selects 5 and 60 respectively.
	FastWindow int
	SlowWindow int
	// QueueHighFrac escalates when the collector ingest queue is
	// fuller than this fraction at evaluation time. 0 selects 0.8.
	QueueHighFrac float64
	// SampleN is the ShedSample sampling divisor (1-in-N). 0 selects 4.
	SampleN int
	// StepUpAfter is how many consecutive breached evaluations trigger
	// an escalation (0 selects 1 — escalate immediately).
	StepUpAfter int
	// StepDownAfter is how many consecutive healthy evaluations walk
	// the ladder back one rung (0 selects 3 — recover conservatively).
	StepDownAfter int
}

func (o SLOOptions) withDefaults() SLOOptions {
	if o.TargetP99 <= 0 {
		o.TargetP99 = 250 * time.Millisecond
	}
	if o.BudgetFraction <= 0 {
		o.BudgetFraction = 0.01
	}
	if o.BurnThreshold <= 0 {
		o.BurnThreshold = 14.4
	}
	if o.FastWindow <= 0 {
		o.FastWindow = 5
	}
	if o.SlowWindow <= 0 {
		o.SlowWindow = 60
	}
	if o.SlowWindow < o.FastWindow {
		o.SlowWindow = o.FastWindow
	}
	if o.QueueHighFrac <= 0 {
		o.QueueHighFrac = 0.8
	}
	if o.SampleN <= 1 {
		o.SampleN = 4
	}
	if o.StepUpAfter <= 0 {
		o.StepUpAfter = 1
	}
	if o.StepDownAfter <= 0 {
		o.StepDownAfter = 3
	}
	return o
}

// shedder walks the degradation ladder from periodic SLO evaluations.
// observe is called from one goroutine (the service's evaluation
// loop); current is read from the ingest path, hence the atomic level.
type shedder struct {
	opts     SLOOptions
	level    atomic.Int32
	breached int
	healthy  int
	m        *metrics
}

func newShedder(opts SLOOptions, m *metrics) *shedder {
	return &shedder{opts: opts.withDefaults(), m: m}
}

// current reports the active level (ingest hot path, lock-free).
func (s *shedder) current() ShedLevel { return ShedLevel(s.level.Load()) }

// observe folds one evaluation sample into the ladder state and
// returns the (possibly changed) level. A breach of either budget —
// the multi-window burn rate over the latency SLO (sloBreach, from
// the burn evaluator) or the collector queue high-watermark — steps
// the ladder up after StepUpAfter consecutive breaches; StepDownAfter
// consecutive healthy evaluations step it back down.
func (s *shedder) observe(sloBreach bool, queueFrac float64) ShedLevel {
	breach := sloBreach || queueFrac > s.opts.QueueHighFrac
	lvl := s.current()
	if breach {
		s.m.sloBreaches.Inc()
		s.healthy = 0
		s.breached++
		if s.breached >= s.opts.StepUpAfter && lvl < ShedArchive {
			lvl = s.step(lvl, lvl+1, "up")
			s.breached = 0
		}
		return lvl
	}
	s.breached = 0
	s.healthy++
	if s.healthy >= s.opts.StepDownAfter && lvl > ShedNone {
		lvl = s.step(lvl, lvl-1, "down")
		s.healthy = 0
	}
	return lvl
}

func (s *shedder) step(from, to ShedLevel, dir string) ShedLevel {
	s.level.Store(int32(to))
	s.m.shedLevel.Set(float64(to))
	s.m.shedTransitions.With(to.String(), dir).Inc()
	_ = from
	return to
}
