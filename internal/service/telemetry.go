package service

import "booterscope/internal/telemetry"

// metrics are the daemon's accounting counters as telemetry atomics;
// ServiceStats is a thin view over them, and RegisterTelemetry
// attaches the same objects to the registry, so a scrape and Stats()
// can never disagree (the repo-wide convention of DESIGN.md §6).
type metrics struct {
	records     *telemetry.Counter
	sampledOut  *telemetry.Counter
	archiveShed *telemetry.Counter
	refused     *telemetry.Counter

	checkpoints        *telemetry.Counter
	checkpointFailures *telemetry.Counter
	checkpointBytes    *telemetry.Gauge

	restores       *telemetry.Counter
	restoreCorrupt *telemetry.Counter
	replayed       *telemetry.Counter

	reloads *telemetry.Counter
	drains  *telemetry.Counter

	sloBreaches     *telemetry.Counter
	sloP99          *telemetry.Gauge
	burnFast        *telemetry.Gauge
	burnSlow        *telemetry.Gauge
	shedLevel       *telemetry.Gauge
	shedTransitions *telemetry.CounterVec

	suppressedRecords *telemetry.Counter
	suppressedBytes   *telemetry.Counter

	mitigationActive    *telemetry.Gauge
	mitigationAnnounced *telemetry.Counter
	mitigationWithdrawn *telemetry.Counter
	mitigationSkipped   *telemetry.Counter
}

func newMetrics() *metrics {
	return &metrics{
		records:             telemetry.NewCounter(),
		sampledOut:          telemetry.NewCounter(),
		archiveShed:         telemetry.NewCounter(),
		refused:             telemetry.NewCounter(),
		checkpoints:         telemetry.NewCounter(),
		checkpointFailures:  telemetry.NewCounter(),
		checkpointBytes:     telemetry.NewGauge(),
		restores:            telemetry.NewCounter(),
		restoreCorrupt:      telemetry.NewCounter(),
		replayed:            telemetry.NewCounter(),
		reloads:             telemetry.NewCounter(),
		drains:              telemetry.NewCounter(),
		sloBreaches:         telemetry.NewCounter(),
		sloP99:              telemetry.NewGauge(),
		burnFast:            telemetry.NewGauge(),
		burnSlow:            telemetry.NewGauge(),
		suppressedRecords:   telemetry.NewCounter(),
		suppressedBytes:     telemetry.NewCounter(),
		shedLevel:           telemetry.NewGauge(),
		shedTransitions:     telemetry.NewCounterVec("level", "direction").SetMaxCardinality(16),
		mitigationActive:    telemetry.NewGauge(),
		mitigationAnnounced: telemetry.NewCounter(),
		mitigationWithdrawn: telemetry.NewCounter(),
		mitigationSkipped:   telemetry.NewCounter(),
	}
}

// RegisterTelemetry attaches the daemon's accounting to r under the
// service_* names (plus the embedded monitor's classify_monitor_*
// names). New calls it on the configured registry; call it manually
// only when mirroring the service onto a second registry.
func (s *Service) RegisterTelemetry(r *telemetry.Registry) {
	m := s.m
	r.MustRegister("service_ingest_records_total", "records accepted into the detection path", m.records)
	r.MustRegister("service_shed_sampled_records_total", "records sampled out at ShedSample (rates stay unbiased via SamplingRate scaling)", m.sampledOut)
	r.MustRegister("service_shed_archive_records_total", "records not archived at ShedArchive (classification still ran)", m.archiveShed)
	r.MustRegister("service_drain_refused_records_total", "records refused after drain began", m.refused)
	r.MustRegister("service_checkpoints_total", "checkpoints published", m.checkpoints)
	r.MustRegister("service_checkpoint_failures_total", "checkpoint attempts that failed (previous snapshot kept)", m.checkpointFailures)
	r.MustRegister("service_checkpoint_bytes", "size of the last published checkpoint", m.checkpointBytes)
	r.MustRegister("service_restores_total", "restarts that restored monitor state from a checkpoint", m.restores)
	r.MustRegister("service_restore_corrupt_total", "restarts that found a corrupt checkpoint and cold-started", m.restoreCorrupt)
	r.MustRegister("service_replayed_records_total", "archive records replayed past the checkpoint watermark on restart", m.replayed)
	r.MustRegister("service_reloads_total", "threshold reloads applied (SIGHUP)", m.reloads)
	r.MustRegister("service_drains_total", "graceful drains completed", m.drains)
	r.MustRegister("service_slo_breaches_total", "overload evaluations that breached the latency or queue budget", m.sloBreaches)
	r.MustRegister("service_slo_detect_p99_seconds", "p99 of the service_detect span at the last evaluation", m.sloP99)
	r.MustRegister("service_slo_burn_rate_fast", "error-budget burn rate over the fast window at the last evaluation", m.burnFast)
	r.MustRegister("service_slo_burn_rate_slow", "error-budget burn rate over the slow window at the last evaluation", m.burnSlow)
	r.MustRegister("service_suppressed_records_total", "records matching an active FlowSpec rule (traffic a deployed filter would discard)", m.suppressedRecords)
	r.MustRegister("service_suppressed_bytes_total", "scaled bytes matching an active FlowSpec rule", m.suppressedBytes)
	r.MustRegister("service_shed_level", "active overload-degradation ladder rung (0 none, 1 sample, 2 archive)", m.shedLevel)
	r.MustRegister("service_shed_transitions_total", "ladder transitions by target level and direction", m.shedTransitions)
	r.MustRegister("service_mitigation_rules_active", "FlowSpec rules currently announced", m.mitigationActive)
	r.MustRegister("service_mitigation_announced_total", "FlowSpec rules announced", m.mitigationAnnounced)
	r.MustRegister("service_mitigation_withdrawn_total", "FlowSpec rules withdrawn", m.mitigationWithdrawn)
	r.MustRegister("service_mitigation_skipped_total", "mitigations skipped (non-IPv4 victim or unencodable rule)", m.mitigationSkipped)
	s.monitor.RegisterTelemetry(r)
}

// ServiceStats is a snapshot of the daemon's accounting — a view over
// the same telemetry atomics RegisterTelemetry exposes.
type ServiceStats struct {
	IngestedRecords     uint64
	SampledOutRecords   uint64
	ArchiveShedRecords  uint64
	RefusedRecords      uint64
	Checkpoints         uint64
	CheckpointFailures  uint64
	Restores            uint64
	ReplayedRecords     uint64
	Reloads             uint64
	Drains              uint64
	SLOBreaches         uint64
	ShedLevel           ShedLevel
	MitigationAnnounced uint64
	MitigationWithdrawn uint64
	MitigationSkipped   uint64
}

// Stats returns the daemon's accounting snapshot.
func (s *Service) Stats() ServiceStats {
	return ServiceStats{
		IngestedRecords:     s.m.records.Value(),
		SampledOutRecords:   s.m.sampledOut.Value(),
		ArchiveShedRecords:  s.m.archiveShed.Value(),
		RefusedRecords:      s.m.refused.Value(),
		Checkpoints:         s.m.checkpoints.Value(),
		CheckpointFailures:  s.m.checkpointFailures.Value(),
		Restores:            s.m.restores.Value(),
		ReplayedRecords:     s.m.replayed.Value(),
		Reloads:             s.m.reloads.Value(),
		Drains:              s.m.drains.Value(),
		SLOBreaches:         s.m.sloBreaches.Value(),
		ShedLevel:           s.shed.current(),
		MitigationAnnounced: s.m.mitigationAnnounced.Value(),
		MitigationWithdrawn: s.m.mitigationWithdrawn.Value(),
		MitigationSkipped:   s.m.mitigationSkipped.Value(),
	}
}
