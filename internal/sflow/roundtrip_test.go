package sflow

import (
	"bytes"
	"math"
	"math/rand"
	"net/netip"
	"testing"
	"time"
)

// TestRoundTripProperty: random samples — including zero and max-uint32
// sampling metadata and header snippets at every length up to the
// 128-byte cap — must round-trip exactly through Encode/Decode. Headers
// are non-empty: a real sampled packet always carries at least its IP
// header, and the decoder deliberately drops header-less samples.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	now := time.Date(2018, 12, 19, 12, 0, 0, 0, time.UTC)
	u32 := func() uint32 {
		switch rng.Intn(3) {
		case 0:
			return 0
		case 1:
			return math.MaxUint32
		default:
			return rng.Uint32()
		}
	}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(16)
		samples := make([]Sample, n)
		for i := range samples {
			hdr := make([]byte, 1+rng.Intn(MaxHeaderBytes))
			rng.Read(hdr)
			samples[i] = Sample{
				SamplingRate: u32(),
				SamplePool:   u32(),
				FrameLength:  u32(),
				Header:       hdr,
			}
		}
		e := &Exporter{
			Agent:      netip.AddrFrom4([4]byte{203, 0, 113, byte(trial)}),
			SubAgentID: rng.Uint32(),
			BootTime:   now.Add(-time.Duration(rng.Int63n(int64(400 * 24 * time.Hour)))),
		}
		pkt, err := e.Encode(samples, now)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		dec, err := Decode(pkt)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if dec.Agent != e.Agent || dec.SubAgentID != e.SubAgentID {
			t.Fatalf("trial %d: agent %v/%d, want %v/%d", trial, dec.Agent, dec.SubAgentID, e.Agent, e.SubAgentID)
		}
		if len(dec.Samples) != n {
			t.Fatalf("trial %d: %d samples, want %d", trial, len(dec.Samples), n)
		}
		for i := range samples {
			in, out := &samples[i], &dec.Samples[i]
			if out.SamplingRate != in.SamplingRate || out.SamplePool != in.SamplePool ||
				out.FrameLength != in.FrameLength {
				t.Fatalf("trial %d sample %d: metadata %d/%d/%d, want %d/%d/%d", trial, i,
					out.SamplingRate, out.SamplePool, out.FrameLength,
					in.SamplingRate, in.SamplePool, in.FrameLength)
			}
			if !bytes.Equal(out.Header, in.Header) {
				t.Fatalf("trial %d sample %d: header mismatch (%d vs %d bytes)",
					trial, i, len(out.Header), len(in.Header))
			}
		}
	}
}
