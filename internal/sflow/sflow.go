// Package sflow implements the sFlow version 5 datagram format (flow
// samples with raw packet headers) — the other export protocol major
// IXPs run besides IPFIX. Where IPFIX ships pre-aggregated flow records,
// sFlow ships sampled raw packet headers; the booterscope pipeline
// decodes them with the packet codec and rebuilds flows, exercising the
// full capture path a production sFlow collector uses.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
	"time"

	"booterscope/internal/netutil"
	"booterscope/internal/packet"
)

// Protocol constants.
const (
	Version = 5

	addrTypeIPv4 = 1

	sampleTypeFlow = 1

	recordTypeRawHeader = 1

	// headerProtocolIPv4 marks a raw header that starts at the IP layer
	// (sFlow header_protocol 11 = IPv4).
	headerProtocolIPv4 = 11

	// MaxHeaderBytes is the default header snippet length exported per
	// sampled packet.
	MaxHeaderBytes = 128
)

// Codec errors.
var (
	ErrBadVersion = errors.New("sflow: unsupported version")
	ErrTruncated  = errors.New("sflow: truncated datagram")
	ErrBadSample  = errors.New("sflow: malformed sample")
)

// Sample is one sampled packet: its raw header plus sampling metadata.
type Sample struct {
	// SamplingRate is the 1-in-N rate of the exporting port.
	SamplingRate uint32
	// SamplePool counts packets that could have been sampled.
	SamplePool uint32
	// FrameLength is the original packet length on the wire.
	FrameLength uint32
	// Header is the truncated raw header (IPv4 and up).
	Header []byte
}

// Datagram is one sFlow export datagram.
type Datagram struct {
	Agent      netip.Addr
	SubAgentID uint32
	Sequence   uint32
	Uptime     time.Duration
	Samples    []Sample
}

// Exporter encodes sampled packets into sFlow datagrams.
type Exporter struct {
	// Agent identifies the exporting device.
	Agent netip.Addr
	// SubAgentID distinguishes export processes.
	SubAgentID uint32
	// BootTime anchors the uptime field.
	BootTime time.Time

	seq       uint32
	sampleSeq uint32
}

// Encode builds one datagram carrying the samples.
func (e *Exporter) Encode(samples []Sample, now time.Time) ([]byte, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("sflow: no samples to encode")
	}
	agent := e.Agent
	if !agent.Is4() {
		agent = netip.MustParseAddr("127.0.0.1")
	}
	b := make([]byte, 0, 64+len(samples)*(44+MaxHeaderBytes))
	b = binary.BigEndian.AppendUint32(b, Version)
	b = binary.BigEndian.AppendUint32(b, addrTypeIPv4)
	a4 := agent.As4()
	b = append(b, a4[:]...)
	b = binary.BigEndian.AppendUint32(b, e.SubAgentID)
	b = binary.BigEndian.AppendUint32(b, e.seq)
	e.seq++
	b = binary.BigEndian.AppendUint32(b, uint32(now.Sub(e.BootTime)/time.Millisecond))
	b = binary.BigEndian.AppendUint32(b, uint32(len(samples)))

	for _, s := range samples {
		hdr := s.Header
		if len(hdr) > MaxHeaderBytes {
			hdr = hdr[:MaxHeaderBytes]
		}
		pad := (4 - len(hdr)%4) % 4

		// Raw packet header record.
		recLen := 16 + len(hdr) + pad
		// Flow sample body: seq, sourceID, rate, pool, drops, input,
		// output, nrecords + one record.
		bodyLen := 32 + 8 + recLen

		b = binary.BigEndian.AppendUint32(b, sampleTypeFlow)
		b = binary.BigEndian.AppendUint32(b, uint32(bodyLen))
		b = binary.BigEndian.AppendUint32(b, e.sampleSeq)
		e.sampleSeq++
		b = binary.BigEndian.AppendUint32(b, 0) // source id
		b = binary.BigEndian.AppendUint32(b, s.SamplingRate)
		b = binary.BigEndian.AppendUint32(b, s.SamplePool)
		b = binary.BigEndian.AppendUint32(b, 0) // drops
		b = binary.BigEndian.AppendUint32(b, 1) // input ifindex
		b = binary.BigEndian.AppendUint32(b, 2) // output ifindex
		b = binary.BigEndian.AppendUint32(b, 1) // record count

		b = binary.BigEndian.AppendUint32(b, recordTypeRawHeader)
		b = binary.BigEndian.AppendUint32(b, uint32(recLen))
		b = binary.BigEndian.AppendUint32(b, headerProtocolIPv4)
		b = binary.BigEndian.AppendUint32(b, s.FrameLength)
		b = binary.BigEndian.AppendUint32(b, 0) // stripped
		b = binary.BigEndian.AppendUint32(b, uint32(len(hdr)))
		b = append(b, hdr...)
		b = append(b, make([]byte, pad)...)
	}
	return b, nil
}

// Decode parses one sFlow datagram.
func Decode(b []byte) (*Datagram, error) {
	if len(b) < 28 {
		return nil, ErrTruncated
	}
	if binary.BigEndian.Uint32(b) != Version {
		return nil, ErrBadVersion
	}
	if binary.BigEndian.Uint32(b[4:]) != addrTypeIPv4 {
		return nil, fmt.Errorf("%w: non-IPv4 agent", ErrBadSample)
	}
	d := &Datagram{
		Agent:      netip.AddrFrom4([4]byte(b[8:12])),
		SubAgentID: binary.BigEndian.Uint32(b[12:]),
		Sequence:   binary.BigEndian.Uint32(b[16:]),
		Uptime:     time.Duration(binary.BigEndian.Uint32(b[20:])) * time.Millisecond,
	}
	n := int(binary.BigEndian.Uint32(b[24:]))
	off := 28
	for i := 0; i < n; i++ {
		if off+8 > len(b) {
			return nil, ErrTruncated
		}
		sampleType := binary.BigEndian.Uint32(b[off:])
		sampleLen := int(binary.BigEndian.Uint32(b[off+4:]))
		off += 8
		if sampleLen < 0 || off+sampleLen > len(b) {
			return nil, ErrTruncated
		}
		body := b[off : off+sampleLen]
		off += sampleLen
		if sampleType != sampleTypeFlow {
			continue // counter samples etc. are skipped
		}
		sample, err := decodeFlowSample(body)
		if err != nil {
			return nil, err
		}
		if sample != nil {
			d.Samples = append(d.Samples, *sample)
		}
	}
	return d, nil
}

// decodeFlowSample parses one flow sample body, returning nil when the
// sample carries no raw header record.
func decodeFlowSample(b []byte) (*Sample, error) {
	if len(b) < 32 {
		return nil, ErrBadSample
	}
	s := Sample{
		SamplingRate: binary.BigEndian.Uint32(b[8:]),
		SamplePool:   binary.BigEndian.Uint32(b[12:]),
	}
	records := int(binary.BigEndian.Uint32(b[28:]))
	off := 32
	for r := 0; r < records; r++ {
		if off+8 > len(b) {
			return nil, ErrBadSample
		}
		recType := binary.BigEndian.Uint32(b[off:])
		recLen := int(binary.BigEndian.Uint32(b[off+4:]))
		off += 8
		if recLen < 0 || off+recLen > len(b) {
			return nil, ErrBadSample
		}
		rec := b[off : off+recLen]
		off += recLen
		if recType != recordTypeRawHeader || len(rec) < 16 {
			continue
		}
		if binary.BigEndian.Uint32(rec) != headerProtocolIPv4 {
			continue
		}
		s.FrameLength = binary.BigEndian.Uint32(rec[4:])
		hdrLen := int(binary.BigEndian.Uint32(rec[12:]))
		if hdrLen < 0 || 16+hdrLen > len(rec) {
			return nil, ErrBadSample
		}
		s.Header = append([]byte(nil), rec[16:16+hdrLen]...)
	}
	if s.Header == nil {
		return nil, nil
	}
	return &s, nil
}

// SamplePackets turns raw IPv4 packets into sFlow samples at a 1-in-rate
// systematic pace, exactly like a switch ASIC: every rate-th packet's
// header is exported.
func SamplePackets(packets [][]byte, rate uint32) []Sample {
	if rate == 0 {
		rate = 1
	}
	var out []Sample
	for i, pkt := range packets {
		if uint32(i)%rate != 0 {
			continue
		}
		hdr := pkt
		if len(hdr) > MaxHeaderBytes {
			hdr = hdr[:MaxHeaderBytes]
		}
		out = append(out, Sample{
			SamplingRate: rate,
			SamplePool:   uint32(i + 1),
			FrameLength:  uint32(len(pkt)),
			Header:       append([]byte(nil), hdr...),
		})
	}
	return out
}

// ToFlowSeconds decodes every sample's header and returns per-sample
// decoded packets with scale-up info, ready for flow building. Samples
// whose headers fail to parse are skipped (truncation can cut into the
// transport header).
func (d *Datagram) DecodedPackets() []DecodedSample {
	var out []DecodedSample
	for _, s := range d.Samples {
		pkt, err := packet.DecodeIPv4(s.Header)
		if err != nil {
			continue
		}
		out = append(out, DecodedSample{
			Packet:       pkt,
			SamplingRate: s.SamplingRate,
			FrameLength:  s.FrameLength,
		})
	}
	return out
}

// DecodedSample pairs a parsed header with its sampling metadata.
type DecodedSample struct {
	Packet       *packet.Decoded
	SamplingRate uint32
	FrameLength  uint32
}

// EstimatedBytes scales the frame length up by the sampling rate.
func (d DecodedSample) EstimatedBytes() uint64 {
	return uint64(d.FrameLength) * uint64(d.SamplingRate)
}

// Bitrate estimates the traffic rate represented by a set of samples
// observed over the given duration.
func Bitrate(samples []DecodedSample, over time.Duration) netutil.Bitrate {
	var bytes uint64
	for _, s := range samples {
		bytes += s.EstimatedBytes()
	}
	return netutil.RateFromBytes(bytes, over.Seconds())
}
