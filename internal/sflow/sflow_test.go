package sflow

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
)

var (
	boot = time.Date(2018, 10, 1, 0, 0, 0, 0, time.UTC)
	now  = boot.Add(48 * time.Hour)
)

// attackPacket builds a monlist-response-sized NTP packet.
func attackPacket(t testing.TB, size int) []byte {
	t.Helper()
	pkt := packet.Build(
		&packet.IPv4{TTL: 60, Protocol: packet.IPProtoUDP,
			Src: netip.MustParseAddr("192.0.2.10"), Dst: netip.MustParseAddr("203.0.113.7")},
		&packet.UDP{SrcPort: 123, DstPort: 41000},
		packet.Payload(make([]byte, size-28)),
	)
	if len(pkt) != size {
		t.Fatalf("packet size %d, want %d", len(pkt), size)
	}
	return pkt
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), SubAgentID: 3, BootTime: boot}
	pkt := attackPacket(t, 490)
	samples := []Sample{{
		SamplingRate: 10000,
		SamplePool:   123456,
		FrameLength:  490,
		Header:       pkt[:MaxHeaderBytes],
	}}
	dgram, err := e.Encode(samples, now)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if d.Agent != netip.MustParseAddr("10.99.0.1") || d.SubAgentID != 3 {
		t.Errorf("agent = %v/%d", d.Agent, d.SubAgentID)
	}
	if d.Uptime != 48*time.Hour {
		t.Errorf("uptime = %v", d.Uptime)
	}
	if len(d.Samples) != 1 {
		t.Fatalf("samples = %d", len(d.Samples))
	}
	s := d.Samples[0]
	if s.SamplingRate != 10000 || s.SamplePool != 123456 || s.FrameLength != 490 {
		t.Errorf("sample meta = %+v", s)
	}
	if !bytes.Equal(s.Header, pkt[:MaxHeaderBytes]) {
		t.Error("header bytes corrupted")
	}
}

func TestSequenceAdvances(t *testing.T) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	samples := []Sample{{SamplingRate: 1, FrameLength: 100, Header: attackPacket(t, 100)}}
	d1raw, _ := e.Encode(samples, now)
	d2raw, _ := e.Encode(samples, now)
	d1, _ := Decode(d1raw)
	d2, _ := Decode(d2raw)
	if d1.Sequence != 0 || d2.Sequence != 1 {
		t.Errorf("sequences = %d, %d", d1.Sequence, d2.Sequence)
	}
}

func TestHeaderTruncationAt128(t *testing.T) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	full := attackPacket(t, 490)
	dgram, err := e.Encode([]Sample{{SamplingRate: 100, FrameLength: 490, Header: full}}, now)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(dgram)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples[0].Header) != MaxHeaderBytes {
		t.Errorf("header = %d bytes, want %d", len(d.Samples[0].Header), MaxHeaderBytes)
	}
}

func TestSamplePackets(t *testing.T) {
	packets := make([][]byte, 100)
	for i := range packets {
		packets[i] = attackPacket(t, 486)
	}
	samples := SamplePackets(packets, 10)
	if len(samples) != 10 {
		t.Fatalf("samples = %d, want exactly 10 (systematic)", len(samples))
	}
	for _, s := range samples {
		if s.SamplingRate != 10 || s.FrameLength != 486 {
			t.Errorf("sample = %+v", s)
		}
	}
	if got := SamplePackets(packets, 0); len(got) != 100 {
		t.Errorf("rate 0 treated as unsampled: %d", len(got))
	}
}

func TestDecodedPacketsAndRate(t *testing.T) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	packets := make([][]byte, 1000)
	for i := range packets {
		packets[i] = attackPacket(t, 490)
	}
	samples := SamplePackets(packets, 100)
	dgram, err := e.Encode(samples, now)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decode(dgram)
	if err != nil {
		t.Fatal(err)
	}
	decoded := d.DecodedPackets()
	if len(decoded) != 10 {
		t.Fatalf("decoded = %d", len(decoded))
	}
	for _, ds := range decoded {
		if ds.Packet.UDP == nil || ds.Packet.UDP.SrcPort != amplify.NTP.Port() {
			t.Fatal("decoded header lost the UDP layer")
		}
		// Truncated capture still reports the original IP total length.
		if ds.Packet.TotalLen != 490 {
			t.Errorf("TotalLen = %d", ds.Packet.TotalLen)
		}
		if ds.EstimatedBytes() != 49000 {
			t.Errorf("estimated bytes = %d", ds.EstimatedBytes())
		}
	}
	// 1000 packets x 490 B over 1 s = 3.92 Mbps.
	rate := Bitrate(decoded, time.Second)
	if rate < 3.9*netutil.Mbps || rate > 3.95*netutil.Mbps {
		t.Errorf("estimated rate = %v", rate)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err != ErrTruncated {
		t.Errorf("nil err = %v", err)
	}
	bad := make([]byte, 28)
	bad[3] = 4 // version 4
	if _, err := Decode(bad); err != ErrBadVersion {
		t.Errorf("version err = %v", err)
	}
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	dgram, _ := e.Encode([]Sample{{SamplingRate: 1, FrameLength: 100, Header: attackPacket(t, 100)}}, now)
	if _, err := Decode(dgram[:40]); err == nil {
		t.Error("truncated datagram accepted")
	}
}

func TestEncodeEmpty(t *testing.T) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	if _, err := e.Encode(nil, now); err == nil {
		t.Error("empty encode should fail")
	}
}

func FuzzDecode(f *testing.F) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	pkt := packet.Build(
		&packet.IPv4{TTL: 60, Protocol: packet.IPProtoUDP,
			Src: netip.MustParseAddr("192.0.2.10"), Dst: netip.MustParseAddr("203.0.113.7")},
		&packet.UDP{SrcPort: 123, DstPort: 41000},
		packet.Payload(make([]byte, 64)),
	)
	dgram, _ := e.Encode([]Sample{{SamplingRate: 10, FrameLength: uint32(len(pkt)), Header: pkt}}, now)
	f.Add(dgram)
	f.Add([]byte{0, 0, 0, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Decode(data)
		if err != nil {
			return
		}
		_ = d.DecodedPackets() // must not panic on adversarial headers
	})
}

func BenchmarkEncodeDecode(b *testing.B) {
	e := &Exporter{Agent: netip.MustParseAddr("10.99.0.1"), BootTime: boot}
	pkt := packet.Build(
		&packet.IPv4{TTL: 60, Protocol: packet.IPProtoUDP,
			Src: netip.MustParseAddr("192.0.2.10"), Dst: netip.MustParseAddr("203.0.113.7")},
		&packet.UDP{SrcPort: 123, DstPort: 41000},
		packet.Payload(make([]byte, 462)),
	)
	samples := make([]Sample, 32)
	for i := range samples {
		samples[i] = Sample{SamplingRate: 10000, FrameLength: 490, Header: pkt[:MaxHeaderBytes]}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dgram, err := e.Encode(samples, now)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(dgram); err != nil {
			b.Fatal(err)
		}
	}
}
