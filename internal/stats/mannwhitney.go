package stats

import (
	"math"
	"sort"
)

// MannWhitneyResult reports a one-tailed Mann-Whitney U test.
type MannWhitneyResult struct {
	// U is the test statistic of the first sample.
	U float64
	// Z is the normal-approximation score (tie-corrected).
	Z float64
	// P is the one-tailed p-value for H1: before stochastically larger
	// than after.
	P float64
}

// Significant reports significance at alpha.
func (m MannWhitneyResult) Significant(alpha float64) bool { return m.P < alpha }

// MannWhitneyOneTailed performs the one-tailed Mann-Whitney U test for
// H1: values in before tend to be larger than values in after. It is the
// non-parametric robustness companion to WelchOneTailed: daily packet
// sums are heavy-tailed, and an analysis that only holds under the
// t-test's normality leniency would be fragile.
//
// The p-value uses the normal approximation with tie correction and a
// continuity correction — accurate for the study's window sizes
// (n >= 30).
func MannWhitneyOneTailed(before, after []float64) (MannWhitneyResult, error) {
	n1, n2 := len(before), len(after)
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, ErrInsufficientData
	}
	type obs struct {
		v     float64
		first bool
	}
	all := make([]obs, 0, n1+n2)
	for _, v := range before {
		all = append(all, obs{v, true})
	}
	for _, v := range after {
		all = append(all, obs{v, false})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })

	// Assign mid-ranks, accumulating the tie correction term.
	ranks := make([]float64, len(all))
	var tieTerm float64
	for i := 0; i < len(all); {
		j := i
		for j < len(all) && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	var r1 float64
	for i, o := range all {
		if o.first {
			r1 += ranks[i]
		}
	}
	fn1, fn2 := float64(n1), float64(n2)
	u1 := r1 - fn1*(fn1+1)/2
	mean := fn1 * fn2 / 2
	n := fn1 + fn2
	variance := fn1 * fn2 / 12 * ((n + 1) - tieTerm/(n*(n-1)))
	res := MannWhitneyResult{U: u1}
	if variance <= 0 {
		// All values identical: no evidence either way.
		res.P = 1
		return res, nil
	}
	// One-tailed: H1 says before > after, i.e. U1 large. Continuity
	// correction of 0.5 toward the mean.
	res.Z = (u1 - mean - 0.5) / math.Sqrt(variance)
	res.P = 1 - normCDF(res.Z)
	return res, nil
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
