package stats

import (
	"math"
	"testing"

	"booterscope/internal/netutil"
)

func TestMannWhitneyDetectsShift(t *testing.T) {
	r := netutil.NewRand(9)
	before := make([]float64, 40)
	after := make([]float64, 40)
	for i := range before {
		before[i] = r.Normal(1000, 100)
		after[i] = r.Normal(600, 100)
	}
	res, err := MannWhitneyOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("clear shift not significant: p=%v", res.P)
	}
	if res.Z <= 0 {
		t.Errorf("Z = %v, want positive for a drop", res.Z)
	}
}

func TestMannWhitneyNoShift(t *testing.T) {
	r := netutil.NewRand(10)
	before := make([]float64, 40)
	after := make([]float64, 40)
	for i := range before {
		before[i] = r.Normal(1000, 100)
		after[i] = r.Normal(1000, 100)
	}
	res, err := MannWhitneyOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("flat samples flagged: p=%v", res.P)
	}
}

func TestMannWhitneyIncreaseNotFlagged(t *testing.T) {
	r := netutil.NewRand(11)
	before := make([]float64, 40)
	after := make([]float64, 40)
	for i := range before {
		before[i] = r.Normal(600, 50)
		after[i] = r.Normal(1000, 50)
	}
	res, err := MannWhitneyOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("increase flagged as reduction: p=%v", res.P)
	}
	if res.P < 0.95 {
		t.Errorf("p = %v, want near 1", res.P)
	}
}

func TestMannWhitneyHeavyTailRobustness(t *testing.T) {
	// The motivation for the ablation: a single extreme outlier in the
	// "after" window drags the mean up and can mask a real median drop
	// from the t-test; the rank test ignores magnitude.
	r := netutil.NewRand(12)
	before := make([]float64, 30)
	after := make([]float64, 30)
	for i := range before {
		before[i] = r.Normal(1000, 50)
		after[i] = r.Normal(500, 50)
	}
	after[0] = 1e9 // one monster day

	mw, err := MannWhitneyOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if !mw.Significant(0.05) {
		t.Errorf("rank test lost the drop to an outlier: p=%v", mw.P)
	}
	welch, err := WelchOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if welch.Significant(0.05) {
		t.Errorf("expected the t-test to be masked by the outlier (p=%v); the ablation premise fails", welch.P)
	}
}

func TestMannWhitneyKnownSmallSample(t *testing.T) {
	// Hand-computed: before = {5,6,7}, after = {1,2,3}; all before ranks
	// above all after ranks. R1 = 4+5+6 = 15, U1 = 15-6 = 9 (max), mean
	// = 4.5, var = 3*3*7/12 = 5.25.
	res, err := MannWhitneyOneTailed([]float64{5, 6, 7}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.U != 9 {
		t.Errorf("U = %v, want 9", res.U)
	}
	wantZ := (9 - 4.5 - 0.5) / math.Sqrt(5.25)
	if math.Abs(res.Z-wantZ) > 1e-12 {
		t.Errorf("Z = %v, want %v", res.Z, wantZ)
	}
}

func TestMannWhitneyTies(t *testing.T) {
	// Heavy ties must not panic and must keep a sane p-value.
	before := []float64{2, 2, 2, 2, 3, 3}
	after := []float64{1, 1, 2, 2, 2, 1}
	res, err := MannWhitneyOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if res.P <= 0 || res.P >= 1 {
		t.Errorf("p = %v", res.P)
	}
	// Identical constant samples: no evidence.
	same, err := MannWhitneyOneTailed([]float64{5, 5, 5}, []float64{5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if same.P != 1 {
		t.Errorf("identical samples p = %v, want 1", same.P)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyOneTailed([]float64{1}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("err = %v", err)
	}
}

func TestNormCDF(t *testing.T) {
	cases := map[float64]float64{0: 0.5, 1.96: 0.975, -1.96: 0.025, 3: 0.99865}
	for z, want := range cases {
		if got := normCDF(z); math.Abs(got-want) > 1e-4 {
			t.Errorf("normCDF(%v) = %v, want %v", z, got, want)
		}
	}
}

func BenchmarkMannWhitney(b *testing.B) {
	r := netutil.NewRand(1)
	before := make([]float64, 40)
	after := make([]float64, 40)
	for i := range before {
		before[i] = r.Normal(1000, 100)
		after[i] = r.Normal(700, 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MannWhitneyOneTailed(before, after); err != nil {
			b.Fatal(err)
		}
	}
}
