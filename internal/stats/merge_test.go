package stats

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestHistogramMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	serial := NewHistogram(0, 1500, 75)
	shards := []*Histogram{NewHistogram(0, 1500, 75), NewHistogram(0, 1500, 75)}
	for i := 0; i < 10_000; i++ {
		// Include out-of-range values so Underflow/Overflow merge too.
		x := float64(rng.Intn(1800)) - 100
		serial.Add(x)
		shards[rng.Intn(len(shards))].Add(x)
	}
	merged := NewHistogram(0, 1500, 75)
	merged.Merge(shards[1])
	merged.Merge(shards[0])
	if !reflect.DeepEqual(merged, serial) {
		t.Fatalf("merged = %+v\nserial = %+v", merged, serial)
	}
}

func TestHistogramMergeRejectsLayoutMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched layouts did not panic")
		}
	}()
	NewHistogram(0, 1500, 75).Merge(NewHistogram(0, 1500, 10))
}
