// Package stats implements the statistical machinery of the takedown
// analysis: descriptive statistics, the one-tailed Welch unequal-variances
// t-test (the paper's wt30/wt40 metrics), empirical CDFs and histograms
// (Figure 2), and quantiles.
//
// The Student-t CDF is computed from the regularized incomplete beta
// function, evaluated with a Lentz continued fraction — no external math
// dependencies.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData reports a computation that needs more samples.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 with fewer than
// two samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th quantile (0..1) of xs using linear
// interpolation between order statistics. xs need not be sorted.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// lnBeta returns ln(B(a, b)).
func lnBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued fraction expansion (Numerical Recipes
// §6.4, modified Lentz method).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lnBeta(a, b)) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Use the symmetry relation for faster convergence.
	frontSym := math.Exp(b*math.Log(1-x)+a*math.Log(x)-lnBeta(a, b)) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTCDF returns P(T <= t) for a Student-t distribution with df
// degrees of freedom.
func StudentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t == 0 {
		return 0.5
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// WelchResult reports a Welch unequal-variances t-test.
type WelchResult struct {
	// T is the test statistic (mean(before) - mean(after)) / SE.
	T float64
	// DF is the Welch-Satterthwaite degrees of freedom.
	DF float64
	// P is the one-tailed p-value for H1: mean(before) > mean(after).
	P float64
	// MeanBefore and MeanAfter are the sample means.
	MeanBefore float64
	MeanAfter  float64
}

// Significant reports whether the reduction is significant at alpha.
func (w WelchResult) Significant(alpha float64) bool { return w.P < alpha }

// ReductionRatio returns mean(after)/mean(before) — the paper's
// red30/red40 metric ("average daily packets after the takedown as a
// fraction of before"). It returns +Inf when before is zero but after is
// not, and 1 when both are zero.
func (w WelchResult) ReductionRatio() float64 {
	if w.MeanBefore == 0 {
		if w.MeanAfter == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return w.MeanAfter / w.MeanBefore
}

// WelchOneTailed performs the one-tailed Welch unequal-variances t-test
// for H1: mean(before) > mean(after) — "traffic dropped after the
// takedown". Both samples need at least two observations.
func WelchOneTailed(before, after []float64) (WelchResult, error) {
	if len(before) < 2 || len(after) < 2 {
		return WelchResult{}, ErrInsufficientData
	}
	m1, m2 := Mean(before), Mean(after)
	v1, v2 := Variance(before), Variance(after)
	n1, n2 := float64(len(before)), float64(len(after))
	se2 := v1/n1 + v2/n2
	res := WelchResult{MeanBefore: m1, MeanAfter: m2}
	if se2 == 0 {
		// Degenerate: identical constant samples.
		if m1 > m2 {
			res.T = math.Inf(1)
			res.P = 0
		} else {
			res.T = 0
			res.P = 1
		}
		res.DF = n1 + n2 - 2
		return res, nil
	}
	res.T = (m1 - m2) / math.Sqrt(se2)
	num := se2 * se2
	den := (v1/n1)*(v1/n1)/(n1-1) + (v2/n2)*(v2/n2)/(n2-1)
	res.DF = num / den
	// One-tailed: P(T >= t) under H0.
	res.P = 1 - StudentTCDF(res.T, res.DF)
	return res, nil
}

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from xs (which is copied).
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance past equal values so At is P(X <= x), not P(X < x).
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Len reports the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Points returns (x, P(X <= x)) pairs suitable for plotting, one per
// distinct sample value.
func (e *ECDF) Points() (xs, ps []float64) {
	n := len(e.sorted)
	for i := 0; i < n; i++ {
		if i+1 < n && e.sorted[i+1] == e.sorted[i] {
			continue
		}
		xs = append(xs, e.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	return xs, ps
}

// Histogram bins values into equal-width buckets over [Min, Max).
type Histogram struct {
	Min, Max float64
	Counts   []uint64
	total    uint64
	// Underflow and Overflow count out-of-range observations.
	Underflow uint64
	Overflow  uint64
}

// NewHistogram builds an empty histogram with the given range and bin
// count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]uint64, bins)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Min:
		h.Underflow++
	case x >= h.Max:
		h.Overflow++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total reports the number of observations, including out-of-range ones.
func (h *Histogram) Total() uint64 { return h.total }

// Merge folds other into h. Both histograms must share the same range
// and bin count; per-shard histograms merged this way are exactly the
// histogram a single serial pass would have built, in any merge order.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	if other.Min != h.Min || other.Max != h.Max || len(other.Counts) != len(h.Counts) {
		panic("stats: merging histograms with different layouts")
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	h.total += other.total
	h.Underflow += other.Underflow
	h.Overflow += other.Overflow
}

// PDF returns each bin's fraction of in-range observations.
func (h *Histogram) PDF() []float64 {
	in := h.total - h.Underflow - h.Overflow
	out := make([]float64, len(h.Counts))
	if in == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(in)
	}
	return out
}

// CDF returns the cumulative fraction at each bin's upper edge.
func (h *Histogram) CDF() []float64 {
	pdf := h.PDF()
	out := make([]float64, len(pdf))
	var cum float64
	for i, p := range pdf {
		cum += p
		out[i] = cum
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + w*(float64(i)+0.5)
}

// FractionBelow returns the fraction of in-range observations whose bin
// center lies strictly below x.
func (h *Histogram) FractionBelow(x float64) float64 {
	in := h.total - h.Underflow - h.Overflow
	if in == 0 {
		return 0
	}
	var below uint64
	for i, c := range h.Counts {
		if h.BinCenter(i) < x {
			below += c
		}
	}
	return float64(below) / float64(in)
}
