package stats

import (
	"math"
	"testing"

	"booterscope/internal/netutil"
)

func almost(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, "mean", Mean(xs), 5, 1e-12)
	almost(t, "variance", Variance(xs), 32.0/7, 1e-12)
	almost(t, "stddev", StdDev(xs), math.Sqrt(32.0/7), 1e-12)
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs not zero")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	almost(t, "q0", Quantile(xs, 0), 15, 0)
	almost(t, "q1", Quantile(xs, 1), 50, 0)
	almost(t, "median", Median(xs), 35, 0)
	almost(t, "q0.25", Quantile(xs, 0.25), 20, 1e-12)
	almost(t, "q0.75", Quantile(xs, 0.75), 40, 1e-12)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Input must not be mutated (Quantile sorts a copy).
	ys := []float64{3, 1, 2}
	Quantile(ys, 0.5)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(a,b) reference values.
	almost(t, "I_0.5(1,1)", RegIncBeta(1, 1, 0.5), 0.5, 1e-10)
	almost(t, "I_0.25(2,2)", RegIncBeta(2, 2, 0.25), 0.15625, 1e-10) // 3x^2-2x^3
	almost(t, "I_0.75(2,2)", RegIncBeta(2, 2, 0.75), 0.84375, 1e-10)
	almost(t, "I_0(a,b)", RegIncBeta(3, 4, 0), 0, 0)
	almost(t, "I_1(a,b)", RegIncBeta(3, 4, 1), 1, 0)
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.7, 0.9} {
		lhs := RegIncBeta(2.5, 3.5, x)
		rhs := 1 - RegIncBeta(3.5, 2.5, 1-x)
		almost(t, "symmetry", lhs, rhs, 1e-10)
	}
}

func TestStudentTCDFKnownValues(t *testing.T) {
	// Reference values from standard t tables.
	almost(t, "T(0, 5)", StudentTCDF(0, 5), 0.5, 1e-12)
	// df=1 (Cauchy): CDF(1) = 0.75.
	almost(t, "T(1, 1)", StudentTCDF(1, 1), 0.75, 1e-8)
	// df=10: t=1.812 is the 95th percentile.
	almost(t, "T(1.812, 10)", StudentTCDF(1.812, 10), 0.95, 5e-4)
	// df=30: t=2.042 ~ 97.5th percentile... that's df=30 two-tailed 0.05.
	almost(t, "T(2.042, 30)", StudentTCDF(2.042, 30), 0.975, 5e-4)
	// Symmetry.
	almost(t, "sym", StudentTCDF(-1.5, 7), 1-StudentTCDF(1.5, 7), 1e-10)
	// Large df approaches the normal distribution: CDF(1.96) ~ 0.975.
	almost(t, "normal limit", StudentTCDF(1.96, 1e6), 0.975, 1e-3)
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("df=0 should be NaN")
	}
}

func TestWelchSignificantReduction(t *testing.T) {
	// Clearly separated samples: traffic halves after the takedown.
	r := netutil.NewRand(3)
	before := make([]float64, 30)
	after := make([]float64, 30)
	for i := range before {
		before[i] = r.Normal(1000, 50)
		after[i] = r.Normal(500, 80)
	}
	res, err := WelchOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) {
		t.Errorf("obvious reduction not significant: p=%v", res.P)
	}
	if res.T <= 0 {
		t.Errorf("T = %v, want positive", res.T)
	}
	almost(t, "reduction ratio", res.ReductionRatio(), 0.5, 0.1)
	if res.DF < 30 || res.DF > 58 {
		t.Errorf("Welch df = %v, want within (30, 58)", res.DF)
	}
}

func TestWelchNoChange(t *testing.T) {
	r := netutil.NewRand(4)
	before := make([]float64, 30)
	after := make([]float64, 30)
	for i := range before {
		before[i] = r.Normal(1000, 100)
		after[i] = r.Normal(1000, 100)
	}
	res, err := WelchOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("no-change samples flagged significant: p=%v", res.P)
	}
}

func TestWelchIncrease(t *testing.T) {
	// One-tailed test for reduction must NOT fire when traffic grows.
	r := netutil.NewRand(5)
	before := make([]float64, 30)
	after := make([]float64, 30)
	for i := range before {
		before[i] = r.Normal(500, 50)
		after[i] = r.Normal(1000, 50)
	}
	res, err := WelchOneTailed(before, after)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Errorf("increase flagged as significant reduction: p=%v", res.P)
	}
	if res.P < 0.95 {
		t.Errorf("p = %v, want near 1 for strong increase", res.P)
	}
}

func TestWelchAgainstReference(t *testing.T) {
	// Cross-checked with scipy.stats.ttest_ind(equal_var=False).
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	res, err := WelchOneTailed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values verified independently by numerically integrating
	// the Student-t density: t = -2.83526, df = 27.7136,
	// P(T >= t) = 0.99577363.
	almost(t, "T", res.T, -2.8352638, 1e-6)
	almost(t, "DF", res.DF, 27.713626, 1e-5)
	almost(t, "P one-tailed", res.P, 0.99577363, 1e-7)
}

func TestWelchDegenerate(t *testing.T) {
	if _, err := WelchOneTailed([]float64{1}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("err = %v", err)
	}
	res, err := WelchOneTailed([]float64{5, 5, 5}, []float64{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant(0.05) || res.P != 0 {
		t.Errorf("constant drop: p=%v", res.P)
	}
	same, _ := WelchOneTailed([]float64{5, 5}, []float64{5, 5})
	if same.Significant(0.05) {
		t.Error("identical constants flagged significant")
	}
}

func TestReductionRatioEdgeCases(t *testing.T) {
	r := WelchResult{MeanBefore: 0, MeanAfter: 0}
	if r.ReductionRatio() != 1 {
		t.Error("0/0 ratio should be 1")
	}
	r = WelchResult{MeanBefore: 0, MeanAfter: 5}
	if !math.IsInf(r.ReductionRatio(), 1) {
		t.Error("x/0 ratio should be +Inf")
	}
	r = WelchResult{MeanBefore: 100, MeanAfter: 22.5}
	almost(t, "ratio", r.ReductionRatio(), 0.225, 1e-12)
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3, 10})
	almost(t, "At(0)", e.At(0), 0, 0)
	almost(t, "At(1)", e.At(1), 0.2, 1e-12)
	almost(t, "At(2)", e.At(2), 0.6, 1e-12)
	almost(t, "At(5)", e.At(5), 0.8, 1e-12)
	almost(t, "At(10)", e.At(10), 1, 0)
	if e.Len() != 5 {
		t.Errorf("Len = %d", e.Len())
	}
	xs, ps := e.Points()
	if len(xs) != 4 || xs[1] != 2 || ps[1] != 0.6 {
		t.Errorf("points = %v %v", xs, ps)
	}
	if !math.IsNaN(NewECDF(nil).At(1)) {
		t.Error("empty ECDF should be NaN")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 50; i++ {
		h.Add(5) // bin 0
	}
	for i := 0; i < 50; i++ {
		h.Add(95) // bin 9
	}
	h.Add(-1)  // underflow
	h.Add(100) // overflow (max is exclusive)
	if h.Total() != 102 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	pdf := h.PDF()
	almost(t, "pdf[0]", pdf[0], 0.5, 1e-12)
	almost(t, "pdf[9]", pdf[9], 0.5, 1e-12)
	cdf := h.CDF()
	almost(t, "cdf[0]", cdf[0], 0.5, 1e-12)
	almost(t, "cdf[9]", cdf[9], 1, 1e-12)
	almost(t, "center0", h.BinCenter(0), 5, 1e-12)
	almost(t, "below50", h.FractionBelow(50), 0.5, 1e-12)
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, p := range h.PDF() {
		if p != 0 {
			t.Error("empty histogram PDF not zero")
		}
	}
	if h.FractionBelow(5) != 0 {
		t.Error("empty FractionBelow not zero")
	}
}

func BenchmarkWelch(b *testing.B) {
	r := netutil.NewRand(1)
	before := make([]float64, 40)
	after := make([]float64, 40)
	for i := range before {
		before[i] = r.Normal(1000, 100)
		after[i] = r.Normal(800, 100)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := WelchOneTailed(before, after); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStudentTCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = StudentTCDF(1.7, 57.3)
	}
}
