package takedown

import (
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/pipe"
	"booterscope/internal/trafficgen"
)

// Source streams flow records in batches to a visitor. It is the seam
// between the takedown analyses and where the records come from: a
// live traffic generator (ScenarioSource), a collector, or a flowstore
// archive replayed with ScanBatches. Every aggregation below is
// order-insensitive — integer-valued daily sums and per-key maps — so
// any delivery order over the same record multiset yields identical
// results; that is the replay-equals-live guarantee the flowstore
// relies on, and what lets the same Source drive a sharded pipeline.
//
// Source has the same shape as pipe.Source: ownership of each emitted
// batch passes to emit, and an error returned by emit must be
// propagated immediately — that is how early exit and cancellation
// reach the producer.
type Source func(emit func(*pipe.Batch) error) error

// Records adapts the batch stream to the per-record visitor form the
// analyses used before the pipeline existed. Errors from fn cancel the
// stream and are returned.
func (s Source) Records(fn func(*flow.Record) error) error {
	return s(func(b *pipe.Batch) error {
		defer b.Release()
		recs := b.Records()
		for i := range recs {
			if err := fn(&recs[i]); err != nil {
				return err
			}
		}
		return nil
	})
}

// FromRecords adapts a per-record stream function (the old Source
// form) to the batch form, re-slabbing records into pooled batches.
func FromRecords(stream func(fn func(*flow.Record) error) error) Source {
	return func(emit func(*pipe.Batch) error) error {
		b := pipe.NewBatch()
		err := stream(func(rec *flow.Record) error {
			b.Recs = append(b.Recs, *rec)
			if b.Len() >= pipe.DefaultBatchSize {
				full := b
				b = pipe.NewBatch()
				return emit(full)
			}
			return nil
		})
		if err != nil {
			b.Release()
			return err
		}
		if b.Len() > 0 {
			return emit(b)
		}
		b.Release()
		return nil
	}
}

// ScenarioSource streams one vantage point's records from the live
// generator, one batch per day.
func ScenarioSource(s *trafficgen.Scenario, k trafficgen.Kind) Source {
	return func(emit func(*pipe.Batch) error) error {
		cfg := s.Config()
		for day := 0; day < cfg.Days; day++ {
			if err := emit(pipe.Wrap(s.Day(k, day))); err != nil {
				return err
			}
		}
		return nil
	}
}

// Window bounds an analysis: the day grid records are binned onto and
// the event date tested against it.
type Window struct {
	// Start is the first day of the window (UTC midnight).
	Start time.Time
	// Days is the window length in days.
	Days int
	// Takedown is the event date for the before/after split.
	Takedown time.Time
}

// WindowOf extracts the analysis window from a scenario config.
func WindowOf(cfg trafficgen.Config) Window {
	return Window{Start: cfg.Start, Days: cfg.Days, Takedown: cfg.Takedown}
}

// DayTime maps a record start time onto its window day. Trigger records
// never cross midnight, so this reproduces the generator's day binning
// exactly when replaying from an archive.
func (w Window) DayTime(t time.Time) time.Time {
	const day = 24 * time.Hour
	return w.Start.Add(t.Sub(w.Start) / day * day)
}

// DayTimeSec is DayTime from whole seconds only. For records at or
// after the (whole-second) window start, sub-second precision cannot
// move the day bin — the distance to the next day boundary is always a
// whole number of seconds — so columnar consumers can bin on the start
// seconds column and skip decoding nanoseconds.
func (w Window) DayTimeSec(sec int64) time.Time {
	const day = 24 * time.Hour
	return w.Start.Add(time.Unix(sec, 0).Sub(w.Start) / day * day)
}

// DayTimes enumerates the window's day grid.
func (w Window) DayTimes() []time.Time {
	out := make([]time.Time, w.Days)
	for i := range out {
		out[i] = w.Start.Add(time.Duration(i) * 24 * time.Hour)
	}
	return out
}
