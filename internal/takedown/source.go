package takedown

import (
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/trafficgen"
)

// Source streams flow records to a visitor. It is the seam between the
// takedown analyses and where the records come from: a live traffic
// generator (ScenarioSource), a collector, or a flowstore archive
// replayed with Scan. Every aggregation below is order-insensitive —
// integer-valued daily sums and per-key maps — so any delivery order
// over the same record multiset yields identical results; that is the
// replay-equals-live guarantee the flowstore relies on.
type Source func(fn func(*flow.Record) error) error

// ScenarioSource streams one vantage point's records from the live
// generator, day by day.
func ScenarioSource(s *trafficgen.Scenario, k trafficgen.Kind) Source {
	return func(fn func(*flow.Record) error) error {
		cfg := s.Config()
		for day := 0; day < cfg.Days; day++ {
			for _, rec := range s.Day(k, day) {
				rec := rec
				if err := fn(&rec); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// Window bounds an analysis: the day grid records are binned onto and
// the event date tested against it.
type Window struct {
	// Start is the first day of the window (UTC midnight).
	Start time.Time
	// Days is the window length in days.
	Days int
	// Takedown is the event date for the before/after split.
	Takedown time.Time
}

// WindowOf extracts the analysis window from a scenario config.
func WindowOf(cfg trafficgen.Config) Window {
	return Window{Start: cfg.Start, Days: cfg.Days, Takedown: cfg.Takedown}
}

// DayTime maps a record start time onto its window day. Trigger records
// never cross midnight, so this reproduces the generator's day binning
// exactly when replaying from an archive.
func (w Window) DayTime(t time.Time) time.Time {
	const day = 24 * time.Hour
	return w.Start.Add(t.Sub(w.Start) / day * day)
}

// DayTimes enumerates the window's day grid.
func (w Window) DayTimes() []time.Time {
	out := make([]time.Time, w.Days)
	for i := range out {
		out[i] = w.Start.Add(time.Duration(i) * 24 * time.Hour)
	}
	return out
}
