package takedown

import (
	"errors"
	"testing"

	"booterscope/internal/flow"
	"booterscope/internal/pipe"
	"booterscope/internal/trafficgen"
)

// TestScenarioSourceStopsOnEmitError is the cancellation-propagation
// regression test: when emit fails, the source must return that error
// immediately and emit no further batches.
func TestScenarioSourceStopsOnEmitError(t *testing.T) {
	s := trafficgen.NewScenario(trafficgen.Config{Seed: 7, Days: 6})
	src := ScenarioSource(s, trafficgen.KindTier1)

	stop := errors.New("stop early")
	emits := 0
	err := src(func(b *pipe.Batch) error {
		b.Release()
		emits++
		if emits == 2 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("source error = %v, want %v", err, stop)
	}
	if emits != 2 {
		t.Fatalf("source emitted %d batches after emit cancelled on the 2nd", emits)
	}
}

// TestFromRecordsStopsOnEmitError: the re-slabbing adapter must
// propagate emit errors back into the underlying stream and release
// the partial batch instead of leaking it.
func TestFromRecordsStopsOnEmitError(t *testing.T) {
	n := 3*pipe.DefaultBatchSize + 17
	streamed := 0
	stream := func(fn func(*flow.Record) error) error {
		var r flow.Record
		for i := 0; i < n; i++ {
			streamed++
			if err := fn(&r); err != nil {
				return err
			}
		}
		return nil
	}

	stop := errors.New("stop early")
	emits := 0
	err := FromRecords(stream)(func(b *pipe.Batch) error {
		b.Release()
		emits++
		return stop
	})
	if !errors.Is(err, stop) {
		t.Fatalf("source error = %v, want %v", err, stop)
	}
	if emits != 1 {
		t.Fatalf("adapter emitted %d batches after the first was rejected", emits)
	}
	if streamed != pipe.DefaultBatchSize {
		t.Fatalf("underlying stream produced %d records after cancellation, want %d",
			streamed, pipe.DefaultBatchSize)
	}
}

// TestRecordsStopsOnVisitorError: the per-record compat shim must
// cancel the batch stream when the visitor fails.
func TestRecordsStopsOnVisitorError(t *testing.T) {
	s := trafficgen.NewScenario(trafficgen.Config{Seed: 7, Days: 6})
	src := ScenarioSource(s, trafficgen.KindTier1)

	stop := errors.New("stop early")
	seen := 0
	err := src.Records(func(r *flow.Record) error {
		seen++
		if seen == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("records error = %v, want %v", err, stop)
	}
	if seen != 5 {
		t.Fatalf("visitor ran %d times after cancelling at 5", seen)
	}
}
