// Package takedown implements the study's Section 5.2 analysis: the
// effect of the FBI's December 19 2018 seizure of 15 booter domains on
// DDoS traffic, measured as one-tailed Welch tests and reduction ratios
// over ±30/±40-day windows around the event.
//
// Two perspectives are computed, mirroring the paper's figures:
//
//   - Figure 4: daily packet counts toward DDoS reflectors (UDP dst
//     port 123/53/11211) per vantage point — where the takedown shows
//     significant reductions;
//   - Figure 5: systems under NTP attack per hour, using the
//     conservative classification — where no significant reduction
//     appears.
package takedown

import (
	"fmt"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/packet"
	"booterscope/internal/timeseries"
	"booterscope/internal/trafficgen"
)

// Event describes the takedown under study.
type Event struct {
	// Date is the seizure date.
	Date time.Time
	// SeizedDomains is the number of booter domains seized (15).
	SeizedDomains int
}

// FBITakedown is the December 2018 operation.
var FBITakedown = Event{
	Date:          time.Date(2018, 12, 19, 0, 0, 0, 0, time.UTC),
	SeizedDomains: 15,
}

// Figure4Panel is one vantage/vector panel of Figure 4.
type Figure4Panel struct {
	Vantage trafficgen.Kind
	Vector  amplify.Vector
	// Daily is the day-by-day packet count toward the vector's
	// reflectors.
	Daily []timeseries.Point
	// Metrics carries wt30/wt40/red30/red40.
	Metrics timeseries.TakedownMetrics
}

// String summarizes the panel like the paper's annotations.
func (p Figure4Panel) String() string {
	return fmt.Sprintf("packets %v dst port, %v perspective: %v",
		p.Vector, p.Vantage, p.Metrics)
}

// ReflectorVectors are the amplification vectors analyzed in Figure 4.
var ReflectorVectors = []amplify.Vector{amplify.Memcached, amplify.NTP, amplify.DNS}

// Figure4 computes the to-reflector traffic analysis for one vantage
// point of a scenario.
func Figure4(s *trafficgen.Scenario, k trafficgen.Kind) ([]Figure4Panel, error) {
	return Figure4Source(ScenarioSource(s, k), WindowOf(s.Config()), k)
}

// triggerSeries accumulates daily to-reflector packet sums per vector
// from a record stream — the shared aggregation behind Figure 4, its
// robustness ablation, and the direction breakdown. Daily sums are
// integer-valued float64 additions (each well below 2^53), so they are
// exact and independent of record order.
func triggerSeries(src Source, w Window) (map[amplify.Vector]*timeseries.Series, error) {
	series := make(map[amplify.Vector]*timeseries.Series)
	for _, v := range ReflectorVectors {
		series[v] = timeseries.NewDaily()
	}
	err := src(func(rec *flow.Record) error {
		if rec.Protocol != packet.IPProtoUDP {
			return nil
		}
		for _, v := range ReflectorVectors {
			if rec.DstPort == v.Port() {
				series[v].Add(w.DayTime(rec.Start), float64(rec.ScaledPackets()))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// Figure4Source computes the Figure 4 panels from any record stream —
// live generation or a flowstore replay — over the given window. k
// labels the vantage point in the output.
func Figure4Source(src Source, w Window, k trafficgen.Kind) ([]Figure4Panel, error) {
	series, err := triggerSeries(src, w)
	if err != nil {
		return nil, err
	}
	var out []Figure4Panel
	for _, v := range ReflectorVectors {
		label := fmt.Sprintf("packets %v dst port (%v)", v, k)
		metrics, err := timeseries.AnalyzeTakedown(series[v], w.Takedown, label)
		if err != nil {
			return nil, fmt.Errorf("takedown: %s: %w", label, err)
		}
		out = append(out, Figure4Panel{
			Vantage: k,
			Vector:  v,
			Daily:   series[v].Points(),
			Metrics: metrics,
		})
	}
	return out, nil
}

// Figure5Result is the systems-under-attack analysis.
type Figure5Result struct {
	Vantage trafficgen.Kind
	// Hourly is the count of systems under NTP attack per hour.
	Hourly []classify.HourPoint
	// Metrics is the Welch analysis over daily victim counts; the
	// paper's headline result is that neither window is significant.
	Metrics timeseries.TakedownMetrics
}

// Figure5 counts systems under NTP DDoS attack (conservative filter)
// per hour across the scenario and tests for a reduction at the
// takedown.
func Figure5(s *trafficgen.Scenario, k trafficgen.Kind) (*Figure5Result, error) {
	return Figure5Source(ScenarioSource(s, k), WindowOf(s.Config()), k)
}

// Figure5Source computes the systems-under-attack analysis from any
// record stream over the given window. The attack counter is a per-key
// map aggregation, so the result is independent of record order.
func Figure5Source(src Source, w Window, k trafficgen.Kind) (*Figure5Result, error) {
	counter := classify.NewAttackCounter(classify.Config{})
	if err := src(func(rec *flow.Record) error {
		counter.Add(rec)
		return nil
	}); err != nil {
		return nil, err
	}
	hourly := counter.Series()

	daily := timeseries.NewDaily()
	// Pre-fill every window day so attack-free days count as zero.
	for _, dayTime := range w.DayTimes() {
		daily.Add(dayTime, 0)
	}
	for _, hp := range hourly {
		daily.Add(hp.Hour, float64(hp.Count))
	}
	label := fmt.Sprintf("systems under NTP attack (%v)", k)
	metrics, err := timeseries.AnalyzeTakedown(daily, w.Takedown, label)
	if err != nil {
		return nil, fmt.Errorf("takedown: %s: %w", label, err)
	}
	return &Figure5Result{Vantage: k, Hourly: hourly, Metrics: metrics}, nil
}

// Robustness compares the parametric (Welch) and non-parametric
// (Mann-Whitney) verdicts for one vantage point's Figure 4 panels — the
// ablation for the paper's choice of test statistic on heavy-tailed
// daily sums.
type Robustness struct {
	Vector   amplify.Vector
	WelchSig bool
	RankSig  bool
	RankP    float64
}

// Agrees reports whether both tests reach the same verdict.
func (r Robustness) Agrees() bool { return r.WelchSig == r.RankSig }

// Figure4Robustness runs both tests over the ±30-day window for each
// reflector vector.
func Figure4Robustness(s *trafficgen.Scenario, k trafficgen.Kind) ([]Robustness, error) {
	return Figure4RobustnessSource(ScenarioSource(s, k), WindowOf(s.Config()))
}

// Figure4RobustnessSource runs the parametric/non-parametric comparison
// from any record stream.
func Figure4RobustnessSource(src Source, w Window) ([]Robustness, error) {
	series, err := triggerSeries(src, w)
	if err != nil {
		return nil, err
	}
	var out []Robustness
	for _, v := range ReflectorVectors {
		welch, err := timeseries.AnalyzeEvent(series[v], w.Takedown, 30)
		if err != nil {
			return nil, fmt.Errorf("takedown: robustness welch %v: %w", v, err)
		}
		rank, err := timeseries.AnalyzeEventRank(series[v], w.Takedown, 30)
		if err != nil {
			return nil, fmt.Errorf("takedown: robustness rank %v: %w", v, err)
		}
		out = append(out, Robustness{
			Vector:   v,
			WelchSig: welch.Significant,
			RankSig:  rank.Significant(timeseries.Alpha),
			RankP:    rank.P,
		})
	}
	return out, nil
}

// DirectionBreakdown computes Figure 4-style metrics separately for
// ingress and egress trigger traffic (the paper scanned all
// port/direction combinations; the tier-2 ISP contributes both
// directions).
func DirectionBreakdown(s *trafficgen.Scenario, k trafficgen.Kind, v amplify.Vector) (map[flow.Direction]timeseries.TakedownMetrics, error) {
	return DirectionBreakdownSource(ScenarioSource(s, k), WindowOf(s.Config()), k, v)
}

// DirectionBreakdownSource computes the per-direction metrics from any
// record stream.
func DirectionBreakdownSource(src Source, w Window, k trafficgen.Kind, v amplify.Vector) (map[flow.Direction]timeseries.TakedownMetrics, error) {
	series := map[flow.Direction]*timeseries.Series{
		flow.Ingress: timeseries.NewDaily(),
		flow.Egress:  timeseries.NewDaily(),
	}
	if err := src(func(rec *flow.Record) error {
		if rec.Protocol == packet.IPProtoUDP && rec.DstPort == v.Port() {
			series[rec.Direction].Add(w.DayTime(rec.Start), float64(rec.ScaledPackets()))
		}
		return nil
	}); err != nil {
		return nil, err
	}
	out := make(map[flow.Direction]timeseries.TakedownMetrics, 2)
	for dir, ser := range series {
		if ser.Sum() == 0 {
			continue
		}
		label := fmt.Sprintf("packets %v dst port %v (%v)", v, dir, k)
		metrics, err := timeseries.AnalyzeTakedown(ser, w.Takedown, label)
		if err != nil {
			return nil, fmt.Errorf("takedown: %s: %w", label, err)
		}
		out[dir] = metrics
	}
	return out, nil
}
