// Package takedown implements the study's Section 5.2 analysis: the
// effect of the FBI's December 19 2018 seizure of 15 booter domains on
// DDoS traffic, measured as one-tailed Welch tests and reduction ratios
// over ±30/±40-day windows around the event.
//
// Two perspectives are computed, mirroring the paper's figures:
//
//   - Figure 4: daily packet counts toward DDoS reflectors (UDP dst
//     port 123/53/11211) per vantage point — where the takedown shows
//     significant reductions;
//   - Figure 5: systems under NTP attack per hour, using the
//     conservative classification — where no significant reduction
//     appears.
//
// Every analysis runs on the batch pipeline (internal/pipe): records
// are hash-fanned across par shard stages, each shard aggregates
// locally, and shard results merge exactly — the sums are
// integer-valued and the maps victim-disjoint — so any parallelism
// yields byte-identical output to the serial pass.
package takedown

import (
	"fmt"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/packet"
	"booterscope/internal/pipe"
	"booterscope/internal/timeseries"
	"booterscope/internal/trafficgen"
)

// Event describes the takedown under study.
type Event struct {
	// Date is the seizure date.
	Date time.Time
	// SeizedDomains is the number of booter domains seized (15).
	SeizedDomains int
}

// FBITakedown is the December 2018 operation.
var FBITakedown = Event{
	Date:          time.Date(2018, 12, 19, 0, 0, 0, 0, time.UTC),
	SeizedDomains: 15,
}

// Figure4Panel is one vantage/vector panel of Figure 4.
type Figure4Panel struct {
	Vantage trafficgen.Kind
	Vector  amplify.Vector
	// Daily is the day-by-day packet count toward the vector's
	// reflectors.
	Daily []timeseries.Point
	// Metrics carries wt30/wt40/red30/red40.
	Metrics timeseries.TakedownMetrics
}

// String summarizes the panel like the paper's annotations.
func (p Figure4Panel) String() string {
	return fmt.Sprintf("packets %v dst port, %v perspective: %v",
		p.Vector, p.Vantage, p.Metrics)
}

// ReflectorVectors are the amplification vectors analyzed in Figure 4.
var ReflectorVectors = []amplify.Vector{amplify.Memcached, amplify.NTP, amplify.DNS}

// runSharded drives src through par shard stages built by mk, routed
// by victim hash.
func runSharded(src Source, par int, mk func() pipe.Stage) error {
	if par < 1 {
		par = 1
	}
	stages := make([]pipe.Stage, par)
	for i := range stages {
		stages[i] = mk()
	}
	return pipe.RunShardedCols(pipe.Source(src), pipe.KeyDst, pipe.KeyDstCols, stages...)
}

// newVectorSeries allocates one daily series per reflector vector.
func newVectorSeries() map[amplify.Vector]*timeseries.Series {
	series := make(map[amplify.Vector]*timeseries.Series, len(ReflectorVectors))
	for _, v := range ReflectorVectors {
		series[v] = timeseries.NewDaily()
	}
	return series
}

// triggerStage accumulates one shard's daily to-reflector packet sums
// per vector — the shared aggregation behind Figure 4, its robustness
// ablation, and the direction breakdown. Daily sums are integer-valued
// float64 additions (each well below 2^53), so they are exact and
// independent of record order and sharding; Close folds the shard's
// series into the merge target (the engine serializes Closes).
type triggerStage struct {
	w      Window
	into   map[amplify.Vector]*timeseries.Series
	series map[amplify.Vector]*timeseries.Series
	// ports/byPort flatten the vector lookup off the per-record path.
	ports  []uint16
	byPort []*timeseries.Series
}

func newTriggerStage(w Window, into map[amplify.Vector]*timeseries.Series) *triggerStage {
	t := &triggerStage{w: w, into: into, series: newVectorSeries()}
	for _, v := range ReflectorVectors {
		t.ports = append(t.ports, v.Port())
		t.byPort = append(t.byPort, t.series[v])
	}
	return t
}

// Process implements pipe.Stage. Columnar batches aggregate straight
// from the port/proto columns; no record is materialized.
func (t *triggerStage) Process(b *pipe.Batch) error {
	if c := b.Cols; c != nil {
		for i, n := 0, c.Len(); i < n; i++ {
			if c.Proto[i] != packet.IPProtoUDP {
				continue
			}
			for j, p := range t.ports {
				if c.DstPort[i] == p {
					t.byPort[j].Add(t.w.DayTimeSec(c.StartSec[i]), float64(c.ScaledPackets(i)))
					break
				}
			}
		}
		return nil
	}
	for i := range b.Recs {
		rec := &b.Recs[i]
		if rec.Protocol != packet.IPProtoUDP {
			continue
		}
		for j, p := range t.ports {
			if rec.DstPort == p {
				t.byPort[j].Add(t.w.DayTime(rec.Start), float64(rec.ScaledPackets()))
				break
			}
		}
	}
	return nil
}

// Close implements pipe.Stage: the exact shard merge.
func (t *triggerStage) Close() error {
	for v, s := range t.into {
		s.Merge(t.series[v])
	}
	return nil
}

// counterStage accumulates one shard's systems-under-attack state.
type counterStage struct {
	into    *classify.AttackCounter
	counter *classify.AttackCounter
}

func newCounterStage(into *classify.AttackCounter) *counterStage {
	return &counterStage{into: into, counter: classify.NewAttackCounter(classify.Config{})}
}

// Process implements pipe.Stage.
func (c *counterStage) Process(b *pipe.Batch) error {
	if cols := b.Cols; cols != nil {
		for i, n := 0, cols.Len(); i < n; i++ {
			c.counter.AddCols(cols, i)
		}
		return nil
	}
	for i := range b.Recs {
		c.counter.Add(&b.Recs[i])
	}
	return nil
}

// Close implements pipe.Stage.
func (c *counterStage) Close() error {
	c.into.Merge(c.counter)
	return nil
}

// triggerSeries runs the trigger aggregation over src with par shards.
func triggerSeries(src Source, w Window, par int) (map[amplify.Vector]*timeseries.Series, error) {
	merged := newVectorSeries()
	err := runSharded(src, par, func() pipe.Stage { return newTriggerStage(w, merged) })
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// panelsFromSeries finishes Figure 4 from the merged trigger series.
func panelsFromSeries(series map[amplify.Vector]*timeseries.Series, w Window, k trafficgen.Kind) ([]Figure4Panel, error) {
	var out []Figure4Panel
	for _, v := range ReflectorVectors {
		label := fmt.Sprintf("packets %v dst port (%v)", v, k)
		metrics, err := timeseries.AnalyzeTakedown(series[v], w.Takedown, label)
		if err != nil {
			return nil, fmt.Errorf("takedown: %s: %w", label, err)
		}
		out = append(out, Figure4Panel{
			Vantage: k,
			Vector:  v,
			Daily:   series[v].Points(),
			Metrics: metrics,
		})
	}
	return out, nil
}

// Figure4 computes the to-reflector traffic analysis for one vantage
// point of a scenario.
func Figure4(s *trafficgen.Scenario, k trafficgen.Kind) ([]Figure4Panel, error) {
	return Figure4Source(ScenarioSource(s, k), WindowOf(s.Config()), k, 1)
}

// Figure4Source computes the Figure 4 panels from any record stream —
// live generation or a flowstore replay — over the given window,
// sharded par ways. k labels the vantage point in the output.
func Figure4Source(src Source, w Window, k trafficgen.Kind, par int) ([]Figure4Panel, error) {
	series, err := triggerSeries(src, w, par)
	if err != nil {
		return nil, err
	}
	return panelsFromSeries(series, w, k)
}

// Figure5Result is the systems-under-attack analysis.
type Figure5Result struct {
	Vantage trafficgen.Kind
	// Hourly is the count of systems under NTP attack per hour.
	Hourly []classify.HourPoint
	// Metrics is the Welch analysis over daily victim counts; the
	// paper's headline result is that neither window is significant.
	Metrics timeseries.TakedownMetrics
}

// Figure5 counts systems under NTP DDoS attack (conservative filter)
// per hour across the scenario and tests for a reduction at the
// takedown.
func Figure5(s *trafficgen.Scenario, k trafficgen.Kind) (*Figure5Result, error) {
	return Figure5Source(ScenarioSource(s, k), WindowOf(s.Config()), k, 1)
}

// figure5FromCounter finishes the Figure 5 analysis from the merged
// attack counter.
func figure5FromCounter(counter *classify.AttackCounter, w Window, k trafficgen.Kind) (*Figure5Result, error) {
	hourly := counter.Series()

	daily := timeseries.NewDaily()
	// Pre-fill every window day so attack-free days count as zero.
	for _, dayTime := range w.DayTimes() {
		daily.Add(dayTime, 0)
	}
	for _, hp := range hourly {
		daily.Add(hp.Hour, float64(hp.Count))
	}
	label := fmt.Sprintf("systems under NTP attack (%v)", k)
	metrics, err := timeseries.AnalyzeTakedown(daily, w.Takedown, label)
	if err != nil {
		return nil, fmt.Errorf("takedown: %s: %w", label, err)
	}
	return &Figure5Result{Vantage: k, Hourly: hourly, Metrics: metrics}, nil
}

// Figure5Source computes the systems-under-attack analysis from any
// record stream over the given window, sharded par ways. The attack
// counter is a per-victim map aggregation with an exact merge, so the
// result is independent of record order and shard count.
func Figure5Source(src Source, w Window, k trafficgen.Kind, par int) (*Figure5Result, error) {
	counter := classify.NewAttackCounter(classify.Config{})
	err := runSharded(src, par, func() pipe.Stage { return newCounterStage(counter) })
	if err != nil {
		return nil, err
	}
	return figure5FromCounter(counter, w, k)
}

// Robustness compares the parametric (Welch) and non-parametric
// (Mann-Whitney) verdicts for one vantage point's Figure 4 panels — the
// ablation for the paper's choice of test statistic on heavy-tailed
// daily sums.
type Robustness struct {
	Vector   amplify.Vector
	WelchSig bool
	RankSig  bool
	RankP    float64
}

// Agrees reports whether both tests reach the same verdict.
func (r Robustness) Agrees() bool { return r.WelchSig == r.RankSig }

// Figure4Robustness runs both tests over the ±30-day window for each
// reflector vector.
func Figure4Robustness(s *trafficgen.Scenario, k trafficgen.Kind) ([]Robustness, error) {
	return Figure4RobustnessSource(ScenarioSource(s, k), WindowOf(s.Config()), 1)
}

// robustnessFromSeries finishes the test comparison from the merged
// trigger series.
func robustnessFromSeries(series map[amplify.Vector]*timeseries.Series, w Window) ([]Robustness, error) {
	var out []Robustness
	for _, v := range ReflectorVectors {
		welch, err := timeseries.AnalyzeEvent(series[v], w.Takedown, 30)
		if err != nil {
			return nil, fmt.Errorf("takedown: robustness welch %v: %w", v, err)
		}
		rank, err := timeseries.AnalyzeEventRank(series[v], w.Takedown, 30)
		if err != nil {
			return nil, fmt.Errorf("takedown: robustness rank %v: %w", v, err)
		}
		out = append(out, Robustness{
			Vector:   v,
			WelchSig: welch.Significant,
			RankSig:  rank.Significant(timeseries.Alpha),
			RankP:    rank.P,
		})
	}
	return out, nil
}

// Figure4RobustnessSource runs the parametric/non-parametric comparison
// from any record stream, sharded par ways.
func Figure4RobustnessSource(src Source, w Window, par int) ([]Robustness, error) {
	series, err := triggerSeries(src, w, par)
	if err != nil {
		return nil, err
	}
	return robustnessFromSeries(series, w)
}

// Analysis bundles everything one pass over a vantage point's records
// can produce.
type Analysis struct {
	Figure4    []Figure4Panel
	Figure5    *Figure5Result
	Robustness []Robustness
}

// Analyze computes Figure 4, Figure 5, and the robustness ablation in
// a single sharded pass over the record stream: each shard runs the
// trigger and attack-counter aggregations side by side on the same
// batches, so the source is scanned once instead of once per figure.
// Results are byte-identical to the separate per-figure passes at any
// par.
func Analyze(src Source, w Window, k trafficgen.Kind, par int) (*Analysis, error) {
	series := newVectorSeries()
	counter := classify.NewAttackCounter(classify.Config{})
	err := runSharded(src, par, func() pipe.Stage {
		return pipe.MultiStage(newTriggerStage(w, series), newCounterStage(counter))
	})
	if err != nil {
		return nil, err
	}
	fig4, err := panelsFromSeries(series, w, k)
	if err != nil {
		return nil, err
	}
	rob, err := robustnessFromSeries(series, w)
	if err != nil {
		return nil, err
	}
	fig5, err := figure5FromCounter(counter, w, k)
	if err != nil {
		return nil, err
	}
	return &Analysis{Figure4: fig4, Figure5: fig5, Robustness: rob}, nil
}

// DirectionBreakdown computes Figure 4-style metrics separately for
// ingress and egress trigger traffic (the paper scanned all
// port/direction combinations; the tier-2 ISP contributes both
// directions).
func DirectionBreakdown(s *trafficgen.Scenario, k trafficgen.Kind, v amplify.Vector) (map[flow.Direction]timeseries.TakedownMetrics, error) {
	return DirectionBreakdownSource(ScenarioSource(s, k), WindowOf(s.Config()), k, v, 1)
}

// directionStage accumulates one shard's per-direction daily sums for
// a single vector.
type directionStage struct {
	w      Window
	v      amplify.Vector
	into   map[flow.Direction]*timeseries.Series
	series map[flow.Direction]*timeseries.Series
}

func newDirectionStage(w Window, v amplify.Vector, into map[flow.Direction]*timeseries.Series) *directionStage {
	return &directionStage{
		w: w, v: v, into: into,
		series: map[flow.Direction]*timeseries.Series{
			flow.Ingress: timeseries.NewDaily(),
			flow.Egress:  timeseries.NewDaily(),
		},
	}
}

// Process implements pipe.Stage.
func (d *directionStage) Process(b *pipe.Batch) error {
	if c := b.Cols; c != nil {
		port := d.v.Port()
		for i, n := 0, c.Len(); i < n; i++ {
			if c.Proto[i] == packet.IPProtoUDP && c.DstPort[i] == port {
				d.series[c.Direction(i)].Add(d.w.DayTime(c.Start(i)), float64(c.ScaledPackets(i)))
			}
		}
		return nil
	}
	for i := range b.Recs {
		rec := &b.Recs[i]
		if rec.Protocol == packet.IPProtoUDP && rec.DstPort == d.v.Port() {
			d.series[rec.Direction].Add(d.w.DayTime(rec.Start), float64(rec.ScaledPackets()))
		}
	}
	return nil
}

// Close implements pipe.Stage.
func (d *directionStage) Close() error {
	for dir, s := range d.into {
		s.Merge(d.series[dir])
	}
	return nil
}

// DirectionBreakdownSource computes the per-direction metrics from any
// record stream, sharded par ways.
func DirectionBreakdownSource(src Source, w Window, k trafficgen.Kind, v amplify.Vector, par int) (map[flow.Direction]timeseries.TakedownMetrics, error) {
	series := map[flow.Direction]*timeseries.Series{
		flow.Ingress: timeseries.NewDaily(),
		flow.Egress:  timeseries.NewDaily(),
	}
	err := runSharded(src, par, func() pipe.Stage { return newDirectionStage(w, v, series) })
	if err != nil {
		return nil, err
	}
	out := make(map[flow.Direction]timeseries.TakedownMetrics, 2)
	for dir, ser := range series {
		if ser.Sum() == 0 {
			continue
		}
		label := fmt.Sprintf("packets %v dst port %v (%v)", v, dir, k)
		metrics, err := timeseries.AnalyzeTakedown(ser, w.Takedown, label)
		if err != nil {
			return nil, fmt.Errorf("takedown: %s: %w", label, err)
		}
		out[dir] = metrics
	}
	return out, nil
}
