package takedown

import (
	"math"
	"testing"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/flow"
	"booterscope/internal/trafficgen"
)

func testScenario(scale float64) *trafficgen.Scenario {
	return trafficgen.NewScenario(trafficgen.Config{
		Start:    time.Date(2018, 9, 30, 0, 0, 0, 0, time.UTC),
		Days:     122,
		Takedown: FBITakedown.Date,
		Seed:     42,
		Scale:    scale,
	})
}

func TestFBITakedownEvent(t *testing.T) {
	if FBITakedown.SeizedDomains != 15 {
		t.Errorf("seized domains = %d", FBITakedown.SeizedDomains)
	}
	if FBITakedown.Date.Month() != time.December || FBITakedown.Date.Year() != 2018 {
		t.Errorf("date = %v", FBITakedown.Date)
	}
}

func TestFigure4Tier2(t *testing.T) {
	panels, err := Figure4(testScenario(0.3), trafficgen.KindTier2)
	if err != nil {
		t.Fatal(err)
	}
	if len(panels) != 3 {
		t.Fatalf("panels = %d", len(panels))
	}
	byVector := map[amplify.Vector]Figure4Panel{}
	for _, p := range panels {
		byVector[p.Vector] = p
		if len(p.Daily) != 122 {
			t.Errorf("%v daily points = %d, want 122", p.Vector, len(p.Daily))
		}
	}

	// Memcached: strongest drop, significant in both windows, red ~0.22.
	mem := byVector[amplify.Memcached]
	if !mem.Metrics.WT30.Significant || !mem.Metrics.WT40.Significant {
		t.Error("memcached reduction should be significant in both windows")
	}
	if r := mem.Metrics.WT30.Reduction; math.Abs(r-0.22) > 0.12 {
		t.Errorf("memcached red30 = %.3f, want ~0.22", r)
	}

	// NTP: significant, red ~0.38.
	ntp := byVector[amplify.NTP]
	if !ntp.Metrics.WT30.Significant || !ntp.Metrics.WT40.Significant {
		t.Error("NTP reduction should be significant in both windows")
	}
	if r := ntp.Metrics.WT30.Reduction; math.Abs(r-0.38) > 0.15 {
		t.Errorf("NTP red30 = %.3f, want ~0.38", r)
	}

	// DNS: significant but milder (paper: ~0.8, the noisiest panel).
	dns := byVector[amplify.DNS]
	if !dns.Metrics.WT30.Significant {
		t.Error("tier-2 DNS reduction should be significant")
	}
	if r := dns.Metrics.WT30.Reduction; r < 0.65 || r > 0.95 {
		t.Errorf("DNS red30 = %.3f, want ~0.8", r)
	}

	// Ordering: memcached drops hardest, DNS least.
	if !(mem.Metrics.WT30.Reduction < ntp.Metrics.WT30.Reduction &&
		ntp.Metrics.WT30.Reduction < dns.Metrics.WT30.Reduction) {
		t.Errorf("reduction ordering violated: mem=%.2f ntp=%.2f dns=%.2f",
			mem.Metrics.WT30.Reduction, ntp.Metrics.WT30.Reduction, dns.Metrics.WT30.Reduction)
	}
}

func TestFigure4IXPMemcachedSignificant(t *testing.T) {
	panels, err := Figure4(testScenario(0.3), trafficgen.KindIXP)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range panels {
		if p.Vector == amplify.Memcached {
			if !p.Metrics.WT30.Significant {
				t.Error("IXP memcached reduction should be significant (paper Figure 4 top)")
			}
		}
	}
}

func TestFigure5NoSignificantReduction(t *testing.T) {
	res, err := Figure5(testScenario(0.3), trafficgen.KindIXP)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline negative result.
	if res.Metrics.WT30.Significant || res.Metrics.WT40.Significant {
		t.Errorf("attack counts flagged significant: wt30 p=%v wt40 p=%v",
			res.Metrics.WT30.Welch.P, res.Metrics.WT40.Welch.P)
	}
	if len(res.Hourly) == 0 {
		t.Fatal("no hourly attack counts")
	}
	// Counts must exist on both sides of the takedown.
	var before, after int
	for _, hp := range res.Hourly {
		if hp.Hour.Before(FBITakedown.Date) {
			before += hp.Count
		} else {
			after += hp.Count
		}
	}
	if before == 0 || after == 0 {
		t.Errorf("attack counts before=%d after=%d", before, after)
	}
}

func TestFigure4PanelString(t *testing.T) {
	panels, err := Figure4(testScenario(0.2), trafficgen.KindTier2)
	if err != nil {
		t.Fatal(err)
	}
	s := panels[0].String()
	if s == "" {
		t.Error("empty panel string")
	}
}

func TestDirectionBreakdownTier2(t *testing.T) {
	m, err := DirectionBreakdown(testScenario(0.3), trafficgen.KindTier2, amplify.NTP)
	if err != nil {
		t.Fatal(err)
	}
	// Tier-2 sees both directions of trigger traffic.
	if len(m) != 2 {
		t.Fatalf("directions = %d", len(m))
	}
	for dir, metrics := range m {
		if !metrics.WT30.Significant {
			t.Errorf("%v NTP trigger reduction not significant", dir)
		}
	}
}

func TestDirectionBreakdownTier1IngressOnly(t *testing.T) {
	m, err := DirectionBreakdown(testScenario(0.3), trafficgen.KindTier1, amplify.NTP)
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 {
		t.Fatalf("tier-1 directions = %d, want ingress only", len(m))
	}
	if _, ok := m[flow.Ingress]; !ok {
		t.Error("tier-1 missing ingress metrics")
	}
}

func TestNoTakedownScenarioNotSignificant(t *testing.T) {
	// Null experiment: with booter traffic unchanged, no panel fires.
	s := trafficgen.NewScenario(trafficgen.Config{
		Start:    time.Date(2018, 9, 30, 0, 0, 0, 0, time.UTC),
		Days:     122,
		Takedown: FBITakedown.Date,
		Seed:     42,
		Scale:    0.3,
		PostTakedownBooterFactor: map[amplify.Vector]float64{
			amplify.NTP: 1, amplify.DNS: 1, amplify.Memcached: 1,
		},
	})
	panels, err := Figure4(s, trafficgen.KindTier2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range panels {
		if p.Metrics.WT30.Significant && p.Metrics.WT30.Reduction < 0.9 {
			t.Errorf("null scenario: %v flagged with red30=%.2f", p.Vector, p.Metrics.WT30.Reduction)
		}
	}
}

func BenchmarkFigure4Tier2(b *testing.B) {
	s := testScenario(0.2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Figure4(s, trafficgen.KindTier2); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFigure4Robustness(t *testing.T) {
	rob, err := Figure4Robustness(testScenario(0.3), trafficgen.KindTier2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rob) != 3 {
		t.Fatalf("vectors = %d", len(rob))
	}
	for _, r := range rob {
		// The tier-2 reductions are strong level shifts: both tests
		// must agree on significance.
		if !r.WelchSig || !r.RankSig {
			t.Errorf("%v: welch=%t rank=%t (rank p=%v)", r.Vector, r.WelchSig, r.RankSig, r.RankP)
		}
		if !r.Agrees() {
			t.Errorf("%v: tests disagree", r.Vector)
		}
	}
}

func TestRobustnessNullScenarioAgrees(t *testing.T) {
	s := trafficgen.NewScenario(trafficgen.Config{
		Start:    time.Date(2018, 9, 30, 0, 0, 0, 0, time.UTC),
		Days:     122,
		Takedown: FBITakedown.Date,
		Seed:     42,
		Scale:    0.3,
		PostTakedownBooterFactor: map[amplify.Vector]float64{
			amplify.NTP: 1, amplify.DNS: 1, amplify.Memcached: 1,
		},
	})
	rob, err := Figure4Robustness(s, trafficgen.KindTier2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rob {
		if r.RankSig {
			t.Errorf("%v: rank test fired on the null scenario (p=%v)", r.Vector, r.RankP)
		}
	}
}
