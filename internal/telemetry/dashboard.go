package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Dashboard periodically renders a compact plain-text view of a
// registry — the headless-run counterpart of the /metrics endpoint,
// meant for log files and terminals where no scraper is watching.
type Dashboard struct {
	reg      *Registry
	w        io.Writer
	interval time.Duration

	mu sync.Mutex
	//bsvet:guards mu
	stop chan struct{}
	//bsvet:guards mu
	done chan struct{}
	last map[string]uint64 // counter values at the previous render, for rates
	prev time.Time
}

// NewDashboard returns a dashboard rendering reg to w every interval
// (default 10 s). Call Start to begin and Stop to end.
func NewDashboard(reg *Registry, w io.Writer, interval time.Duration) *Dashboard {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	return &Dashboard{reg: reg, w: w, interval: interval, last: make(map[string]uint64)}
}

// Start launches the periodic renderer.
func (d *Dashboard) Start() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stop != nil {
		return
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	d.prev = time.Now()
	go d.run(d.stop, d.done)
}

func (d *Dashboard) run(stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(d.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.WriteOnce()
		}
	}
}

// Stop halts the renderer, emitting one final frame.
func (d *Dashboard) Stop() {
	d.mu.Lock()
	stop, done := d.stop, d.done
	d.stop, d.done = nil, nil
	d.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
	d.WriteOnce()
}

// WriteOnce renders one dashboard frame: non-zero counters with
// per-interval rates, gauges, histogram quantiles, and the latest span
// per stage.
func (d *Dashboard) WriteOnce() {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	elapsed := now.Sub(d.prev).Seconds()
	d.prev = now
	s := d.reg.Snapshot()

	fmt.Fprintf(d.w, "-- telemetry %s --\n", now.Format("15:04:05"))
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := s.Counters[name]
		if v == 0 {
			continue
		}
		line := fmt.Sprintf("  %-52s %12d", name, v)
		if prev, ok := d.last[name]; ok && elapsed > 0 && v >= prev {
			line += fmt.Sprintf("  (%.1f/s)", float64(v-prev)/elapsed)
		}
		fmt.Fprintln(d.w, line)
		d.last[name] = v
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(d.w, "  %-52s %12g\n", name, s.Gauges[name])
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(d.w, "  %-52s n=%d p50=%.4g p95=%.4g p99=%.4g\n",
			name, h.Count, h.P50, h.P95, h.P99)
	}
	names = names[:0]
	for name := range s.Vectors {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vec := s.Vectors[name]
		for _, v := range vec.Values {
			if v.Value == 0 {
				continue
			}
			fmt.Fprintf(d.w, "  %-52s %12d\n",
				fmt.Sprintf("%s{%s}", name, labelString(vec.Labels, v.LabelValues)), v.Value)
		}
	}
}

func labelString(labels, values []string) string {
	out := ""
	for i := range labels {
		if i > 0 {
			out += ","
		}
		out += labels[i] + "=" + values[i]
	}
	return out
}
