// Package debugserver is the shared live-debug surface of every
// booterscope binary: pass -debug.addr (e.g. 127.0.0.1:6060) and the
// process serves its telemetry registry as Prometheus text on /metrics,
// as JSON on /metrics.json, recent pipeline spans on /spans, and the
// full net/http/pprof suite under /debug/pprof/. Without the flag
// nothing is started, so the default remains zero overhead.
package debugserver

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"booterscope/internal/telemetry"
)

// AddrFlag registers the conventional -debug.addr flag on the default
// flag set and returns the destination string. Every cmd binary calls
// this before flag.Parse.
func AddrFlag() *string {
	return flag.String("debug.addr", "",
		"serve /metrics, /metrics.json, /spans and /debug/pprof on this address (empty: disabled)")
}

// Server is a running debug HTTP server.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	draining *atomic.Bool
}

// Handler builds the debug mux over reg — exposed separately so tests
// can drive it without a socket. draining, when non-nil, flips
// /healthz to 503 "draining" — load balancers stop sending probes to
// an instance that is shutting down before its sockets actually close.
func Handler(reg *telemetry.Registry, draining *atomic.Bool) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.PrometheusHandler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Tracer().Recent())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if draining != nil && draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "booterscope debug surface\n\n"+
			"/metrics       Prometheus text format\n"+
			"/metrics.json  snapshot as JSON\n"+
			"/spans         recent pipeline spans\n"+
			"/healthz       liveness (503 while draining)\n"+
			"/debug/pprof/  Go profiling\n")
	})
	return mux
}

// Start serves the debug surface for reg on addr. An empty addr is a
// no-op returning (nil, nil), so call sites stay one line:
//
//	dbg, err := debugserver.Start(*addr, telemetry.Default())
func Start(addr string, reg *telemetry.Registry) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: listening on %s: %w", addr, err)
	}
	draining := &atomic.Bool{}
	s := &Server{
		ln:       ln,
		draining: draining,
		srv: &http.Server{
			Handler:           Handler(reg, draining),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetDraining flips /healthz to 503 "draining" (or back). A draining
// daemon calls this the moment shutdown begins, before the pipeline
// flushes, so probes fail ahead of the socket closing.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Shutdown stops the server gracefully: no new connections, in-flight
// requests run to completion or until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
