// Package debugserver is the shared live-debug surface of every
// booterscope binary: pass -debug.addr (e.g. 127.0.0.1:6060) and the
// process serves its telemetry registry as Prometheus text on /metrics,
// as JSON on /metrics.json, recent pipeline spans on /spans, the
// flight recorder's event ring on /events, reconstructed attack
// timelines on /attacks and /attacks/{id}, and the full
// net/http/pprof suite under /debug/pprof/. Without the flag nothing
// is started, so the default remains zero overhead.
package debugserver

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"booterscope/internal/telemetry"
	"booterscope/internal/telemetry/eventlog"
)

// spanRingFlag holds the -debug.spanring value; Start applies it to
// the registry's tracer. Defaults to the tracer's built-in size so
// binaries that never call AddrFlag are unaffected.
var spanRingFlag = func() *int { n := telemetry.DefaultSpanRing; return &n }()

// AddrFlag registers the conventional -debug.addr flag (plus the
// -debug.spanring ring-size knob) on the default flag set and returns
// the destination string. Every cmd binary calls this before
// flag.Parse.
func AddrFlag() *string {
	spanRingFlag = flag.Int("debug.spanring", telemetry.DefaultSpanRing,
		"finished pipeline spans retained for /spans")
	return flag.String("debug.addr", "",
		"serve /metrics, /metrics.json, /spans, /events, /attacks and /debug/pprof on this address (empty: disabled)")
}

// Server is a running debug HTTP server.
type Server struct {
	ln       net.Listener
	srv      *http.Server
	draining *atomic.Bool
}

// Handler builds the debug mux over reg — exposed separately so tests
// can drive it without a socket. draining, when non-nil, flips
// /healthz to 503 "draining" — load balancers stop sending probes to
// an instance that is shutting down before its sockets actually close.
// The event endpoints read the process-wide flight recorder; use
// HandlerWith to serve an explicit one.
func Handler(reg *telemetry.Registry, draining *atomic.Bool) http.Handler {
	return HandlerWith(reg, draining, nil)
}

// HandlerWith is Handler with an explicit flight recorder for the
// /events and /attacks endpoints. A nil recorder falls back to
// eventlog.Active() per request, so a recorder installed after the
// server starts is still served.
func HandlerWith(reg *telemetry.Registry, draining *atomic.Bool, events *eventlog.Log) http.Handler {
	return HandlerWithExtra(reg, draining, events, nil)
}

// HandlerWithExtra is HandlerWith plus subsystem-owned endpoints
// mounted on the same mux — the seam binaries use to expose views the
// debug server cannot build itself, like the federation coordinator's
// /vantages. Extra paths are mounted in sorted order and listed on
// the index page; a path colliding with a built-in panics (mux rules).
func HandlerWithExtra(reg *telemetry.Registry, draining *atomic.Bool, events *eventlog.Log, extra map[string]http.Handler) http.Handler {
	recorder := func() *eventlog.Log {
		if events != nil {
			return events
		}
		return eventlog.Active()
	}
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(v)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.PrometheusHandler())
	mux.Handle("/metrics.json", reg.JSONHandler())
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, reg.Tracer().Recent())
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		evs := recorder().Snapshot()
		if evs == nil {
			evs = []eventlog.Event{}
		}
		writeJSON(w, evs)
	})
	mux.HandleFunc("/attacks", func(w http.ResponseWriter, _ *http.Request) {
		tls := eventlog.BuildTimelines(recorder().Snapshot())
		if tls == nil {
			tls = []eventlog.Timeline{}
		}
		writeJSON(w, tls)
	})
	mux.HandleFunc("/attacks/", func(w http.ResponseWriter, r *http.Request) {
		idStr := strings.TrimPrefix(r.URL.Path, "/attacks/")
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil || id == 0 {
			http.Error(w, "bad attack id", http.StatusBadRequest)
			return
		}
		tl := eventlog.TimelineFor(recorder().Snapshot(), id)
		if tl == nil {
			http.NotFound(w, r)
			return
		}
		writeJSON(w, tl)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if draining != nil && draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraPaths := make([]string, 0, len(extra))
	for p := range extra {
		extraPaths = append(extraPaths, p)
	}
	sort.Strings(extraPaths)
	extraIndex := ""
	for _, p := range extraPaths {
		mux.Handle(p, extra[p])
		extraIndex += fmt.Sprintf("%-14s subsystem endpoint\n", p)
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "booterscope debug surface\n\n"+
			"/metrics       Prometheus text format\n"+
			"/metrics.json  snapshot as JSON\n"+
			"/spans         recent pipeline spans\n"+
			"/events        flight-recorder event ring\n"+
			"/attacks       reconstructed attack timelines\n"+
			"/attacks/{id}  one attack's lifecycle timeline\n"+
			"/healthz       liveness (503 while draining)\n"+
			"/debug/pprof/  Go profiling\n"+
			extraIndex)
	})
	return mux
}

// Start serves the debug surface for reg on addr. An empty addr is a
// no-op returning (nil, nil), so call sites stay one line:
//
//	dbg, err := debugserver.Start(*addr, telemetry.Default())
func Start(addr string, reg *telemetry.Registry) (*Server, error) {
	return StartWith(addr, reg, nil)
}

// StartWith is Start with subsystem endpoints mounted next to the
// built-ins (see HandlerWithExtra).
func StartWith(addr string, reg *telemetry.Registry, extra map[string]http.Handler) (*Server, error) {
	// The ring-size knob and occupancy gauges apply even when no
	// server is started: span retention is a process property, and the
	// gauges surface in any scrape of the registry. Registration is
	// duplicate-tolerant so repeated Start calls (tests) are safe.
	reg.Tracer().SetRingSize(*spanRingFlag)
	_ = reg.Register("pipeline_span_ring_spans",
		"finished spans retained in the tracer ring",
		func() float64 { return float64(reg.Tracer().Len()) })
	_ = reg.Register("pipeline_span_ring_capacity",
		"tracer span ring capacity (-debug.spanring)",
		func() float64 { return float64(reg.Tracer().Cap()) })
	if addr == "" {
		return nil, nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserver: listening on %s: %w", addr, err)
	}
	draining := &atomic.Bool{}
	s := &Server{
		ln:       ln,
		draining: draining,
		srv: &http.Server{
			Handler:           HandlerWithExtra(reg, draining, nil, extra),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	//bsvet:allow goroutinelifecycle Serve returns when Close/Shutdown closes the listener; the http.Server is the lifecycle
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetDraining flips /healthz to 503 "draining" (or back). A draining
// daemon calls this the moment shutdown begins, before the pipeline
// flushes, so probes fail ahead of the socket closing.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Shutdown stops the server gracefully: no new connections, in-flight
// requests run to completion or until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }
