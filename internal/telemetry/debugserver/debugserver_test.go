package debugserver

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"booterscope/internal/telemetry"
)

func newTestRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	r.Counter("ipfix_collector_messages_total", "msgs").Add(3)
	r.CounterVec("chaos_proxy_faults_total", "faults", "kind").With("drop").Inc()
	r.Tracer().Start("decode").End(nil)
	return r
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	body, err := io.ReadAll(w.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return w.Result().StatusCode, string(body)
}

func TestHandlerSurfaces(t *testing.T) {
	h := Handler(newTestRegistry(), nil)

	code, body := get(t, h, "/metrics")
	if code != http.StatusOK || !strings.Contains(body, "ipfix_collector_messages_total 3") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	if !strings.Contains(body, `chaos_proxy_faults_total{kind="drop"} 1`) {
		t.Fatalf("/metrics missing vec sample:\n%s", body)
	}

	code, body = get(t, h, "/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json = %d", code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not valid JSON: %v\n%s", err, body)
	}
	if snap.Counters["ipfix_collector_messages_total"] != 3 {
		t.Fatalf("JSON snapshot = %+v", snap.Counters)
	}

	code, body = get(t, h, "/spans")
	if code != http.StatusOK || !strings.Contains(body, "decode") {
		t.Fatalf("/spans = %d:\n%s", code, body)
	}

	code, _ = get(t, h, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d", code)
	}

	// pprof index and a non-blocking profile endpoint respond.
	code, body = get(t, h, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%s", code, body)
	}
	code, _ = get(t, h, "/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}

	code, _ = get(t, h, "/nope")
	if code != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", code)
	}
}

func TestStartServesAndCloses(t *testing.T) {
	srv, err := Start("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ipfix_collector_messages_total") {
		t.Fatalf("live /metrics = %d:\n%s", resp.StatusCode, body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDrainingFlipsHealthzBeforeShutdown(t *testing.T) {
	srv, err := Start("127.0.0.1:0", newTestRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	status := func() int {
		resp, err := http.Get("http://" + srv.Addr() + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := status(); code != http.StatusOK {
		t.Fatalf("healthy /healthz = %d, want 200", code)
	}
	// The drain sequence: probes fail first, the socket closes after.
	srv.SetDraining(true)
	if code := status(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /healthz = %d, want 503", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestStartEmptyAddrIsNoop(t *testing.T) {
	srv, err := Start("", telemetry.NewRegistry())
	if err != nil || srv != nil {
		t.Fatalf("Start(\"\") = %v, %v; want nil, nil", srv, err)
	}
}
