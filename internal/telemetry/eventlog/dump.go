package eventlog

import (
	"booterscope/internal/chaos"

	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"time"
)

// Incident dump file layout (the checkpoint CRC-framing pattern
// applied to the event ring):
//
//	magic (8 bytes "BSEVT001")
//	frame*:
//	  u32 frameLen   — length of payload
//	  u32 crc        — IEEE CRC32 over payload
//	  payload        — first byte is the frame type:
//	    1 header  — version, trigger reason, event count, dump wall time
//	    2 events  — a chunk of encoded events
//	    255 trailer — end marker; a file without it is torn
//
// Writes go to incident-<reason>.tmp and are published by atomic
// rename over incident-<reason>.bsevt, so the visible dump for a
// given trigger is always a complete snapshot: a crash mid-write
// (every write runs through a chaos.Failpoint hook in the
// incident-chaos gate) leaves the previous dump untouched or — when
// none existed — no file at all, never a torn one. Load verifies
// every CRC and requires the trailer, so filesystem-level damage is
// reported as ErrDumpCorrupt rather than half-loaded.

var dumpMagic = [8]byte{'B', 'S', 'E', 'V', 'T', '0', '0', '1'}

const (
	dumpFrameHeader  = 1
	dumpFrameEvents  = 2
	dumpFrameTrailer = 255

	dumpVersion = 1

	// eventsPerFrame chunks the ring so large dumps are written (and
	// fault-injected) in multiple operations.
	eventsPerFrame = 128
)

// ErrDumpCorrupt marks an incident dump failing CRC or framing
// validation.
var ErrDumpCorrupt = errors.New("eventlog: corrupt incident dump")

// Dump is a decoded incident dump.
type Dump struct {
	// Reason is the trigger that fired (slo_burn, shed_escalation,
	// drain, checkpoint_failure).
	Reason string
	// WallNanos is when the dump was taken.
	WallNanos int64
	// Events are the ring's events at dump time, in sequence order.
	Events []Event
}

// reasonRE bounds trigger reasons to the metric-name charset: the
// reason is embedded in the dump filename.
var reasonRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// DumpPath returns the incident dump location for a trigger reason
// under dir. The name is fixed per reason — a re-fire of the same
// trigger atomically replaces its previous dump — so a directory
// holds at most one dump per trigger kind, newest wins.
func DumpPath(dir, reason string) string {
	return filepath.Join(dir, "incident-"+reason+".bsevt")
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func readString(b []byte, off int) (string, int, bool) {
	if len(b)-off < 2 {
		return "", 0, false
	}
	n := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if len(b)-off < n {
		return "", 0, false
	}
	return string(b[off : off+n]), off + n, true
}

func encodeEvent(dst []byte, ev *Event) []byte {
	dst = binary.BigEndian.AppendUint64(dst, ev.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(ev.WallNanos))
	dst = binary.BigEndian.AppendUint64(dst, uint64(ev.MonoNanos))
	dst = binary.BigEndian.AppendUint64(dst, ev.AttackID)
	dst = appendString(dst, ev.Component)
	dst = appendString(dst, ev.Kind)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ev.Attrs)))
	for _, a := range ev.Attrs {
		dst = appendString(dst, a.Key)
		dst = appendString(dst, a.Value)
	}
	return dst
}

func decodeEvent(b []byte, off int) (Event, int, error) {
	var ev Event
	if len(b)-off < 32 {
		return ev, 0, fmt.Errorf("%w: truncated event", ErrDumpCorrupt)
	}
	ev.Seq = binary.BigEndian.Uint64(b[off:])
	ev.WallNanos = int64(binary.BigEndian.Uint64(b[off+8:]))
	ev.MonoNanos = int64(binary.BigEndian.Uint64(b[off+16:]))
	ev.AttackID = binary.BigEndian.Uint64(b[off+24:])
	off += 32
	var ok bool
	if ev.Component, off, ok = readString(b, off); !ok {
		return ev, 0, fmt.Errorf("%w: truncated event component", ErrDumpCorrupt)
	}
	if ev.Kind, off, ok = readString(b, off); !ok {
		return ev, 0, fmt.Errorf("%w: truncated event kind", ErrDumpCorrupt)
	}
	if len(b)-off < 2 {
		return ev, 0, fmt.Errorf("%w: truncated event attrs", ErrDumpCorrupt)
	}
	nattrs := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	for i := 0; i < nattrs; i++ {
		var a Attr
		if a.Key, off, ok = readString(b, off); !ok {
			return ev, 0, fmt.Errorf("%w: truncated attr key", ErrDumpCorrupt)
		}
		if a.Value, off, ok = readString(b, off); !ok {
			return ev, 0, fmt.Errorf("%w: truncated attr value", ErrDumpCorrupt)
		}
		ev.Attrs = append(ev.Attrs, a)
	}
	return ev, off, nil
}

// EncodeDump serializes a dump into the framed on-disk form. The
// encoding is deterministic: equal inputs produce identical bytes.
func EncodeDump(reason string, wallNanos int64, events []Event) []byte {
	out := append([]byte(nil), dumpMagic[:]...)
	hdr := []byte{dumpFrameHeader}
	hdr = binary.BigEndian.AppendUint16(hdr, dumpVersion)
	hdr = appendString(hdr, reason)
	hdr = binary.BigEndian.AppendUint64(hdr, uint64(wallNanos))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(events)))
	out = appendFrame(out, hdr)
	for len(events) > 0 {
		n := len(events)
		if n > eventsPerFrame {
			n = eventsPerFrame
		}
		chunk := []byte{dumpFrameEvents}
		chunk = binary.BigEndian.AppendUint32(chunk, uint32(n))
		for i := 0; i < n; i++ {
			chunk = encodeEvent(chunk, &events[i])
		}
		out = appendFrame(out, chunk)
		events = events[n:]
	}
	return appendFrame(out, []byte{dumpFrameTrailer})
}

func appendFrame(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// DecodeDump parses bytes produced by EncodeDump, verifying magic,
// every frame CRC, and the trailer. Any damage yields ErrDumpCorrupt.
func DecodeDump(b []byte) (*Dump, error) {
	if len(b) < len(dumpMagic) || [8]byte(b[:8]) != dumpMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrDumpCorrupt)
	}
	d := &Dump{}
	off := len(dumpMagic)
	sawHeader, sawTrailer := false, false
	declared := -1
	for off < len(b) {
		if sawTrailer {
			return nil, fmt.Errorf("%w: data after trailer", ErrDumpCorrupt)
		}
		if len(b)-off < 8 {
			return nil, fmt.Errorf("%w: torn frame header at offset %d", ErrDumpCorrupt, off)
		}
		frameLen := int(binary.BigEndian.Uint32(b[off:]))
		crc := binary.BigEndian.Uint32(b[off+4:])
		if frameLen < 1 || len(b)-off-8 < frameLen {
			return nil, fmt.Errorf("%w: torn frame at offset %d", ErrDumpCorrupt, off)
		}
		payload := b[off+8 : off+8+frameLen]
		if crc32.ChecksumIEEE(payload) != crc {
			return nil, fmt.Errorf("%w: CRC mismatch at offset %d", ErrDumpCorrupt, off)
		}
		switch payload[0] {
		case dumpFrameHeader:
			if sawHeader {
				return nil, fmt.Errorf("%w: duplicate header frame", ErrDumpCorrupt)
			}
			sawHeader = true
			if len(payload) < 3 {
				return nil, fmt.Errorf("%w: short header frame", ErrDumpCorrupt)
			}
			if v := binary.BigEndian.Uint16(payload[1:]); v != dumpVersion {
				return nil, fmt.Errorf("%w: unsupported dump version %d", ErrDumpCorrupt, v)
			}
			reason, p, ok := readString(payload, 3)
			if !ok || len(payload)-p != 12 {
				return nil, fmt.Errorf("%w: malformed header frame", ErrDumpCorrupt)
			}
			d.Reason = reason
			d.WallNanos = int64(binary.BigEndian.Uint64(payload[p:]))
			declared = int(binary.BigEndian.Uint32(payload[p+8:]))
		case dumpFrameEvents:
			if len(payload) < 5 {
				return nil, fmt.Errorf("%w: short events frame", ErrDumpCorrupt)
			}
			n := int(binary.BigEndian.Uint32(payload[1:]))
			p := 5
			for i := 0; i < n; i++ {
				ev, next, err := decodeEvent(payload, p)
				if err != nil {
					return nil, err
				}
				d.Events = append(d.Events, ev)
				p = next
			}
			if p != len(payload) {
				return nil, fmt.Errorf("%w: %d trailing bytes in events frame", ErrDumpCorrupt, len(payload)-p)
			}
		case dumpFrameTrailer:
			sawTrailer = true
		default:
			return nil, fmt.Errorf("%w: unknown frame type %d", ErrDumpCorrupt, payload[0])
		}
		off += 8 + frameLen
	}
	if !sawHeader || !sawTrailer {
		return nil, fmt.Errorf("%w: missing %s frame", ErrDumpCorrupt, map[bool]string{true: "trailer", false: "header"}[sawHeader])
	}
	if declared != len(d.Events) {
		return nil, fmt.Errorf("%w: header declares %d events, found %d", ErrDumpCorrupt, declared, len(d.Events))
	}
	return d, nil
}

// SaveDump atomically publishes events as the incident dump for
// reason under dir: the framed bytes go to a temp file (every write,
// the fsync, and the rename run through the fault hook, so the
// incident-chaos gate can kill the writer at each offset), and only a
// complete, synced temp file is renamed over the previous dump. On
// any failure the previous dump is left intact and the temp file
// removed. Returns the dump path and size.
func SaveDump(dir, reason string, wallNanos int64, events []Event, fault *chaos.Failpoint) (string, int64, error) {
	if !reasonRE.MatchString(reason) {
		return "", 0, fmt.Errorf("eventlog: dump reason %q does not match %s", reason, reasonRE)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("eventlog: incident dir: %w", err)
	}
	tmp := filepath.Join(dir, "incident-"+reason+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", 0, fmt.Errorf("eventlog: dump temp file: %w", err)
	}
	enc := EncodeDump(reason, wallNanos, events)
	fail := func(err error) (string, int64, error) {
		f.Close()
		os.Remove(tmp)
		return "", 0, err
	}
	// Write frame by frame so each frame is a distinct fault-injection
	// point — the granularity a real crash tears files at.
	for off := 0; off < len(enc); {
		end := len(enc)
		if off == 0 {
			end = len(dumpMagic)
		} else if off+8 <= len(enc) {
			end = off + 8 + int(binary.BigEndian.Uint32(enc[off:]))
		}
		if err := fault.Check("incident write"); err != nil {
			return fail(err)
		}
		if _, err := f.Write(enc[off:end]); err != nil {
			return fail(fmt.Errorf("eventlog: writing dump: %w", err))
		}
		off = end
	}
	if err := fault.Check("incident fsync"); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("eventlog: syncing dump: %w", err))
	}
	if err := f.Close(); err != nil {
		return fail(fmt.Errorf("eventlog: closing dump: %w", err))
	}
	if err := fault.Check("incident rename"); err != nil {
		os.Remove(tmp)
		return "", 0, err
	}
	path := DumpPath(dir, reason)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", 0, fmt.Errorf("eventlog: publishing dump: %w", err)
	}
	// Best-effort directory sync so the rename itself is durable.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return path, int64(len(enc)), nil
}

// LoadDump reads and validates one incident dump file.
func LoadDump(path string) (*Dump, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("eventlog: reading dump: %w", err)
	}
	return DecodeDump(b)
}

// DumpTo snapshots the ring and atomically publishes it as the
// incident dump for reason under dir, recording the outcome in the
// recorder's own telemetry. A nil receiver is a no-op.
func (l *Log) DumpTo(dir, reason string, fault *chaos.Failpoint) (string, int64, error) {
	if l == nil {
		return "", 0, nil
	}
	path, n, err := SaveDump(dir, reason, time.Now().UnixNano(), l.Snapshot(), fault)
	if err != nil {
		l.m.dumpFailures.Inc()
		return "", 0, err
	}
	l.m.dumps.Inc()
	l.m.dumpBytes.Set(float64(n))
	return path, n, nil
}
