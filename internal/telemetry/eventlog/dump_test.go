package eventlog

import (
	"errors"
	"os"
	"reflect"
	"testing"

	"booterscope/internal/chaos"
)

func sampleEvents(n int) []Event {
	evs := make([]Event, n)
	for i := range evs {
		evs[i] = Event{
			Seq:       uint64(i),
			WallNanos: int64(1700000000_000000000 + i),
			MonoNanos: int64(1000 * (i + 1)),
			Component: "classify",
			Kind:      "classify_alert_raised",
			AttackID:  uint64(i%3 + 1),
			Attrs: []Attr{
				A("victim", "203.0.113.7"),
				AInt("i", int64(i)),
			},
		}
	}
	return evs
}

func TestDumpRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, eventsPerFrame, eventsPerFrame + 1, 3*eventsPerFrame + 17} {
		events := sampleEvents(n)
		enc := EncodeDump("slo_burn", 42, events)
		d, err := DecodeDump(enc)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if d.Reason != "slo_burn" || d.WallNanos != 42 {
			t.Fatalf("n=%d: header = %q/%d", n, d.Reason, d.WallNanos)
		}
		if len(d.Events) != n {
			t.Fatalf("n=%d: decoded %d events", n, len(d.Events))
		}
		if n > 0 && !reflect.DeepEqual(d.Events, events) {
			t.Fatalf("n=%d: events do not round-trip", n)
		}
	}
}

func TestDecodeDumpRejectsDamage(t *testing.T) {
	enc := EncodeDump("drain", 1, sampleEvents(10))
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), enc[8:]...),
		"torn tail":   enc[:len(enc)-5],
		"no trailer":  enc[:len(enc)-9],
		"flipped bit": flipBit(enc, len(enc)/2),
	}
	for name, b := range cases {
		if _, err := DecodeDump(b); !errors.Is(err, ErrDumpCorrupt) {
			t.Errorf("%s: err = %v, want ErrDumpCorrupt", name, err)
		}
	}
}

func flipBit(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

func TestSaveLoadDump(t *testing.T) {
	dir := t.TempDir()
	events := sampleEvents(200)
	path, n, err := SaveDump(dir, "shed_escalation", 7, events, nil)
	if err != nil {
		t.Fatalf("SaveDump: %v", err)
	}
	if path != DumpPath(dir, "shed_escalation") {
		t.Fatalf("path = %q", path)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != n {
		t.Fatalf("stat %q: %v size %d want %d", path, err, fi.Size(), n)
	}
	d, err := LoadDump(path)
	if err != nil {
		t.Fatalf("LoadDump: %v", err)
	}
	if d.Reason != "shed_escalation" || len(d.Events) != 200 {
		t.Fatalf("loaded %q with %d events", d.Reason, len(d.Events))
	}
}

func TestSaveDumpRejectsBadReason(t *testing.T) {
	for _, r := range []string{"", "Bad", "has space", "../evil"} {
		if _, _, err := SaveDump(t.TempDir(), r, 0, nil, nil); err == nil {
			t.Errorf("reason %q accepted", r)
		}
	}
}

func TestLogDumpTo(t *testing.T) {
	l := New(64)
	for i := 0; i < 20; i++ {
		l.Emit("service", "service_checkpoint_saved", 0, AInt("i", int64(i)))
	}
	dir := t.TempDir()
	path, _, err := l.DumpTo(dir, "drain", nil)
	if err != nil {
		t.Fatalf("DumpTo: %v", err)
	}
	d, err := LoadDump(path)
	if err != nil {
		t.Fatalf("LoadDump: %v", err)
	}
	if len(d.Events) != 20 {
		t.Fatalf("dumped %d events, want 20", len(d.Events))
	}
	if got := l.m.dumps.Value(); got != 1 {
		t.Fatalf("dumps counter = %d", got)
	}
}

// TestDumpCrashAtEveryWriteOffset is the incident-chaos gate: a first
// complete dump is published, then a re-dump is killed at every write,
// fsync, and rename offset in turn. After every crash the visible dump
// must still be the previous complete one — never a torn file — and a
// crash before any dump exists must leave no file at all.
func TestDumpCrashAtEveryWriteOffset(t *testing.T) {
	eventsA := sampleEvents(eventsPerFrame*2 + 9)
	eventsB := sampleEvents(eventsPerFrame*3 + 5)

	// Probe run: count the fault-checked operations of a full dump.
	probe := chaos.NewFailpoint()
	if _, _, err := SaveDump(t.TempDir(), "slo_burn", 1, eventsB, probe); err != nil {
		t.Fatalf("probe dump: %v", err)
	}
	ops := probe.Ops()
	if ops < 5 {
		t.Fatalf("probe saw only %d ops; fault hooks missing", ops)
	}

	for off := uint64(0); off < ops; off++ {
		dir := t.TempDir()

		// Crash with no previous dump: no file may appear.
		if _, _, err := SaveDump(dir, "slo_burn", 1, eventsB, chaos.FailFrom(off)); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("off %d: first dump err = %v, want injected fault", off, err)
		}
		if _, err := os.Stat(DumpPath(dir, "slo_burn")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("off %d: torn or partial dump visible after crash with no previous dump", off)
		}

		// Publish a complete dump, then crash a re-dump at the offset:
		// the previous dump must survive intact.
		if _, _, err := SaveDump(dir, "slo_burn", 1, eventsA, nil); err != nil {
			t.Fatalf("off %d: baseline dump: %v", off, err)
		}
		if _, _, err := SaveDump(dir, "slo_burn", 2, eventsB, chaos.FailFrom(off)); !errors.Is(err, chaos.ErrInjected) {
			t.Fatalf("off %d: re-dump err = %v, want injected fault", off, err)
		}
		d, err := LoadDump(DumpPath(dir, "slo_burn"))
		if err != nil {
			t.Fatalf("off %d: previous dump damaged: %v", off, err)
		}
		if d.WallNanos != 1 || len(d.Events) != len(eventsA) {
			t.Fatalf("off %d: previous dump replaced by partial re-dump (wall %d, %d events)", off, d.WallNanos, len(d.Events))
		}
	}

	// Past the last offset the re-dump must succeed and replace.
	dir := t.TempDir()
	if _, _, err := SaveDump(dir, "slo_burn", 1, eventsA, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := SaveDump(dir, "slo_burn", 2, eventsB, chaos.FailFrom(ops)); err != nil {
		t.Fatalf("dump with fault beyond last op: %v", err)
	}
	d, err := LoadDump(DumpPath(dir, "slo_burn"))
	if err != nil || d.WallNanos != 2 || len(d.Events) != len(eventsB) {
		t.Fatalf("replacement dump wrong: %v %+v", err, d)
	}
}
