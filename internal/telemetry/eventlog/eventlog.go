// Package eventlog is booterscope's wide-event flight recorder: a
// lock-free bounded ring of structured events that every subsystem
// (ipfix, pipe, classify, service, flowstore, bgp) emits into. Where
// the telemetry registry answers "how much" and the span tracer
// answers "how long", the event log answers "what happened, in what
// order, to which attack": each event carries its component, a
// component-prefixed kind, an optional attack ID linking it to one
// attack's lifecycle, free-form key=value attributes, and both wall
// and monotonic timestamps.
//
// The ring is a black box, not a database: it retains the most recent
// events (older ones are overwritten, with the overwrite count
// exported as telemetry) and is dumped atomically to disk — CRC
// framed, rename-committed, exactly like the service daemon's
// checkpoints — when an incident trigger fires (SLO burn breach, shed
// escalation, drain, checkpoint failure). The /events and /attacks
// debug endpoints read the live ring; `ddoswatch -incident` reads a
// dump; both reconstruct identical attack timelines (timeline.go).
//
// Emit is safe from any goroutine and nil-safe: a nil *Log (the
// default when no recorder is active) makes Emit a two-instruction
// no-op, so instrumented hot paths cost nothing when recording is
// off. Writers never block: a slot is claimed with one atomic add and
// published with one atomic pointer store.
package eventlog

import (
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"booterscope/internal/telemetry"
)

// DefaultRingSize is the event capacity of a Log built by New with
// size <= 0. At ~100 bytes per event the default ring holds the last
// few thousand transitions in well under a megabyte.
const DefaultRingSize = 4096

// Attr is one key=value attribute on an event.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// AInt builds an integer attribute.
func AInt(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// AUint builds an unsigned integer attribute.
func AUint(key string, v uint64) Attr { return Attr{Key: key, Value: strconv.FormatUint(v, 10)} }

// AFloat builds a float attribute.
func AFloat(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Event is one wide event in the flight recorder.
type Event struct {
	// Seq is the event's global sequence number in its Log, dense from
	// zero — a gap at the front of a snapshot means the ring wrapped.
	Seq uint64 `json:"seq"`
	// WallNanos is wall-clock time (unix nanoseconds) for human
	// correlation with external logs.
	WallNanos int64 `json:"wall_nanos"`
	// MonoNanos is monotonic time (nanoseconds since the Log was
	// created). All intervals — detection latency, time-to-mitigate —
	// are computed from MonoNanos so a wall-clock step cannot skew
	// them.
	MonoNanos int64 `json:"mono_nanos"`
	// Component names the emitting subsystem (classify, service, ...).
	Component string `json:"component"`
	// Kind is the component-prefixed snake_case event name
	// (classify_alert_raised) — the same naming contract metric names
	// follow, enforced by the bsvet telemetry analyzer.
	Kind string `json:"kind"`
	// AttackID links the event to one attack's lifecycle (0 = none).
	AttackID uint64 `json:"attack_id,omitempty"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (e *Event) Attr(key string) string {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Log is the bounded event ring. Construct with New; the zero value
// is not usable (but a nil *Log is: every method no-ops).
type Log struct {
	slots []atomic.Pointer[Event]
	mask  uint64
	seq   atomic.Uint64
	base  time.Time
	m     *logMetrics
}

// logMetrics are the recorder's own accounting atomics; Log.
// RegisterTelemetry attaches them under the eventlog_* names.
type logMetrics struct {
	emitted      *telemetry.CounterVec
	dumps        *telemetry.Counter
	dumpFailures *telemetry.Counter
	dumpBytes    *telemetry.Gauge
}

// New returns an empty recorder holding the most recent events. size
// is rounded up to a power of two; <= 0 selects DefaultRingSize.
func New(size int) *Log {
	if size <= 0 {
		size = DefaultRingSize
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Log{
		slots: make([]atomic.Pointer[Event], n),
		mask:  uint64(n - 1),
		base:  time.Now(),
		m: &logMetrics{
			emitted:      telemetry.NewCounterVec("component").SetMaxCardinality(16),
			dumps:        telemetry.NewCounter(),
			dumpFailures: telemetry.NewCounter(),
			dumpBytes:    telemetry.NewGauge(),
		},
	}
}

// active is the process-wide recorder components emit into by default.
// Subsystems without a configuration seam of their own (pipe,
// flowstore, ipfix, bgp) always use it; classify and service accept an
// explicit Log and fall back to it.
var active atomic.Pointer[Log]

// SetActive installs l as the process-wide recorder (nil disables
// recording again).
func SetActive(l *Log) { active.Store(l) }

// Active returns the process-wide recorder, or nil when recording is
// off. Emit is nil-safe, so call sites chain without checking:
// eventlog.Active().Emit(...).
func Active() *Log { return active.Load() }

// Emit records one event. Safe from any goroutine, never blocks, and
// a nil receiver is a no-op — emitting into a disabled recorder costs
// one pointer compare.
func (l *Log) Emit(component, kind string, attackID uint64, attrs ...Attr) {
	if l == nil {
		return
	}
	now := time.Now()
	seq := l.seq.Add(1) - 1
	ev := &Event{
		Seq:       seq,
		WallNanos: now.UnixNano(),
		MonoNanos: now.Sub(l.base).Nanoseconds(),
		Component: component,
		Kind:      kind,
		AttackID:  attackID,
		Attrs:     attrs,
	}
	l.slots[seq&l.mask].Store(ev)
	l.m.emitted.With(component).Inc()
}

// Snapshot returns the retained events in sequence order. Events are
// immutable once published, so a snapshot taken during concurrent
// emission is a consistent set (each slot is the event last published
// to it), merely fuzzy about which lap of the ring the newest slots
// show.
func (l *Log) Snapshot() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, 0, len(l.slots))
	for i := range l.slots {
		if ev := l.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len reports how many events the ring currently retains.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	n := l.seq.Load()
	if n > uint64(len(l.slots)) {
		return len(l.slots)
	}
	return int(n)
}

// Cap reports the ring capacity.
func (l *Log) Cap() int {
	if l == nil {
		return 0
	}
	return len(l.slots)
}

// Emitted reports how many events have ever been emitted (including
// ones the ring has since overwritten).
func (l *Log) Emitted() uint64 {
	if l == nil {
		return 0
	}
	return l.seq.Load()
}

// Overwritten reports how many events the ring has dropped by
// wrapping.
func (l *Log) Overwritten() uint64 {
	if l == nil {
		return 0
	}
	n := l.seq.Load()
	if n <= uint64(len(l.slots)) {
		return 0
	}
	return n - uint64(len(l.slots))
}

// RegisterTelemetry attaches the recorder's accounting to r under the
// eventlog_* names.
func (l *Log) RegisterTelemetry(r *telemetry.Registry) {
	r.MustRegister("eventlog_events_total", "events emitted into the flight recorder by component", l.m.emitted)
	r.MustRegister("eventlog_ring_events", "events currently retained in the ring", func() float64 { return float64(l.Len()) })
	r.MustRegister("eventlog_ring_capacity", "event capacity of the ring", func() float64 { return float64(l.Cap()) })
	r.MustRegister("eventlog_ring_overwritten_events", "events dropped by ring wrap-around", func() float64 { return float64(l.Overwritten()) })
	r.MustRegister("eventlog_dumps_total", "incident dumps published", l.m.dumps)
	r.MustRegister("eventlog_dump_failures_total", "incident dump attempts that failed (previous dump kept)", l.m.dumpFailures)
	r.MustRegister("eventlog_dump_bytes", "size of the last published incident dump", l.m.dumpBytes)
}
