package eventlog

import (
	"fmt"
	"sync"
	"testing"

	"booterscope/internal/telemetry"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emit("test", "test_event", 0)
	if got := l.Snapshot(); got != nil {
		t.Fatalf("nil log Snapshot = %v, want nil", got)
	}
	if l.Len() != 0 || l.Cap() != 0 || l.Emitted() != 0 || l.Overwritten() != 0 {
		t.Fatal("nil log reports non-zero sizes")
	}
	if _, _, err := l.DumpTo(t.TempDir(), "noop", nil); err != nil {
		t.Fatalf("nil log DumpTo: %v", err)
	}
}

func TestEmitAndSnapshotOrder(t *testing.T) {
	l := New(64)
	for i := 0; i < 10; i++ {
		l.Emit("test", "test_event", uint64(i%3), AInt("i", int64(i)))
	}
	evs := l.Snapshot()
	if len(evs) != 10 {
		t.Fatalf("got %d events, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Component != "test" || ev.Kind != "test_event" {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if ev.Attr("i") != fmt.Sprint(i) {
			t.Fatalf("event %d attr i = %q", i, ev.Attr("i"))
		}
		if i > 0 && ev.MonoNanos < evs[i-1].MonoNanos {
			t.Fatalf("monotonic time went backwards at event %d", i)
		}
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	l := New(8)
	if l.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", l.Cap())
	}
	for i := 0; i < 20; i++ {
		l.Emit("test", "test_event", 0, AInt("i", int64(i)))
	}
	evs := l.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("got %d events after wrap, want 8", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(12 + i); ev.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (newest 8)", i, ev.Seq, want)
		}
	}
	if l.Overwritten() != 12 {
		t.Fatalf("Overwritten = %d, want 12", l.Overwritten())
	}
	if l.Len() != 8 {
		t.Fatalf("Len = %d, want 8", l.Len())
	}
}

func TestSizeRoundsUpToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, DefaultRingSize}, {1, 1}, {3, 4}, {100, 128}} {
		if got := New(tc.in).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

// TestConcurrentEmitSnapshot drives writers and readers together under
// the race detector: every snapshot must be a set of well-formed
// events in strictly increasing sequence order.
func TestConcurrentEmitSnapshot(t *testing.T) {
	l := New(128)
	const writers = 8
	const perWriter = 500
	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	readerWG.Add(2)
	for r := 0; r < 2; r++ {
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				evs := l.Snapshot()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("snapshot out of order: seq %d then %d", evs[i-1].Seq, evs[i].Seq)
						return
					}
				}
			}
		}()
	}
	writerWG.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				l.Emit("test", "test_event", uint64(w), AInt("i", int64(i)))
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	if l.Emitted() != writers*perWriter {
		t.Fatalf("Emitted = %d, want %d", l.Emitted(), writers*perWriter)
	}
}

func TestActiveDefaultsToNil(t *testing.T) {
	if Active() != nil {
		t.Skip("another test installed a process-wide recorder")
	}
	Active().Emit("test", "test_event", 0) // must not panic
	l := New(8)
	SetActive(l)
	defer SetActive(nil)
	Active().Emit("test", "test_event", 0)
	if l.Len() != 1 {
		t.Fatalf("active log Len = %d, want 1", l.Len())
	}
}

func TestRegisterTelemetry(t *testing.T) {
	l := New(8)
	reg := telemetry.NewRegistry()
	l.RegisterTelemetry(reg)
	for i := 0; i < 12; i++ {
		l.Emit("test", "test_event", 0)
	}
	s := reg.Snapshot()
	vec, ok := s.Vectors["eventlog_events_total"]
	if !ok {
		t.Fatal("eventlog_events_total not registered")
	}
	var total uint64
	for _, v := range vec.Values {
		total += v.Value
	}
	if total != 12 {
		t.Fatalf("eventlog_events_total = %d, want 12", total)
	}
	if got := s.Gauges["eventlog_ring_events"]; got != 8 {
		t.Fatalf("eventlog_ring_events = %v, want 8", got)
	}
	if got := s.Gauges["eventlog_ring_capacity"]; got != 8 {
		t.Fatalf("eventlog_ring_capacity = %v, want 8", got)
	}
	if got := s.Gauges["eventlog_ring_overwritten_events"]; got != 4 {
		t.Fatalf("eventlog_ring_overwritten_events = %v, want 4", got)
	}
}
