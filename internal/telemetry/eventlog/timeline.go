package eventlog

import (
	"sort"
	"strconv"
)

// Lifecycle kind suffixes. Emitters prefix them with their component
// (classify_attack_opened, service_flowspec_announced, ...) per the
// naming contract; the timeline builder matches on the suffix so it
// needs no import of — and no coupling to — the emitting packages.
const (
	SuffixAttackOpened     = "_attack_opened"
	SuffixThresholdCrossed = "_threshold_crossed"
	SuffixAlertRaised      = "_alert_raised"
	SuffixAttackEvicted    = "_attack_evicted"
	SuffixAnnounced        = "_flowspec_announced"
	SuffixWithdrawn        = "_flowspec_withdrawn"
	SuffixSuppression      = "_suppression_observed"
)

// Timeline is one attack's reconstructed lifecycle — the paper-style
// per-attack record (when it started, when mitigation engaged, how
// much traffic was suppressed) derived purely from the event stream,
// so the live ring and an incident dump yield identical timelines.
type Timeline struct {
	AttackID uint64 `json:"attack_id"`
	Victim   string `json:"victim,omitempty"`

	// Transition times in the recorder's monotonic clock (nanoseconds);
	// 0 means the transition was not observed. OpenedWallNanos
	// duplicates the opening in wall time for human correlation.
	OpenedWallNanos      int64 `json:"opened_wall_nanos,omitempty"`
	OpenedMonoNanos      int64 `json:"opened_mono_nanos,omitempty"`
	ThresholdMonoNanos   int64 `json:"threshold_mono_nanos,omitempty"`
	AlertMonoNanos       int64 `json:"alert_mono_nanos,omitempty"`
	AnnouncedMonoNanos   int64 `json:"announced_mono_nanos,omitempty"`
	WithdrawnMonoNanos   int64 `json:"withdrawn_mono_nanos,omitempty"`
	EvictedMonoNanos     int64 `json:"evicted_mono_nanos,omitempty"`
	SuppressionMonoNanos int64 `json:"suppression_mono_nanos,omitempty"`

	// DetectionLatencySeconds is first suspicious bin → alert raised;
	// TimeToMitigateSeconds is alert raised → FlowSpec announced. Both
	// are 0 when either endpoint is missing.
	DetectionLatencySeconds float64 `json:"detection_latency_seconds"`
	TimeToMitigateSeconds   float64 `json:"time_to_mitigate_seconds"`

	// AlertGbps/AlertSources/AlertBytes echo the alert's measurements.
	AlertGbps    float64 `json:"alert_gbps,omitempty"`
	AlertSources int64   `json:"alert_sources,omitempty"`
	AlertBytes   uint64  `json:"alert_bytes,omitempty"`

	// SuppressedRecords/Bytes are the cumulative attack traffic
	// observed while a mitigation rule was active (traffic a deployed
	// FlowSpec rule would have discarded upstream); SuppressionRatio is
	// suppressed bytes over total attack bytes (alert bytes +
	// suppressed bytes).
	SuppressedRecords uint64  `json:"suppressed_records,omitempty"`
	SuppressedBytes   uint64  `json:"suppressed_bytes,omitempty"`
	SuppressionRatio  float64 `json:"suppression_ratio"`

	// Events is the attack's full event trace in sequence order.
	Events []Event `json:"events"`
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}

// BuildTimelines groups the attack-linked events (AttackID != 0) into
// per-attack lifecycle timelines, ordered by first appearance in the
// stream. The input need not be sorted.
func BuildTimelines(events []Event) []Timeline {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })

	byID := make(map[uint64]*Timeline)
	var order []uint64
	for i := range sorted {
		ev := &sorted[i]
		if ev.AttackID == 0 {
			continue
		}
		tl, ok := byID[ev.AttackID]
		if !ok {
			tl = &Timeline{AttackID: ev.AttackID}
			byID[ev.AttackID] = tl
			order = append(order, ev.AttackID)
		}
		tl.Events = append(tl.Events, *ev)
		if tl.Victim == "" {
			tl.Victim = ev.Attr("victim")
		}
		switch {
		case hasSuffix(ev.Kind, SuffixAttackOpened):
			if tl.OpenedMonoNanos == 0 {
				tl.OpenedMonoNanos = ev.MonoNanos
				tl.OpenedWallNanos = ev.WallNanos
			}
		case hasSuffix(ev.Kind, SuffixThresholdCrossed):
			if tl.ThresholdMonoNanos == 0 {
				tl.ThresholdMonoNanos = ev.MonoNanos
			}
		case hasSuffix(ev.Kind, SuffixAlertRaised):
			if tl.AlertMonoNanos == 0 {
				tl.AlertMonoNanos = ev.MonoNanos
				tl.AlertGbps, _ = strconv.ParseFloat(ev.Attr("gbps"), 64)
				tl.AlertSources, _ = strconv.ParseInt(ev.Attr("sources"), 10, 64)
				tl.AlertBytes, _ = strconv.ParseUint(ev.Attr("bytes"), 10, 64)
			}
		case hasSuffix(ev.Kind, SuffixAnnounced):
			if tl.AnnouncedMonoNanos == 0 {
				tl.AnnouncedMonoNanos = ev.MonoNanos
			}
		case hasSuffix(ev.Kind, SuffixWithdrawn):
			tl.WithdrawnMonoNanos = ev.MonoNanos
		case hasSuffix(ev.Kind, SuffixAttackEvicted):
			tl.EvictedMonoNanos = ev.MonoNanos
		case hasSuffix(ev.Kind, SuffixSuppression):
			// Suppression events carry cumulative totals; the latest wins.
			tl.SuppressionMonoNanos = ev.MonoNanos
			tl.SuppressedRecords, _ = strconv.ParseUint(ev.Attr("records"), 10, 64)
			tl.SuppressedBytes, _ = strconv.ParseUint(ev.Attr("bytes"), 10, 64)
		}
	}

	out := make([]Timeline, 0, len(order))
	for _, id := range order {
		tl := byID[id]
		if tl.OpenedMonoNanos != 0 && tl.AlertMonoNanos != 0 {
			tl.DetectionLatencySeconds = float64(tl.AlertMonoNanos-tl.OpenedMonoNanos) / 1e9
		}
		if tl.AlertMonoNanos != 0 && tl.AnnouncedMonoNanos != 0 {
			tl.TimeToMitigateSeconds = float64(tl.AnnouncedMonoNanos-tl.AlertMonoNanos) / 1e9
		}
		if total := tl.AlertBytes + tl.SuppressedBytes; total > 0 {
			tl.SuppressionRatio = float64(tl.SuppressedBytes) / float64(total)
		}
		out = append(out, *tl)
	}
	return out
}

// TimelineFor returns the timeline of one attack ID (nil when the
// events contain none for it).
func TimelineFor(events []Event, id uint64) *Timeline {
	for _, tl := range BuildTimelines(events) {
		if tl.AttackID == id {
			return &tl
		}
	}
	return nil
}
