package eventlog

import (
	"testing"
)

func lifecycleEvents() []Event {
	return []Event{
		{Seq: 0, MonoNanos: 1_000_000_000, Component: "classify", Kind: "classify_attack_opened", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7"), AInt("minute_unix", 60)}},
		{Seq: 1, MonoNanos: 2_000_000_000, Component: "classify", Kind: "classify_threshold_crossed", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7")}},
		{Seq: 2, MonoNanos: 3_000_000_000, Component: "classify", Kind: "classify_alert_raised", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7"), AFloat("gbps", 2.5), AInt("sources", 40), AUint("bytes", 1000)}},
		{Seq: 3, MonoNanos: 4_500_000_000, Component: "service", Kind: "service_flowspec_announced", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7")}},
		{Seq: 4, MonoNanos: 5_000_000_000, Component: "service", Kind: "service_suppression_observed", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7"), AUint("records", 10), AUint("bytes", 500)}},
		{Seq: 5, MonoNanos: 6_000_000_000, Component: "service", Kind: "service_suppression_observed", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7"), AUint("records", 30), AUint("bytes", 3000)}},
		{Seq: 6, MonoNanos: 7_000_000_000, Component: "service", Kind: "service_flowspec_withdrawn", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7")}},
		{Seq: 7, MonoNanos: 8_000_000_000, Component: "classify", Kind: "classify_attack_evicted", AttackID: 11,
			Attrs: []Attr{A("victim", "203.0.113.7")}},
		// A second attack that only opened, plus unlinked noise.
		{Seq: 8, MonoNanos: 8_500_000_000, Component: "classify", Kind: "classify_attack_opened", AttackID: 22,
			Attrs: []Attr{A("victim", "203.0.113.9")}},
		{Seq: 9, MonoNanos: 9_000_000_000, Component: "flowstore", Kind: "flowstore_segment_sealed"},
	}
}

func TestBuildTimelines(t *testing.T) {
	// Shuffle input order to prove sorting by Seq.
	evs := lifecycleEvents()
	shuffled := []Event{evs[5], evs[0], evs[9], evs[7], evs[2], evs[8], evs[1], evs[6], evs[3], evs[4]}
	tls := BuildTimelines(shuffled)
	if len(tls) != 2 {
		t.Fatalf("got %d timelines, want 2", len(tls))
	}
	tl := tls[0]
	if tl.AttackID != 11 || tl.Victim != "203.0.113.7" {
		t.Fatalf("first timeline = %d/%q", tl.AttackID, tl.Victim)
	}
	if len(tl.Events) != 8 {
		t.Fatalf("attack 11 has %d events, want 8", len(tl.Events))
	}
	if tl.DetectionLatencySeconds != 2.0 {
		t.Fatalf("detection latency = %v, want 2.0", tl.DetectionLatencySeconds)
	}
	if tl.TimeToMitigateSeconds != 1.5 {
		t.Fatalf("time to mitigate = %v, want 1.5", tl.TimeToMitigateSeconds)
	}
	if tl.AlertGbps != 2.5 || tl.AlertSources != 40 || tl.AlertBytes != 1000 {
		t.Fatalf("alert measurements = %v/%v/%v", tl.AlertGbps, tl.AlertSources, tl.AlertBytes)
	}
	if tl.SuppressedRecords != 30 || tl.SuppressedBytes != 3000 {
		t.Fatalf("suppression totals = %d/%d (cumulative: latest event wins)", tl.SuppressedRecords, tl.SuppressedBytes)
	}
	if want := 3000.0 / 4000.0; tl.SuppressionRatio != want {
		t.Fatalf("suppression ratio = %v, want %v", tl.SuppressionRatio, want)
	}
	if tl.WithdrawnMonoNanos != 7_000_000_000 || tl.EvictedMonoNanos != 8_000_000_000 {
		t.Fatalf("withdraw/evict times = %d/%d", tl.WithdrawnMonoNanos, tl.EvictedMonoNanos)
	}

	tl2 := tls[1]
	if tl2.AttackID != 22 || tl2.DetectionLatencySeconds != 0 || tl2.TimeToMitigateSeconds != 0 {
		t.Fatalf("partial timeline = %+v", tl2)
	}
}

func TestTimelineFor(t *testing.T) {
	evs := lifecycleEvents()
	if tl := TimelineFor(evs, 22); tl == nil || tl.AttackID != 22 {
		t.Fatalf("TimelineFor(22) = %+v", tl)
	}
	if tl := TimelineFor(evs, 99); tl != nil {
		t.Fatalf("TimelineFor(99) = %+v, want nil", tl)
	}
}

// TestTimelineLiveDumpEquivalence pins the property the incident
// reader depends on: building timelines from a live ring snapshot and
// from a dump of that same ring yields identical results.
func TestTimelineLiveDumpEquivalence(t *testing.T) {
	l := New(256)
	for _, ev := range lifecycleEvents() {
		l.Emit(ev.Component, ev.Kind, ev.AttackID, ev.Attrs...)
	}
	dir := t.TempDir()
	path, _, err := l.DumpTo(dir, "drain", nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := LoadDump(path)
	if err != nil {
		t.Fatal(err)
	}
	live := BuildTimelines(l.Snapshot())
	dumped := BuildTimelines(d.Events)
	if len(live) != len(dumped) {
		t.Fatalf("live %d timelines, dump %d", len(live), len(dumped))
	}
	for i := range live {
		a, b := live[i], dumped[i]
		if a.AttackID != b.AttackID ||
			a.DetectionLatencySeconds != b.DetectionLatencySeconds ||
			a.TimeToMitigateSeconds != b.TimeToMitigateSeconds ||
			a.SuppressionRatio != b.SuppressionRatio ||
			len(a.Events) != len(b.Events) {
			t.Fatalf("timeline %d diverges: live %+v dump %+v", i, a, b)
		}
	}
}
