package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4), metrics sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, name := range r.names() {
		e := r.lookup(name)
		if e == nil {
			continue
		}
		var err error
		switch {
		case e.counter != nil:
			err = writeScalar(w, e.name, e.help, "counter", float64(e.counter.Value()))
		case e.gauge != nil:
			err = writeScalar(w, e.name, e.help, "gauge", e.gauge.Value())
		case e.gaugeFunc != nil:
			err = writeScalar(w, e.name, e.help, "gauge", e.gaugeFunc())
		case e.hist != nil:
			err = writeHistogram(w, e.name, e.help, e.hist.Snapshot())
		case e.vec != nil:
			err = writeVec(w, e.name, e.help, e.vec.Snapshot())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, name, help, typ string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	return err
}

func writeScalar(w io.Writer, name, help, typ string, v float64) error {
	if err := writeHeader(w, name, help, typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
	return err
}

func writeHistogram(w io.Writer, name, help string, s HistogramSnapshot) error {
	if err := writeHeader(w, name, help, "histogram"); err != nil {
		return err
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatValue(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(s.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	return err
}

func writeVec(w io.Writer, name, help string, s VecSnapshot) error {
	if err := writeHeader(w, name, help, "counter"); err != nil {
		return err
	}
	for _, v := range s.Values {
		pairs := make([]string, len(s.Labels))
		for i, l := range s.Labels {
			pairs[i] = fmt.Sprintf("%s=%q", l, escapeLabel(v.LabelValues[i]))
		}
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, strings.Join(pairs, ","), v.Value); err != nil {
			return err
		}
	}
	return nil
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// PrometheusHandler serves the registry in Prometheus text format.
func (r *Registry) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// JSONHandler serves a Snapshot as indented JSON.
func (r *Registry) JSONHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// FunnelPoint is one stage of a pipeline funnel read out of a
// snapshot: a stage name and the record count that reached it.
type FunnelPoint struct {
	Stage string
	Count uint64
}

// Funnel reads the named counters out of the snapshot in order —
// the flows exported → collected → classified accounting the paper's
// tables depend on. Missing counters read as zero.
func (s Snapshot) Funnel(stages ...string) []FunnelPoint {
	out := make([]FunnelPoint, len(stages))
	for i, name := range stages {
		out[i] = FunnelPoint{Stage: name, Count: s.Counters[name]}
	}
	return out
}

// Monotonic reports whether the funnel counts are non-increasing stage
// to stage (no stage "creates" records) — the core accounting
// invariant.
func Monotonic(points []FunnelPoint) bool {
	for i := 1; i < len(points); i++ {
		if points[i].Count > points[i-1].Count {
			return false
		}
	}
	return true
}
