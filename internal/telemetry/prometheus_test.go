package telemetry

import (
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// promSampleRE matches one Prometheus text-format sample line:
// name{label="value",...} value
var promSampleRE = regexp.MustCompile(`^([a-z][a-z0-9_]*)(\{([^}]*)\})? (\S+)$`)

var promLabelRE = regexp.MustCompile(`^[a-z][a-z0-9_]*="(?:[^"\\]|\\.)*"$`)

// TestPrometheusOutputParses renders a populated registry and checks
// every line is either a well-formed comment or a well-formed sample
// (name, labels, numeric value) — the exposition-format gate from the
// satellite tasks.
func TestPrometheusOutputParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("ipfix_collector_messages_total", "datagrams read").Add(12)
	r.Gauge("ipfix_collector_queue_depth_high_watermark", "peak queue depth").Set(7)
	r.Histogram("ipfix_exporter_backoff_seconds", "retry delays", 0.01, 0.1, 1).Observe(0.05)
	vec := r.CounterVec("chaos_proxy_faults_total", "faults by kind", "kind")
	vec.With("drop").Add(3)
	vec.With("re\"order\nx").Inc() // exercises label escaping
	if err := r.Register("classify_monitor_active_minute_bins", "occupancy", func() float64 { return 4 }); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	types := map[string]string{}
	samples := map[string]float64{}
	var families []string
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			families = append(families, parts[2])
			continue
		}
		m := promSampleRE.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable sample line: %q", line)
		}
		name, labels, value := m[1], m[3], m[4]
		if labels != "" {
			// Split on commas outside quotes; our writer never emits
			// commas inside label values unescaped quotes, so check each
			// pair shape.
			for _, pair := range splitLabelPairs(labels) {
				if !promLabelRE.MatchString(pair) {
					t.Fatalf("malformed label pair %q in line %q", pair, line)
				}
			}
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		samples[line] = v
		_ = name
	}

	// Every registered family appears with the right TYPE.
	for fam, typ := range map[string]string{
		"ipfix_collector_messages_total":             "counter",
		"ipfix_collector_queue_depth_high_watermark": "gauge",
		"ipfix_exporter_backoff_seconds":             "histogram",
		"chaos_proxy_faults_total":                   "counter",
		"classify_monitor_active_minute_bins":        "gauge",
	} {
		if types[fam] != typ {
			t.Fatalf("family %s has TYPE %q, want %q", fam, types[fam], typ)
		}
	}
	if samples[`ipfix_collector_messages_total 12`] != 12 {
		t.Fatalf("missing counter sample; output:\n%s", out)
	}
	if samples[`chaos_proxy_faults_total{kind="drop"} 3`] != 3 {
		t.Fatalf("missing labeled sample; output:\n%s", out)
	}

	// Histogram buckets are cumulative and end at +Inf == _count.
	var bucketLines []string
	for line := range samples {
		if strings.HasPrefix(line, "ipfix_exporter_backoff_seconds_bucket") {
			bucketLines = append(bucketLines, line)
		}
	}
	sort.Strings(bucketLines)
	if len(bucketLines) != 4 { // 3 bounds + +Inf
		t.Fatalf("bucket lines = %d, want 4:\n%v", len(bucketLines), bucketLines)
	}
	if samples[`ipfix_exporter_backoff_seconds_bucket{le="+Inf"} 1`] != 1 {
		t.Fatalf("missing +Inf bucket; output:\n%s", out)
	}
	if samples[`ipfix_exporter_backoff_seconds_count 1`] != 1 {
		t.Fatalf("missing _count; output:\n%s", out)
	}

	// Families are emitted sorted by name.
	if !sort.StringsAreSorted(families) {
		t.Fatalf("families not sorted: %v", families)
	}
}

// TestPrometheusHelpAndTypeLines pins the comment-line contract for
// the observability families PR 7 added (the burn-rate gauges and the
// flight recorder's per-component counter vec): every family gets
// exactly one HELP line carrying the registered help text and one TYPE
// line, HELP before TYPE, both before the first sample.
func TestPrometheusHelpAndTypeLines(t *testing.T) {
	r := NewRegistry()
	r.Gauge("service_slo_burn_rate_fast", "error-budget burn rate over the fast window").Set(1.5)
	r.Gauge("service_slo_burn_rate_slow", "error-budget burn rate over the slow window").Set(0.5)
	vec := r.CounterVec("eventlog_events_total", "events emitted by component", "component")
	vec.With("classify").Add(2)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")

	wantHelp := map[string]string{
		"service_slo_burn_rate_fast": "error-budget burn rate over the fast window",
		"service_slo_burn_rate_slow": "error-budget burn rate over the slow window",
		"eventlog_events_total":      "events emitted by component",
	}
	wantType := map[string]string{
		"service_slo_burn_rate_fast": "gauge",
		"service_slo_burn_rate_slow": "gauge",
		"eventlog_events_total":      "counter",
	}
	helpSeen, typeSeen, sampleSeen := map[string]int{}, map[string]int{}, map[string]bool{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			helpSeen[name]++
			if want, ok := wantHelp[name]; ok && help != want {
				t.Errorf("HELP for %s = %q, want %q", name, help, want)
			}
			if typeSeen[name] > 0 || sampleSeen[name] {
				t.Errorf("HELP for %s appears after its TYPE or samples", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.Fields(line)
			typeSeen[parts[2]]++
			if want, ok := wantType[parts[2]]; ok && parts[3] != want {
				t.Errorf("TYPE for %s = %q, want %q", parts[2], parts[3], want)
			}
			if sampleSeen[parts[2]] {
				t.Errorf("TYPE for %s appears after its samples", parts[2])
			}
		default:
			if m := promSampleRE.FindStringSubmatch(line); m != nil {
				fam := strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_count")
				sampleSeen[fam] = true
			}
		}
	}
	for name := range wantHelp {
		if helpSeen[name] != 1 || typeSeen[name] != 1 {
			t.Errorf("family %s: %d HELP, %d TYPE lines, want 1 each", name, helpSeen[name], typeSeen[name])
		}
	}
}

// TestPrometheusVecOverflowFoldsToOther pins the cardinality cap on
// the flight recorder's per-component vec: label values past the cap
// fold into the "_other" child instead of growing the scrape without
// bound, and the folded counts are preserved.
func TestPrometheusVecOverflowFoldsToOther(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("eventlog_events_total", "events emitted by component", "component")
	vec.SetMaxCardinality(2)
	vec.With("classify").Add(5)
	vec.With("service").Add(3)
	vec.With("ipfix").Add(2) // over the cap: folds
	vec.With("bgp").Inc()    // also folds, into the same child

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`eventlog_events_total{component="classify"} 5`,
		`eventlog_events_total{component="service"} 3`,
		`eventlog_events_total{component="_other"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, `component="ipfix"`) || strings.Contains(out, `component="bgp"`) {
		t.Errorf("over-cap label values leaked into the scrape:\n%s", out)
	}
}

// splitLabelPairs splits `a="x",b="y"` on commas that are outside
// quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
