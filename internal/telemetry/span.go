package telemetry

import (
	"sync"
	"time"
)

// DefaultSpanRing is how many finished spans a Tracer retains.
const DefaultSpanRing = 128

// SpanRecord is one finished pipeline stage execution.
type SpanRecord struct {
	Stage    string        `json:"stage"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration"`
	Err      string        `json:"err,omitempty"`
}

// Tracer records pipeline stage executions: each Start/End pair feeds a
// per-stage duration histogram and error counter in the owning
// registry, and the most recent spans are kept in a ring buffer for the
// /spans debug endpoint. Stage names must follow the metric naming
// charset ([a-z0-9_]) because they are embedded in metric names.
type Tracer struct {
	reg *Registry

	mu sync.Mutex
	//bsvet:guards mu
	ring []SpanRecord
	//bsvet:guards mu
	pos int
	//bsvet:guards mu
	n int
}

// Tracer returns the registry's span tracer, creating it on first use.
func (r *Registry) Tracer() *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tracer == nil {
		r.tracer = &Tracer{reg: r, ring: make([]SpanRecord, DefaultSpanRing)}
	}
	return r.tracer
}

// Span is an in-flight pipeline stage; finish it with End.
type Span struct {
	tr    *Tracer
	stage string
	start time.Time
}

// Start opens a span for one execution of the named stage.
func (t *Tracer) Start(stage string) *Span {
	return &Span{tr: t, stage: stage, start: time.Now()}
}

// End finishes the span, tagging it with err (nil for success). The
// duration lands in pipeline_stage_<stage>_seconds and errors in
// pipeline_stage_<stage>_errors_total.
func (s *Span) End(err error) {
	d := time.Since(s.start)
	rec := SpanRecord{Stage: s.stage, Start: s.start, Duration: d}
	if err != nil {
		rec.Err = err.Error()
		s.tr.reg.Counter("pipeline_stage_"+s.stage+"_errors_total",
			"errors finishing pipeline stage "+s.stage).Inc()
	}
	s.tr.reg.Histogram("pipeline_stage_"+s.stage+"_seconds",
		"duration of pipeline stage "+s.stage).ObserveDuration(d)

	s.tr.mu.Lock()
	s.tr.ring[s.tr.pos] = rec
	s.tr.pos = (s.tr.pos + 1) % len(s.tr.ring)
	if s.tr.n < len(s.tr.ring) {
		s.tr.n++
	}
	s.tr.mu.Unlock()
}

// Do runs fn as one span of the named stage, propagating its error.
func (t *Tracer) Do(stage string, fn func() error) error {
	sp := t.Start(stage)
	err := fn()
	sp.End(err)
	return err
}

// Recent returns the retained spans, oldest first.
func (t *Tracer) Recent() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recentLocked()
}

func (t *Tracer) recentLocked() []SpanRecord {
	out := make([]SpanRecord, 0, t.n)
	start := (t.pos - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// SetRingSize resizes the span ring (the -debug.spanring knob),
// keeping the newest spans that fit. Sizes below 1 are ignored.
func (t *Tracer) SetRingSize(n int) {
	if n < 1 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	kept := t.recentLocked()
	if len(kept) > n {
		kept = kept[len(kept)-n:]
	}
	t.ring = make([]SpanRecord, n)
	copy(t.ring, kept)
	t.n = len(kept)
	t.pos = t.n % n
}

// Len reports the retained span count (the ring's occupancy).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Cap reports the ring's capacity.
func (t *Tracer) Cap() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.ring)
}
