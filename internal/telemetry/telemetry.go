// Package telemetry is booterscope's dependency-free metrics layer: a
// registry of atomic counters, gauges, fixed-bucket histograms, and
// labeled counter vectors with a bounded label cardinality, plus a
// lightweight span tracer for pipeline stages (see span.go).
//
// The paper's analysis hinges on precise accounting at every pipeline
// stage — flows exported → collected → classified → attributed — so
// every subsystem registers its counters here under one naming scheme
// (component_subsystem_name_unit) and one scrape shows the whole
// funnel. Metric objects are cheap atomics created standalone; a
// component's Stats() struct stays a thin view over the same objects it
// registers, so accounting invariants asserted by tests hold whether or
// not a registry is attached.
//
// The registry is exposed three ways: Snapshot() for tests and the
// reproduce harness, Prometheus-text/JSON HTTP handlers (see
// prometheus.go and debugserver), and a periodic plain-text dashboard
// for headless runs (dashboard.go).
package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic float64 value that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a zeroed gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + d
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-watermark (queue depth peaks, burst sizes).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value reports the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefBuckets are the default histogram bucket upper bounds, tuned for
// durations in seconds from 100 µs to 10 s.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bucket bounds are upper bounds in ascending order; values above the
// last bound land in an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending bucket
// bounds (DefBuckets when none are given).
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram bounds not ascending at %v", bounds[i]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Bucket is one histogram bucket in a snapshot: the count of
// observations at or below UpperBound and above the previous bound.
type Bucket struct {
	UpperBound float64 // math.Inf(1) for the overflow bucket
	Count      uint64
}

// bucketJSON is the wire form of a Bucket: +Inf is not representable in
// JSON numbers, so the bound travels as a string.
type bucketJSON struct {
	Le    string `json:"le"`
	Count uint64 `json:"count"`
}

// MarshalJSON encodes the bucket with its bound as a string ("+Inf" for
// the overflow bucket).
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{Le: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var bj bucketJSON
	if err := json.Unmarshal(data, &bj); err != nil {
		return err
	}
	if bj.Le == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(bj.Le, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = bj.Count
	return nil
}

// HistogramSnapshot is a point-in-time view of a histogram with
// estimated quantiles.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Buckets []Bucket
	P50     float64
	P95     float64
	P99     float64
}

// Snapshot captures the histogram. Per-bucket counts are read without a
// global lock, so a snapshot taken during concurrent observation is
// approximate at the margin of in-flight updates but never torn per
// bucket.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Sum:     math.Float64frombits(h.sumBits.Load()),
		Buckets: make([]Bucket, len(h.counts)),
	}
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		c := h.counts[i].Load()
		s.Buckets[i] = Bucket{UpperBound: ub, Count: c}
		s.Count += c
	}
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// inside the containing bucket. Values in the +Inf bucket report the
// last finite bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var seen float64
	lower := 0.0
	for i, b := range s.Buckets {
		upper := b.UpperBound
		if math.IsInf(upper, 1) {
			// Cannot interpolate into +Inf: report the last finite bound.
			if i > 0 {
				return s.Buckets[i-1].UpperBound
			}
			return 0
		}
		if seen+float64(b.Count) >= rank {
			if b.Count == 0 {
				return upper
			}
			return lower + (upper-lower)*(rank-seen)/float64(b.Count)
		}
		seen += float64(b.Count)
		lower = upper
	}
	return lower
}

// DefaultMaxCardinality bounds the distinct label combinations a
// CounterVec tracks before folding new combinations into a shared
// overflow child (all label values "_other"). Unbounded label values —
// victim addresses, domains — would otherwise let an adversarial
// workload exhaust memory through its own metrics.
const DefaultMaxCardinality = 64

// overflowLabel is the label value of the fold-in child at the cap.
const overflowLabel = "_other"

// CounterVec is a counter partitioned by label values, with a bounded
// label cardinality.
type CounterVec struct {
	labels  []string
	maxCard int

	mu sync.RWMutex
	//bsvet:guards mu
	children map[string]*vecChild
	overflow atomic.Uint64
}

type vecChild struct {
	values []string
	c      Counter
}

// NewCounterVec returns a vector over the given label names with the
// default cardinality cap.
func NewCounterVec(labels ...string) *CounterVec {
	if len(labels) == 0 {
		panic("telemetry: CounterVec needs at least one label")
	}
	return &CounterVec{
		labels:   labels,
		maxCard:  DefaultMaxCardinality,
		children: make(map[string]*vecChild),
	}
}

// SetMaxCardinality adjusts the cap (before first use; <= 0 keeps the
// default).
func (v *CounterVec) SetMaxCardinality(n int) *CounterVec {
	if n > 0 {
		v.maxCard = n
	}
	return v
}

// With returns the counter for the given label values, creating it on
// first use. At the cardinality cap new combinations share one overflow
// child whose label values are all "_other"; the fold-ins are counted
// in Overflow.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: CounterVec expects %d label values, got %d", len(v.labels), len(values)))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	ch, ok := v.children[key]
	v.mu.RUnlock()
	if ok {
		return &ch.c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if ch, ok = v.children[key]; ok {
		return &ch.c
	}
	if len(v.children) >= v.maxCard {
		v.overflow.Add(1)
		okey := strings.Repeat(overflowLabel+"\x00", len(v.labels)-1) + overflowLabel
		if ch, ok = v.children[okey]; !ok {
			vals := make([]string, len(v.labels))
			for i := range vals {
				vals[i] = overflowLabel
			}
			ch = &vecChild{values: vals}
			v.children[okey] = ch
		}
		return &ch.c
	}
	vals := make([]string, len(values))
	copy(vals, values)
	ch = &vecChild{values: vals}
	v.children[key] = ch
	return &ch.c
}

// Overflow reports how many distinct label combinations were folded
// into the overflow child at the cardinality cap.
func (v *CounterVec) Overflow() uint64 { return v.overflow.Load() }

// VecValue is one labeled counter value in a snapshot.
type VecValue struct {
	LabelValues []string
	Value       uint64
}

// VecSnapshot is a point-in-time view of a CounterVec.
type VecSnapshot struct {
	Labels   []string
	Values   []VecValue
	Overflow uint64
}

// Snapshot captures the vector, values sorted by label tuple.
func (v *CounterVec) Snapshot() VecSnapshot {
	v.mu.RLock()
	defer v.mu.RUnlock()
	s := VecSnapshot{Labels: v.labels, Overflow: v.overflow.Load()}
	for _, ch := range v.children {
		s.Values = append(s.Values, VecValue{LabelValues: ch.values, Value: ch.c.Value()})
	}
	sort.Slice(s.Values, func(i, j int) bool {
		return strings.Join(s.Values[i].LabelValues, "\x00") < strings.Join(s.Values[j].LabelValues, "\x00")
	})
	return s
}

// metricNameRE enforces the component_subsystem_name_unit scheme:
// lower-case snake case, leading letter.
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

type entry struct {
	name, help string
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
	vec        *CounterVec
	gaugeFunc  func() float64
}

// Registry is a named collection of metrics. The zero value is not
// usable; construct with NewRegistry or use Default.
type Registry struct {
	mu sync.RWMutex
	//bsvet:guards mu
	entries map[string]*entry
	//bsvet:guards mu
	order []string // registration order, for stable dashboards
	//bsvet:guards mu
	tracer *Tracer
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry shared by the cmd binaries
// and the debug server.
func Default() *Registry {
	defaultOnce.Do(func() { defaultReg = NewRegistry() })
	return defaultReg
}

func (r *Registry) add(name, help string, e *entry) error {
	if !metricNameRE.MatchString(name) {
		return fmt.Errorf("telemetry: metric name %q does not match component_subsystem_name_unit (%s)", name, metricNameRE)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.entries[name]; ok {
		return fmt.Errorf("telemetry: metric %q already registered", name)
	}
	e.name, e.help = name, help
	r.entries[name] = e
	r.order = append(r.order, name)
	return nil
}

// Register attaches a pre-built metric (a *Counter, *Gauge, *Histogram,
// or *CounterVec) under name. Components own their metric objects —
// their Stats() structs read the same atomics — and attach them here so
// one scrape covers every subsystem. Registering a name twice or an
// unknown metric kind is an error.
func (r *Registry) Register(name, help string, m any) error {
	e := &entry{}
	switch m := m.(type) {
	case *Counter:
		e.counter = m
	case *Gauge:
		e.gauge = m
	case *Histogram:
		e.hist = m
	case *CounterVec:
		e.vec = m
	case func() float64:
		e.gaugeFunc = m
	default:
		return fmt.Errorf("telemetry: cannot register %T", m)
	}
	return r.add(name, help, e)
}

// MustRegister is Register, panicking on error — for wiring done once
// at startup where a duplicate name is a programming bug.
func (r *Registry) MustRegister(name, help string, m any) {
	if err := r.Register(name, help, m); err != nil {
		panic(err)
	}
}

// lookup returns the entry for name, or nil.
func (r *Registry) lookup(name string) *entry {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.entries[name]
}

// Counter returns the counter registered under name, creating and
// registering it on first use. It panics if name holds another kind.
func (r *Registry) Counter(name, help string) *Counter {
	if e := r.lookup(name); e != nil {
		if e.counter == nil {
			panic(fmt.Sprintf("telemetry: %q is not a counter", name))
		}
		return e.counter
	}
	c := NewCounter()
	if err := r.Register(name, help, c); err != nil {
		// Lost a registration race: return the winner.
		if e := r.lookup(name); e != nil && e.counter != nil {
			return e.counter
		}
		panic(err)
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if e := r.lookup(name); e != nil {
		if e.gauge == nil {
			panic(fmt.Sprintf("telemetry: %q is not a gauge", name))
		}
		return e.gauge
	}
	g := NewGauge()
	if err := r.Register(name, help, g); err != nil {
		if e := r.lookup(name); e != nil && e.gauge != nil {
			return e.gauge
		}
		panic(err)
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bounds on first use.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	if e := r.lookup(name); e != nil {
		if e.hist == nil {
			panic(fmt.Sprintf("telemetry: %q is not a histogram", name))
		}
		return e.hist
	}
	h := NewHistogram(bounds...)
	if err := r.Register(name, help, h); err != nil {
		if e := r.lookup(name); e != nil && e.hist != nil {
			return e.hist
		}
		panic(err)
	}
	return h
}

// CounterVec returns the counter vector registered under name, creating
// it over the given labels on first use.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if e := r.lookup(name); e != nil {
		if e.vec == nil {
			panic(fmt.Sprintf("telemetry: %q is not a counter vec", name))
		}
		return e.vec
	}
	v := NewCounterVec(labels...)
	if err := r.Register(name, help, v); err != nil {
		if e := r.lookup(name); e != nil && e.vec != nil {
			return e.vec
		}
		panic(err)
	}
	return v
}

// Snapshot is a stable point-in-time view of every registered metric,
// usable from tests and the reproduce harness without HTTP.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
	Vectors    map[string]VecSnapshot       `json:"vectors"`
	Spans      []SpanRecord                 `json:"spans,omitempty"`
}

// Snapshot captures every registered metric and, when a tracer is
// attached, the recent pipeline spans.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
		Vectors:    make(map[string]VecSnapshot),
	}
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	tracer := r.tracer
	r.mu.RUnlock()
	for _, e := range entries {
		switch {
		case e.counter != nil:
			s.Counters[e.name] = e.counter.Value()
		case e.gauge != nil:
			s.Gauges[e.name] = e.gauge.Value()
		case e.gaugeFunc != nil:
			s.Gauges[e.name] = e.gaugeFunc()
		case e.hist != nil:
			s.Histograms[e.name] = e.hist.Snapshot()
		case e.vec != nil:
			s.Vectors[e.name] = e.vec.Snapshot()
		}
	}
	if tracer != nil {
		s.Spans = tracer.Recent()
	}
	return s
}

// names returns the registered metric names sorted alphabetically.
func (r *Registry) names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	sort.Strings(out)
	return out
}
