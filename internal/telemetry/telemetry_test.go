package telemetry

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}

	g := NewGauge()
	g.Set(3.5)
	g.Add(-1.5)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %g, want 2", got)
	}
	g.SetMax(1) // below current: no change
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge after SetMax(1) = %g, want 2", got)
	}
	g.SetMax(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after SetMax(7) = %g, want 7", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 5, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	if want := 0.5 + 1.5 + 1.5 + 3 + 3 + 3 + 5 + 100; s.Sum != want {
		t.Fatalf("sum = %g, want %g", s.Sum, want)
	}
	wantCounts := []uint64{1, 2, 3, 1, 1} // (<=1, <=2, <=4, <=8, +Inf)
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Fatal("last bucket should be +Inf")
	}
	// Quantiles interpolate within buckets and clamp at the last finite
	// bound for the +Inf bucket.
	if p := s.Quantile(0.5); p < 2 || p > 4 {
		t.Fatalf("p50 = %g, want within (2, 4]", p)
	}
	if p := s.Quantile(0.99); p != 8 {
		t.Fatalf("p99 = %g, want clamp to last finite bound 8", p)
	}
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Fatal("snapshot quantile fields should match Quantile()")
	}
}

func TestHistogramDefaultBounds(t *testing.T) {
	h := NewHistogram()
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 {
		t.Fatalf("count = %d, want 1", s.Count)
	}
}

func TestCounterVecCardinalityCap(t *testing.T) {
	v := NewCounterVec("proto").SetMaxCardinality(2)
	v.With("ntp").Inc()
	v.With("dns").Inc()
	v.With("cldap").Inc()   // at cap: folds into _other
	v.With("chargen").Inc() // also _other
	v.With("ntp").Inc()     // existing child unaffected by cap

	s := v.Snapshot()
	if len(s.Values) != 3 { // ntp, dns, _other
		t.Fatalf("children = %d, want 3 (got %+v)", len(s.Values), s.Values)
	}
	byLabel := map[string]uint64{}
	for _, val := range s.Values {
		byLabel[val.LabelValues[0]] = val.Value
	}
	if byLabel["ntp"] != 2 || byLabel["dns"] != 1 || byLabel["_other"] != 2 {
		t.Fatalf("unexpected values: %+v", byLabel)
	}
	if v.Overflow() != 2 {
		t.Fatalf("overflow = %d, want 2", v.Overflow())
	}
}

func TestRegistryGetOrCreateAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ipfix_collector_messages_total", "messages")
	if c2 := r.Counter("ipfix_collector_messages_total", ""); c2 != c {
		t.Fatal("second Counter call should return the same object")
	}
	c.Add(5)
	r.Gauge("ipfix_collector_queue_depth", "").Set(12)
	r.Histogram("ipfix_exporter_backoff_seconds", "").Observe(0.03)
	r.CounterVec("chaos_proxy_faults_total", "", "kind").With("drop").Add(3)
	if err := r.Register("flow_table_active", "", func() float64 { return 99 }); err != nil {
		t.Fatal(err)
	}

	s := r.Snapshot()
	if s.Counters["ipfix_collector_messages_total"] != 5 {
		t.Fatalf("snapshot counter = %d, want 5", s.Counters["ipfix_collector_messages_total"])
	}
	if s.Gauges["ipfix_collector_queue_depth"] != 12 {
		t.Fatalf("snapshot gauge = %g, want 12", s.Gauges["ipfix_collector_queue_depth"])
	}
	if s.Gauges["flow_table_active"] != 99 {
		t.Fatalf("snapshot gauge func = %g, want 99", s.Gauges["flow_table_active"])
	}
	if s.Histograms["ipfix_exporter_backoff_seconds"].Count != 1 {
		t.Fatal("snapshot histogram missing")
	}
	if got := s.Vectors["chaos_proxy_faults_total"].Values[0].Value; got != 3 {
		t.Fatalf("snapshot vec = %d, want 3", got)
	}
}

func TestRegistryRejectsBadNamesAndDuplicates(t *testing.T) {
	r := NewRegistry()
	if err := r.Register("Bad-Name", "", NewCounter()); err == nil {
		t.Fatal("want error for non-snake-case name")
	}
	if err := r.Register("ok_name_total", "", NewCounter()); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("ok_name_total", "", NewCounter()); err == nil {
		t.Fatal("want error for duplicate registration")
	}
	if err := r.Register("weird_kind", "", struct{}{}); err == nil {
		t.Fatal("want error for unregisterable kind")
	}
}

// TestConcurrentUpdates hammers one counter, gauge, histogram, and vec
// from 16 goroutines while snapshots are taken concurrently, asserting
// the final totals are exact — the -race + consistency gate from the
// acceptance criteria.
func TestConcurrentUpdates(t *testing.T) {
	const (
		goroutines = 16
		perG       = 2000
	)
	r := NewRegistry()
	c := r.Counter("test_counter_total", "")
	g := r.Gauge("test_queue_depth_high_watermark", "")
	h := r.Histogram("test_latency_seconds", "", 0.001, 0.01, 0.1, 1)
	v := r.CounterVec("test_faults_total", "", "kind")
	tr := r.Tracer()

	stopSnap := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stopSnap:
				return
			default:
				s := r.Snapshot()
				// A mid-flight snapshot must stay internally coherent:
				// bucket sums never exceed the live total count.
				if hs, ok := s.Histograms["test_latency_seconds"]; ok {
					if hs.Count > goroutines*perG {
						panic("histogram snapshot overcounts")
					}
				}
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			kind := []string{"drop", "dup", "reorder", "corrupt"}[id%4]
			for j := 0; j < perG; j++ {
				c.Inc()
				g.SetMax(float64(id*perG + j))
				h.Observe(float64(j%200) / 1000)
				v.With(kind).Inc()
				if j%500 == 0 {
					sp := tr.Start("test_stage")
					sp.End(nil)
				}
			}
		}(i)
	}
	wg.Wait()
	close(stopSnap)
	snapWG.Wait()

	s := r.Snapshot()
	if got := s.Counters["test_counter_total"]; got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := s.Gauges["test_queue_depth_high_watermark"]; got != float64((goroutines-1)*perG+perG-1) {
		t.Fatalf("gauge high watermark = %g, want %d", got, (goroutines-1)*perG+perG-1)
	}
	hs := s.Histograms["test_latency_seconds"]
	if hs.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", hs.Count, goroutines*perG)
	}
	var bucketSum uint64
	for _, b := range hs.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != hs.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, hs.Count)
	}
	var vecSum uint64
	for _, val := range s.Vectors["test_faults_total"].Values {
		vecSum += val.Value
	}
	if vecSum != goroutines*perG {
		t.Fatalf("vec sum = %d, want %d", vecSum, goroutines*perG)
	}
}

func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	sp := tr.Start("decode")
	sp.End(nil)
	if err := tr.Do("classify", func() error { return errors.New("boom") }); err == nil {
		t.Fatal("Do should propagate the stage error")
	}

	recent := tr.Recent()
	if len(recent) != 2 {
		t.Fatalf("recent spans = %d, want 2", len(recent))
	}
	if recent[0].Stage != "decode" || recent[0].Err != "" {
		t.Fatalf("span 0 = %+v", recent[0])
	}
	if recent[1].Stage != "classify" || recent[1].Err != "boom" {
		t.Fatalf("span 1 = %+v", recent[1])
	}

	s := r.Snapshot()
	if s.Histograms["pipeline_stage_decode_seconds"].Count != 1 {
		t.Fatal("decode stage duration not recorded")
	}
	if s.Counters["pipeline_stage_classify_errors_total"] != 1 {
		t.Fatal("classify stage error not counted")
	}
	if len(s.Spans) != 2 {
		t.Fatalf("snapshot spans = %d, want 2", len(s.Spans))
	}
}

func TestTracerRingWraps(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	for i := 0; i < DefaultSpanRing+10; i++ {
		tr.Start("s").End(nil)
	}
	if got := len(tr.Recent()); got != DefaultSpanRing {
		t.Fatalf("ring holds %d spans, want %d", got, DefaultSpanRing)
	}
}

func TestFunnelHelpers(t *testing.T) {
	r := NewRegistry()
	r.Counter("funnel_exported_records_total", "").Add(100)
	r.Counter("funnel_collected_records_total", "").Add(90)
	r.Counter("funnel_classified_records_total", "").Add(40)
	pts := r.Snapshot().Funnel(
		"funnel_exported_records_total",
		"funnel_collected_records_total",
		"funnel_classified_records_total")
	if !Monotonic(pts) {
		t.Fatalf("funnel %v should be monotonic", pts)
	}
	r.Counter("funnel_collected_records_total", "").Add(50) // now 140 > 100
	pts = r.Snapshot().Funnel(
		"funnel_exported_records_total", "funnel_collected_records_total")
	if Monotonic(pts) {
		t.Fatalf("funnel %v should not be monotonic", pts)
	}
}

func TestDashboardRendersFrame(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_records_total", "").Add(7)
	r.Gauge("demo_queue_depth", "").Set(3)
	r.Histogram("demo_latency_seconds", "").Observe(0.02)
	r.CounterVec("demo_faults_total", "", "kind").With("drop").Inc()

	var buf strings.Builder
	d := NewDashboard(r, &buf, time.Hour)
	d.WriteOnce()
	out := buf.String()
	for _, want := range []string{
		"demo_records_total", "7",
		"demo_queue_depth",
		"demo_latency_seconds", "p95=",
		"demo_faults_total{kind=drop}",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard frame missing %q:\n%s", want, out)
		}
	}
}

func TestDashboardStartStop(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "").Inc()
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	d := NewDashboard(r, w, 5*time.Millisecond)
	d.Start()
	time.Sleep(20 * time.Millisecond)
	d.Stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "x_total") {
		t.Fatalf("periodic dashboard produced no frames:\n%s", out)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
