// Package textplot renders small terminal visualizations — sparklines,
// horizontal bar charts, time series panels, and CDF curves — used by
// the per-figure commands to show the reproduced plots directly in the
// terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a single line of block characters scaled
// to the series' own min/max. An empty series renders as "".
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	span := max - min
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - min) / span * float64(len(sparkRunes)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// Downsample reduces values to at most width points by averaging
// consecutive buckets, preserving the series' shape for narrow
// terminals.
func Downsample(values []float64, width int) []float64 {
	if width <= 0 || len(values) <= width {
		return values
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(values) / width
		hi := (i + 1) * len(values) / width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, v := range values[lo:hi] {
			sum += v
		}
		out[i] = sum / float64(hi-lo)
	}
	return out
}

// Bar renders one horizontal bar of the given fractional fill (0..1)
// over width cells.
func Bar(frac float64, width int) string {
	if width <= 0 {
		return ""
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	full := int(frac * float64(width))
	return strings.Repeat("█", full) + strings.Repeat("·", width-full)
}

// BarChart renders labeled horizontal bars scaled to the largest value.
type BarChart struct {
	rows []barRow
	// Width is the bar width in cells (default 40).
	Width int
}

type barRow struct {
	label string
	value float64
}

// Add appends one labeled value.
func (b *BarChart) Add(label string, value float64) {
	b.rows = append(b.rows, barRow{label, value})
}

// Render draws all rows, one per line.
func (b *BarChart) Render() string {
	width := b.Width
	if width <= 0 {
		width = 40
	}
	var max float64
	labelWidth := 0
	for _, r := range b.rows {
		if r.value > max {
			max = r.value
		}
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	var sb strings.Builder
	for _, r := range b.rows {
		frac := 0.0
		if max > 0 {
			frac = r.value / max
		}
		fmt.Fprintf(&sb, "%-*s %s %.4g\n", labelWidth, r.label, Bar(frac, width), r.value)
	}
	return sb.String()
}

// TimeSeries renders a daily series as a sparkline with an optional
// event marker (the takedown line in Figure 4 panels).
type TimeSeries struct {
	Values []float64
	// EventIndex draws a marker at this position (<0 disables).
	EventIndex int
	// Width bounds the rendered width (default 80).
	Width int
}

// Render draws the series over two lines: the sparkline and a marker
// line carrying the event position.
func (t TimeSeries) Render() string {
	width := t.Width
	if width <= 0 {
		width = 80
	}
	values := Downsample(t.Values, width)
	line := Sparkline(values)
	if t.EventIndex < 0 || t.EventIndex >= len(t.Values) || len(t.Values) == 0 {
		return line
	}
	pos := t.EventIndex * len(values) / len(t.Values)
	if pos >= len(values) {
		pos = len(values) - 1
	}
	marker := strings.Repeat(" ", pos) + "^ takedown"
	return line + "\n" + marker
}

// CDF renders an ECDF-style curve as fixed-quantile rows.
type CDF struct {
	// At evaluates P(X <= x).
	At func(float64) float64
	// Xs are the evaluation points.
	Xs []float64
	// Label names the x quantity.
	Label string
	// Width is the bar width (default 30).
	Width int
}

// Render draws one row per evaluation point.
func (c CDF) Render() string {
	width := c.Width
	if width <= 0 {
		width = 30
	}
	var sb strings.Builder
	for _, x := range c.Xs {
		p := c.At(x)
		if math.IsNaN(p) {
			p = 0
		}
		fmt.Fprintf(&sb, "%s <= %-8g %s %5.1f%%\n", c.Label, x, Bar(p, width), p*100)
	}
	return sb.String()
}

// Histogram renders bin fractions with their centers.
type Histogram struct {
	// Centers and Fractions are parallel; bins below MinFraction are
	// skipped to keep output compact.
	Centers     []float64
	Fractions   []float64
	MinFraction float64
	Width       int
}

// Render draws one row per visible bin.
func (h Histogram) Render() string {
	width := h.Width
	if width <= 0 {
		width = 30
	}
	minFrac := h.MinFraction
	if minFrac == 0 {
		minFrac = 0.005
	}
	var max float64
	for _, f := range h.Fractions {
		if f > max {
			max = f
		}
	}
	var sb strings.Builder
	for i, f := range h.Fractions {
		if f < minFrac {
			continue
		}
		frac := 0.0
		if max > 0 {
			frac = f / max
		}
		fmt.Fprintf(&sb, "%6.0f B %s %5.1f%%\n", h.Centers[i], Bar(frac, width), f*100)
	}
	return sb.String()
}
