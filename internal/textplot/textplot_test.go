package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("sparkline = %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty series should render empty")
	}
	// A constant series renders at the floor.
	flat := Sparkline([]float64{5, 5, 5})
	if flat != "▁▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
}

func TestSparklineExtremes(t *testing.T) {
	s := []rune(Sparkline([]float64{0, 100}))
	if s[0] != '▁' || s[1] != '█' {
		t.Errorf("extremes = %q", string(s))
	}
}

func TestDownsample(t *testing.T) {
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	out := Downsample(in, 10)
	if len(out) != 10 {
		t.Fatalf("len = %d", len(out))
	}
	// Bucket means rise monotonically.
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Errorf("bucket %d not increasing: %v", i, out)
		}
	}
	// First bucket is mean(0..9) = 4.5.
	if out[0] != 4.5 {
		t.Errorf("first bucket = %v", out[0])
	}
	// Short series pass through unchanged.
	short := []float64{1, 2}
	if got := Downsample(short, 10); &got[0] != &short[0] {
		t.Error("short series should pass through")
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "█████·····" {
		t.Errorf("bar = %q", got)
	}
	if got := Bar(-1, 4); got != "····" {
		t.Errorf("negative bar = %q", got)
	}
	if got := Bar(2, 4); got != "████" {
		t.Errorf("overflow bar = %q", got)
	}
	if Bar(0.5, 0) != "" {
		t.Error("zero-width bar should be empty")
	}
}

func TestBarChart(t *testing.T) {
	var b BarChart
	b.Add("memcached", 22.5)
	b.Add("NTP", 39.7)
	b.Add("DNS", 81.6)
	out := b.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	// DNS is the max: a full bar.
	if !strings.Contains(lines[2], strings.Repeat("█", 40)) {
		t.Errorf("max row not full: %q", lines[2])
	}
	if !strings.HasPrefix(lines[0], "memcached") {
		t.Errorf("label lost: %q", lines[0])
	}
	if !strings.Contains(lines[1], "39.7") {
		t.Errorf("value lost: %q", lines[1])
	}
}

func TestBarChartEmptyAndZero(t *testing.T) {
	var b BarChart
	if b.Render() != "" {
		t.Error("empty chart should render empty")
	}
	b.Add("zero", 0)
	if !strings.Contains(b.Render(), "····") {
		t.Error("zero row should render an empty bar")
	}
}

func TestTimeSeries(t *testing.T) {
	values := make([]float64, 122)
	for i := range values {
		values[i] = 100
		if i >= 80 {
			values[i] = 30
		}
	}
	out := TimeSeries{Values: values, EventIndex: 80, Width: 60}.Render()
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len([]rune(lines[0])) != 60 {
		t.Errorf("width = %d", len([]rune(lines[0])))
	}
	if !strings.Contains(lines[1], "^ takedown") {
		t.Errorf("marker line = %q", lines[1])
	}
	// Marker sits near 80/122 of the width.
	pos := strings.Index(lines[1], "^")
	want := 80 * 60 / 122
	if pos < want-2 || pos > want+2 {
		t.Errorf("marker at %d, want ~%d", pos, want)
	}
}

func TestTimeSeriesNoEvent(t *testing.T) {
	out := TimeSeries{Values: []float64{1, 2, 3}, EventIndex: -1}.Render()
	if strings.Contains(out, "takedown") {
		t.Error("marker rendered without an event")
	}
}

func TestCDF(t *testing.T) {
	cdf := CDF{
		At:    func(x float64) float64 { return x / 100 },
		Xs:    []float64{10, 50, 100},
		Label: "Gbps",
	}
	out := cdf.Render()
	if !strings.Contains(out, "10.0%") || !strings.Contains(out, "50.0%") || !strings.Contains(out, "100.0%") {
		t.Errorf("percentages missing:\n%s", out)
	}
	if !strings.Contains(out, "Gbps <= 10") {
		t.Errorf("labels missing:\n%s", out)
	}
	// NaN values render as zero instead of corrupting the bar.
	nan := CDF{At: func(float64) float64 { return math.NaN() }, Xs: []float64{1}, Label: "x"}
	if !strings.Contains(nan.Render(), "0.0%") {
		t.Error("NaN not normalized")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram{
		Centers:   []float64{76, 200, 488},
		Fractions: []float64{0.4, 0.001, 0.6},
	}
	out := h.Render()
	if strings.Contains(out, "200") {
		t.Error("sub-threshold bin should be hidden")
	}
	if !strings.Contains(out, "76 B") || !strings.Contains(out, "488 B") {
		t.Errorf("bins missing:\n%s", out)
	}
	if !strings.Contains(out, "60.0%") {
		t.Errorf("fractions missing:\n%s", out)
	}
}
