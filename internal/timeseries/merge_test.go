package timeseries

import (
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// Merging per-shard series must reproduce a serial pass exactly, in
// any merge order — the property the sharded pipeline rests on.
func TestSeriesMergeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := time.Date(2018, 12, 1, 0, 0, 0, 0, time.UTC)
	serial := NewDaily()
	shards := []*Series{NewDaily(), NewDaily(), NewDaily()}
	for i := 0; i < 5000; i++ {
		ts := base.Add(time.Duration(rng.Intn(60*24*60)) * time.Minute)
		v := float64(rng.Intn(1000))
		serial.Add(ts, v)
		shards[rng.Intn(len(shards))].Add(ts, v)
	}
	merged := NewDaily()
	// Reverse order on purpose: merge must be order-independent.
	for i := len(shards) - 1; i >= 0; i-- {
		merged.Merge(shards[i])
	}
	if !reflect.DeepEqual(merged.Points(), serial.Points()) {
		t.Fatal("merged shard series differ from serial series")
	}
}

func TestSeriesMergeRejectsBinSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging hourly into daily did not panic")
		}
	}()
	NewDaily().Merge(NewHourly())
}
