// Package timeseries provides the time-binned counters the takedown
// analysis runs on: daily and hourly series of packet counts, window
// extraction around an event date, and the paper's wt30/wt40 (Welch test
// significance) and red30/red40 (reduction ratio) metrics.
package timeseries

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"booterscope/internal/stats"
)

// ErrEmptyWindow reports a window that contains no days.
var ErrEmptyWindow = errors.New("timeseries: empty window")

// Series accumulates a value per time bin. The zero value is unusable;
// construct with NewSeries.
type Series struct {
	binSize time.Duration
	bins    map[int64]float64
}

// NewDaily returns a series binned by UTC day.
func NewDaily() *Series { return NewSeries(24 * time.Hour) }

// NewHourly returns a series binned by hour.
func NewHourly() *Series { return NewSeries(time.Hour) }

// NewSeries returns a series with the given bin size.
func NewSeries(binSize time.Duration) *Series {
	return &Series{binSize: binSize, bins: make(map[int64]float64)}
}

// BinSize reports the series' bin width.
func (s *Series) BinSize() time.Duration { return s.binSize }

// Add accumulates v into the bin containing ts.
func (s *Series) Add(ts time.Time, v float64) {
	s.bins[ts.UTC().Truncate(s.binSize).Unix()] += v
}

// At returns the value of the bin containing ts (0 if empty).
func (s *Series) At(ts time.Time) float64 {
	return s.bins[ts.UTC().Truncate(s.binSize).Unix()]
}

// Len reports the number of non-empty bins.
func (s *Series) Len() int { return len(s.bins) }

// Merge folds other into s bin by bin. Counters in this repository are
// integer-valued float64s well below 2^53, so merging per-shard series
// is exact and order-independent — a sharded pass sums to the same
// bins as a serial one. Both series must share a bin size.
func (s *Series) Merge(other *Series) {
	if other == nil {
		return
	}
	if other.binSize != s.binSize {
		panic(fmt.Sprintf("timeseries: merging bin size %v into %v", other.binSize, s.binSize))
	}
	for k, v := range other.bins {
		s.bins[k] += v
	}
}

// Point is one (time, value) sample.
type Point struct {
	Time  time.Time
	Value float64
}

// Points returns the series in chronological order. Bins between the
// first and last observation that received no data appear with value 0,
// so day gaps do not silently shrink test windows.
func (s *Series) Points() []Point {
	if len(s.bins) == 0 {
		return nil
	}
	keys := make([]int64, 0, len(s.bins))
	for k := range s.bins {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	step := int64(s.binSize / time.Second)
	var out []Point
	for k := keys[0]; k <= keys[len(keys)-1]; k += step {
		out = append(out, Point{Time: time.Unix(k, 0).UTC(), Value: s.bins[k]})
	}
	return out
}

// Window returns the bin values in [from, to) in chronological order,
// including zero bins.
func (s *Series) Window(from, to time.Time) []float64 {
	fromBin := from.UTC().Truncate(s.binSize).Unix()
	toBin := to.UTC().Truncate(s.binSize).Unix()
	step := int64(s.binSize / time.Second)
	var out []float64
	for k := fromBin; k < toBin; k += step {
		out = append(out, s.bins[k])
	}
	return out
}

// Sum returns the total over all bins.
func (s *Series) Sum() float64 {
	var total float64
	for _, v := range s.bins {
		total += v
	}
	return total
}

// EventAnalysis holds the before/after comparison of a series around an
// event for one window size, mirroring the paper's per-panel annotations
// in Figures 4 and 5.
type EventAnalysis struct {
	// WindowDays is the window half-width (30 or 40 in the paper).
	WindowDays int
	// Welch is the one-tailed Welch test for a reduction.
	Welch stats.WelchResult
	// Significant is the wtN metric at p = 0.05.
	Significant bool
	// Reduction is the redN metric: daily mean after / daily mean before.
	Reduction float64
}

// String formats the analysis the way the paper annotates its panels.
func (a EventAnalysis) String() string {
	return fmt.Sprintf("wt%d sign. (p=0.05): %t, red%d: %.2f%%",
		a.WindowDays, a.Significant, a.WindowDays, a.Reduction*100)
}

// Alpha is the significance level of the study's Welch tests.
const Alpha = 0.05

// AnalyzeEvent compares the windowDays bins before the event against the
// windowDays bins after it. The event day itself belongs to the "after"
// window, matching a takedown that becomes effective on its announcement
// day.
func AnalyzeEvent(s *Series, event time.Time, windowDays int) (EventAnalysis, error) {
	if windowDays <= 0 {
		return EventAnalysis{}, ErrEmptyWindow
	}
	day := event.UTC().Truncate(s.binSize)
	window := s.binSize * time.Duration(windowDays)
	before := s.Window(day.Add(-window), day)
	after := s.Window(day, day.Add(window))
	if len(before) < 2 || len(after) < 2 {
		return EventAnalysis{}, ErrEmptyWindow
	}
	welch, err := stats.WelchOneTailed(before, after)
	if err != nil {
		return EventAnalysis{}, err
	}
	return EventAnalysis{
		WindowDays:  windowDays,
		Welch:       welch,
		Significant: welch.Significant(Alpha),
		Reduction:   welch.ReductionRatio(),
	}, nil
}

// AnalyzeEventRank runs the non-parametric companion of AnalyzeEvent:
// a one-tailed Mann-Whitney U test over the same ±windowDays windows.
// Used as a robustness check — daily packet sums are heavy-tailed, and
// conclusions that only hold under the t-test would be fragile.
func AnalyzeEventRank(s *Series, event time.Time, windowDays int) (stats.MannWhitneyResult, error) {
	if windowDays <= 0 {
		return stats.MannWhitneyResult{}, ErrEmptyWindow
	}
	day := event.UTC().Truncate(s.binSize)
	window := s.binSize * time.Duration(windowDays)
	before := s.Window(day.Add(-window), day)
	after := s.Window(day, day.Add(window))
	if len(before) < 2 || len(after) < 2 {
		return stats.MannWhitneyResult{}, ErrEmptyWindow
	}
	return stats.MannWhitneyOneTailed(before, after)
}

// TakedownMetrics bundles the paper's four headline numbers for one
// traffic series: wt30, wt40, red30, red40.
type TakedownMetrics struct {
	WT30  EventAnalysis
	WT40  EventAnalysis
	Label string
}

// String formats both windows on one line.
func (m TakedownMetrics) String() string {
	return fmt.Sprintf("%s: %v; %v", m.Label, m.WT30, m.WT40)
}

// AnalyzeTakedown computes the ±30 and ±40 day metrics for a daily
// series around the event.
func AnalyzeTakedown(s *Series, event time.Time, label string) (TakedownMetrics, error) {
	wt30, err := AnalyzeEvent(s, event, 30)
	if err != nil {
		return TakedownMetrics{}, fmt.Errorf("timeseries: 30-day window: %w", err)
	}
	wt40, err := AnalyzeEvent(s, event, 40)
	if err != nil {
		return TakedownMetrics{}, fmt.Errorf("timeseries: 40-day window: %w", err)
	}
	return TakedownMetrics{WT30: wt30, WT40: wt40, Label: label}, nil
}
