package timeseries

import (
	"strings"
	"testing"
	"time"

	"booterscope/internal/netutil"
)

var takedown = time.Date(2018, 12, 19, 0, 0, 0, 0, time.UTC)

func TestSeriesBinning(t *testing.T) {
	s := NewDaily()
	s.Add(time.Date(2018, 12, 1, 3, 0, 0, 0, time.UTC), 10)
	s.Add(time.Date(2018, 12, 1, 23, 59, 0, 0, time.UTC), 5)
	s.Add(time.Date(2018, 12, 2, 0, 0, 1, 0, time.UTC), 7)
	if got := s.At(time.Date(2018, 12, 1, 12, 0, 0, 0, time.UTC)); got != 15 {
		t.Errorf("day 1 = %v", got)
	}
	if got := s.At(time.Date(2018, 12, 2, 5, 0, 0, 0, time.UTC)); got != 7 {
		t.Errorf("day 2 = %v", got)
	}
	if s.Len() != 2 {
		t.Errorf("len = %d", s.Len())
	}
	if s.Sum() != 22 {
		t.Errorf("sum = %v", s.Sum())
	}
	if s.BinSize() != 24*time.Hour {
		t.Errorf("bin size = %v", s.BinSize())
	}
}

func TestSeriesTimezoneNormalization(t *testing.T) {
	s := NewDaily()
	est := time.FixedZone("EST", -5*3600)
	// 23:00 EST on Dec 1 is 04:00 UTC on Dec 2.
	s.Add(time.Date(2018, 12, 1, 23, 0, 0, 0, est), 1)
	if got := s.At(time.Date(2018, 12, 2, 0, 0, 0, 0, time.UTC)); got != 1 {
		t.Errorf("UTC day 2 = %v", got)
	}
}

func TestPointsFillGaps(t *testing.T) {
	s := NewDaily()
	s.Add(takedown, 1)
	s.Add(takedown.AddDate(0, 0, 3), 4)
	pts := s.Points()
	if len(pts) != 4 {
		t.Fatalf("points = %d, want 4 (gap days included)", len(pts))
	}
	if pts[1].Value != 0 || pts[2].Value != 0 {
		t.Errorf("gap days = %v, %v", pts[1].Value, pts[2].Value)
	}
	if !pts[0].Time.Equal(takedown) || pts[3].Value != 4 {
		t.Errorf("endpoints wrong: %+v", pts)
	}
	if NewDaily().Points() != nil {
		t.Error("empty series should return nil points")
	}
}

func TestWindow(t *testing.T) {
	s := NewDaily()
	for d := 0; d < 10; d++ {
		s.Add(takedown.AddDate(0, 0, d), float64(d))
	}
	w := s.Window(takedown.AddDate(0, 0, 2), takedown.AddDate(0, 0, 5))
	if len(w) != 3 || w[0] != 2 || w[2] != 4 {
		t.Errorf("window = %v", w)
	}
	// Windows include empty bins as zero.
	w = s.Window(takedown.AddDate(0, 0, -2), takedown)
	if len(w) != 2 || w[0] != 0 || w[1] != 0 {
		t.Errorf("empty-prefix window = %v", w)
	}
}

func TestHourlySeries(t *testing.T) {
	s := NewHourly()
	base := time.Date(2018, 12, 19, 14, 0, 0, 0, time.UTC)
	s.Add(base.Add(10*time.Minute), 3)
	s.Add(base.Add(50*time.Minute), 4)
	s.Add(base.Add(70*time.Minute), 5)
	if got := s.At(base); got != 7 {
		t.Errorf("hour bin = %v", got)
	}
	if got := s.At(base.Add(time.Hour)); got != 5 {
		t.Errorf("next hour = %v", got)
	}
}

// buildDrop builds a 122-day daily series with a level shift at the
// takedown: mean beforeLevel before, afterLevel after, noise sigma.
func buildDrop(beforeLevel, afterLevel, sigma float64, seed uint64) *Series {
	r := netutil.NewRand(seed)
	s := NewDaily()
	start := takedown.AddDate(0, 0, -80)
	for d := 0; d < 122; d++ {
		day := start.AddDate(0, 0, d)
		level := beforeLevel
		if !day.Before(takedown) {
			level = afterLevel
		}
		v := r.Normal(level, sigma)
		if v < 0 {
			v = 0
		}
		s.Add(day, v)
	}
	return s
}

func TestAnalyzeEventDetectsDrop(t *testing.T) {
	s := buildDrop(1e6, 225e3, 5e4, 1)
	a, err := AnalyzeEvent(s, takedown, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Significant {
		t.Errorf("drop not significant: p = %v", a.Welch.P)
	}
	if a.Reduction < 0.15 || a.Reduction > 0.3 {
		t.Errorf("reduction = %v, want ~0.225", a.Reduction)
	}
	if a.WindowDays != 30 {
		t.Errorf("window = %d", a.WindowDays)
	}
}

func TestAnalyzeEventNoDrop(t *testing.T) {
	s := buildDrop(1e6, 1e6, 5e4, 2)
	for _, days := range []int{30, 40} {
		a, err := AnalyzeEvent(s, takedown, days)
		if err != nil {
			t.Fatal(err)
		}
		if a.Significant {
			t.Errorf("wt%d flagged flat series: p = %v", days, a.Welch.P)
		}
	}
}

func TestAnalyzeEventWindowPlacement(t *testing.T) {
	// Value 10 for exactly 30 days before, 2 for 30 days starting at the
	// event. Means must be exact, proving the event day lands in "after".
	s := NewDaily()
	for d := -30; d < 0; d++ {
		s.Add(takedown.AddDate(0, 0, d), 10)
	}
	for d := 0; d < 30; d++ {
		s.Add(takedown.AddDate(0, 0, d), 2)
	}
	a, err := AnalyzeEvent(s, takedown, 30)
	if err != nil {
		t.Fatal(err)
	}
	if a.Welch.MeanBefore != 10 || a.Welch.MeanAfter != 2 {
		t.Errorf("means = %v / %v", a.Welch.MeanBefore, a.Welch.MeanAfter)
	}
	if a.Reduction != 0.2 {
		t.Errorf("reduction = %v", a.Reduction)
	}
}

func TestAnalyzeEventErrors(t *testing.T) {
	s := NewDaily()
	if _, err := AnalyzeEvent(s, takedown, 0); err != ErrEmptyWindow {
		t.Errorf("zero window err = %v", err)
	}
	if _, err := AnalyzeEvent(s, takedown, 1); err != ErrEmptyWindow {
		t.Errorf("1-day window err = %v", err)
	}
}

func TestAnalyzeTakedown(t *testing.T) {
	s := buildDrop(1e6, 4e5, 4e4, 3)
	m, err := AnalyzeTakedown(s, takedown, "packets NTP dst port")
	if err != nil {
		t.Fatal(err)
	}
	if !m.WT30.Significant || !m.WT40.Significant {
		t.Error("both windows should be significant")
	}
	if m.WT30.WindowDays != 30 || m.WT40.WindowDays != 40 {
		t.Errorf("window days = %d/%d", m.WT30.WindowDays, m.WT40.WindowDays)
	}
	str := m.String()
	if !strings.Contains(str, "packets NTP dst port") || !strings.Contains(str, "wt30 sign. (p=0.05): true") {
		t.Errorf("String() = %q", str)
	}
}

func TestEventAnalysisString(t *testing.T) {
	s := buildDrop(100, 25, 1, 4)
	a, err := AnalyzeEvent(s, takedown, 40)
	if err != nil {
		t.Fatal(err)
	}
	str := a.String()
	if !strings.Contains(str, "wt40") || !strings.Contains(str, "red40") {
		t.Errorf("String() = %q", str)
	}
}

func BenchmarkAnalyzeTakedown(b *testing.B) {
	s := buildDrop(1e6, 4e5, 4e4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeTakedown(s, takedown, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}
