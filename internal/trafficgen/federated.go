package trafficgen

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"
	"time"

	"booterscope/internal/flow"
	"booterscope/internal/netutil"
)

// FederatedView describes how one vantage in a federated deployment
// observes shared ground-truth traffic. The paper's Table 1 asymmetry
// — 834B packet-sampled IXP flows vs 6.6B tier-1 vs 470M tier-2
// records — reduces to two knobs: which share of destinations routes
// across the vantage at all (Visibility) and how aggressively the
// platform packet-samples what it does see (SamplingRate).
//
// Unlike Kind-based generation (Scenario.Day), where each vantage
// draws an independent traffic process, every FederatedView observes
// the SAME underlying flows — so cross-vantage correlation has a
// ground truth to disagree about: an attack invisible at a vantage is
// invisible because of that vantage's routing or sampling, not
// because it never happened there.
type FederatedView struct {
	// Name identifies the vantage; it keys visibility decisions, so
	// two views with different names see different destination subsets.
	Name string
	// Tier is a free-form label (ixp, tier-1 isp, ...) carried into
	// manifests for reporting.
	Tier string
	// Visibility is the fraction of destination addresses whose
	// traffic crosses this vantage, in (0, 1]. The decision is a
	// deterministic hash of (Name, Dst), so an attack toward one
	// victim is wholly visible or wholly missing — the paper's
	// "seen at the IXP, missing at the tier-1" shape.
	Visibility float64
	// SamplingRate is the vantage's 1-in-N packet sampling; 0 or 1
	// means unsampled. Sampled records carry the rate so analyses can
	// scale counters back up.
	SamplingRate uint32
}

// visible decides whether traffic toward dst routes across the view:
// an FNV-1a hash of (view name, destination) against the visibility
// fraction. Pure per-destination — independent of record order, day,
// and the other views.
func (v FederatedView) visible(dst netip.Addr) bool {
	if v.Visibility >= 1 {
		return true
	}
	h := fnv.New64a()
	h.Write([]byte(v.Name))
	b := dst.As16()
	h.Write(b[:])
	// Map the hash to [0, 1) with 53 usable bits.
	frac := float64(h.Sum64()>>11) / float64(1<<53)
	return frac < v.Visibility
}

// sampleFrac is a second per-record hash channel (name, dst, start
// nanos) used for the probabilistic rounding of packet sampling, so
// sampling is deterministic per record without threading a rand whose
// consumption order would couple the views to each other.
func (v FederatedView) sampleFrac(r *flow.Record) uint64 {
	h := fnv.New64a()
	h.Write([]byte(v.Name))
	b := r.Dst.As16()
	h.Write(b[:])
	s := r.Src.As16()
	h.Write(s[:])
	var t [8]byte
	n := uint64(r.Start.UnixNano())
	for i := 0; i < 8; i++ {
		t[i] = byte(n >> (8 * i))
	}
	h.Write(t[:])
	return h.Sum64()
}

// Observe derives the view's observation of ground-truth records:
// destinations outside the visibility fraction vanish entirely;
// surviving records are packet-sampled at SamplingRate with unbiased
// probabilistic rounding (expected scaled counters equal the ground
// truth). Input order is preserved; the input slice is not modified.
func (v FederatedView) Observe(recs []flow.Record) []flow.Record {
	out := make([]flow.Record, 0, len(recs))
	rate := uint64(v.SamplingRate)
	for i := range recs {
		rec := recs[i]
		if !v.visible(rec.Dst) {
			continue
		}
		if rate > 1 {
			sampled := rec.Packets / rate
			rem := rec.Packets % rate
			// Round up with probability rem/rate, decided by the
			// record's own hash channel.
			if v.sampleFrac(&rec)%rate < rem {
				sampled++
			}
			if sampled == 0 {
				continue
			}
			avg := rec.Bytes / rec.Packets
			rec.Packets = sampled
			rec.Bytes = sampled * avg
			rec.SamplingRate = v.SamplingRate
		}
		out = append(out, rec)
	}
	return out
}

// SortViews orders views by name — the canonical federation order:
// vantage manifests sort by name, and the byte-identity proof between
// a federated scan and a union-archive scan relies on writing the
// union in this same order.
func SortViews(views []FederatedView) []FederatedView {
	out := append([]FederatedView(nil), views...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FederatedDay generates one day of shared ground-truth traffic plus
// each view's observation of it. The ground truth uses the tier-2
// generating process (full bidirectional view, no platform sampling)
// with a dedicated rand fork, so federated scenarios coexist with
// per-Kind days under one seed. perView[i] corresponds to views[i].
//
// Every ground-truth record gets a distinct nanosecond start-time
// offset (its index within the day). That makes the merged time order
// of any subset union total up to per-view copies of the same record,
// which is what lets TestFederatedMatchesMerged demand byte-identical
// streams from a federated scan and a single union archive.
func (s *Scenario) FederatedDay(day int, views []FederatedView) (union []flow.Record, perView [][]flow.Record) {
	r := netutil.NewRand(s.cfg.Seed).Fork(fmt.Sprintf("fed-day-%d", day))
	dayStart := s.DayTime(day)
	b := bases[KindTier2]

	var recs []flow.Record
	recs = s.appendTriggerFlows(recs, r, KindTier2, day, dayStart, b)
	recs = s.appendBenignNTP(recs, r, dayStart, b)
	recs = s.appendNoiseDests(recs, r, dayStart, b)
	recs = s.appendAttacks(recs, r, KindTier2, dayStart, b)
	for i := range recs {
		recs[i].Start = recs[i].Start.Add(time.Duration(i) * time.Nanosecond)
	}

	perView = make([][]flow.Record, len(views))
	for i, v := range views {
		perView[i] = v.Observe(recs)
	}
	return recs, perView
}
