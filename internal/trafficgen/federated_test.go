package trafficgen

import (
	"reflect"
	"testing"
	"time"
)

func fedViews() []FederatedView {
	return SortViews([]FederatedView{
		{Name: "tier2", Tier: "tier-2 isp", Visibility: 0.35, SamplingRate: 1},
		{Name: "ixp", Tier: "ixp", Visibility: 0.98, SamplingRate: 100},
		{Name: "tier1", Tier: "tier-1 isp", Visibility: 0.55, SamplingRate: 1},
	})
}

func fedScenario() *Scenario {
	return NewScenario(Config{
		Start: time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC),
		Days:  2,
		Seed:  42,
		Scale: 0.1,
	})
}

// TestFederatedDayDeterministic: same scenario, same day, same views —
// byte-identical ground truth and observations on every call.
func TestFederatedDayDeterministic(t *testing.T) {
	views := fedViews()
	u1, p1 := fedScenario().FederatedDay(0, views)
	u2, p2 := fedScenario().FederatedDay(0, views)
	if !reflect.DeepEqual(u1, u2) {
		t.Fatal("ground truth differs between identical calls")
	}
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("per-view observations differ between identical calls")
	}
}

// TestFederatedDayUniqueStarts: the byte-identity proof needs a total
// merge order, which requires ground-truth start times to be unique.
func TestFederatedDayUniqueStarts(t *testing.T) {
	union, _ := fedScenario().FederatedDay(0, fedViews())
	seen := make(map[int64]bool, len(union))
	for i := range union {
		ns := union[i].Start.UnixNano()
		if seen[ns] {
			t.Fatalf("duplicate ground-truth start time %d", ns)
		}
		seen[ns] = true
	}
}

// TestFederatedViewSemantics: per-destination visibility is all or
// nothing, sampled records carry the sampling rate, and every observed
// record is a ground-truth record (same key and start).
func TestFederatedViewSemantics(t *testing.T) {
	views := fedViews()
	union, perView := fedScenario().FederatedDay(0, views)
	type keyTime struct {
		src, dst string
		ns       int64
	}
	truth := make(map[keyTime]bool, len(union))
	for i := range union {
		truth[keyTime{union[i].Src.String(), union[i].Dst.String(), union[i].Start.UnixNano()}] = true
	}
	for vi, v := range views {
		recs := perView[vi]
		if len(recs) == 0 {
			t.Fatalf("view %s observed nothing", v.Name)
		}
		for i := range recs {
			r := &recs[i]
			if !v.visible(r.Dst) {
				t.Fatalf("view %s emitted a record toward invisible destination %v", v.Name, r.Dst)
			}
			if !truth[keyTime{r.Src.String(), r.Dst.String(), r.Start.UnixNano()}] {
				t.Fatalf("view %s emitted a record not in the ground truth", v.Name)
			}
			if v.SamplingRate > 1 && r.SamplingRate != v.SamplingRate {
				t.Fatalf("view %s: sampled record carries rate %d, want %d", v.Name, r.SamplingRate, v.SamplingRate)
			}
		}
		// Visibility is per destination: a destination either appears
		// with every ground-truth record toward it (modulo sampling) or
		// not at all. Spot-check via the unsampled views.
		if v.SamplingRate <= 1 {
			wantCount := 0
			for i := range union {
				if v.visible(union[i].Dst) {
					wantCount++
				}
			}
			if len(recs) != wantCount {
				t.Fatalf("view %s observed %d records, want %d (visibility is per destination)",
					v.Name, len(recs), wantCount)
			}
		}
	}
}

// TestFederatedSamplingUnbiased: scaled counters of a sampled view
// approximate the visible ground truth (unbiased rounding).
func TestFederatedSamplingUnbiased(t *testing.T) {
	views := fedViews()
	union, perView := fedScenario().FederatedDay(0, views)
	for vi, v := range views {
		if v.SamplingRate <= 1 {
			continue
		}
		var truthBytes, scaledBytes float64
		for i := range union {
			if v.visible(union[i].Dst) {
				truthBytes += float64(union[i].Bytes)
			}
		}
		for i := range perView[vi] {
			scaledBytes += float64(perView[vi][i].ScaledBytes())
		}
		if truthBytes == 0 {
			t.Fatal("no visible ground-truth bytes")
		}
		ratio := scaledBytes / truthBytes
		if ratio < 0.9 || ratio > 1.1 {
			t.Fatalf("view %s: scaled bytes / truth bytes = %.3f, want ~1 (unbiased sampling)", v.Name, ratio)
		}
	}
}
