// Package trafficgen synthesizes the five months of inter-domain traffic
// the study analyzed at its three vantage points (a major IXP, a tier-1
// ISP, and a tier-2 ISP).
//
// The generator replaces the study's closed traces (834B IXP IPFIX
// flows, 6.6B tier-1 and 470M tier-2 NetFlow records), which cannot be
// published. It reproduces the *generating processes* the paper reasons
// about, so every analysis code path sees realistic inputs:
//
//   - benign NTP/DNS background traffic with small packets (the lower
//     mode of Figure 2(a));
//   - trigger traffic *to* reflectors (dst port 123/53/11211): a
//     booter-driven share that shifts down at the takedown plus a benign
//     share (scanning, legitimate queries) that does not — their mix
//     yields the paper's observed red30/red40 reductions;
//   - amplified attack traffic *from* reflectors to victims (src port
//     123, 486/490-byte packets, heavy-tailed rates up to ~600 Gbps),
//     whose level does NOT shift — the paper's central negative result;
//   - low-rate large-packet NTP "noise" destinations (monlist
//     monitoring, custom applications on port 123) that inflate the
//     optimistic victim count and are cut by the conservative filter;
//   - per-vantage-point semantics: the IXP view is packet-sampled, the
//     tier-1 view is ingress-only without customer-sourced traffic, the
//     tier-2 view carries both directions.
//
// Every day of traffic is deterministic given (seed, vantage, day), so
// analyses can stream arbitrary windows without storing records.
package trafficgen

import (
	"fmt"
	"math"
	"net/netip"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/flow"
	"booterscope/internal/netutil"
	"booterscope/internal/packet"
)

// Kind names a vantage point.
type Kind uint8

// The study's three vantage points.
const (
	KindIXP Kind = iota
	KindTier1
	KindTier2
)

// String returns the vantage point name.
func (k Kind) String() string {
	switch k {
	case KindIXP:
		return "IXP"
	case KindTier1:
		return "tier-1 ISP"
	case KindTier2:
		return "tier-2 ISP"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Config parameterizes a scenario.
type Config struct {
	// Start is the first day (UTC midnight) of the scenario.
	Start time.Time
	// Days is the scenario length.
	Days int
	// Takedown is the FBI seizure date; zero disables the event.
	Takedown time.Time
	// Seed drives all randomness.
	Seed uint64
	// Scale multiplies traffic volumes (1.0 reproduces the calibrated
	// defaults; tests use smaller values). Default 1.0.
	Scale float64
	// PostTakedownBooterFactor maps each vector to the post-takedown
	// level of *booter-driven* trigger traffic as a fraction of before.
	// Mixed with the non-dropping benign share, the defaults land the
	// observed reductions near the paper's red30/red40 values
	// (memcached ≈ 0.22, NTP ≈ 0.38, DNS ≈ 0.80 at the tier-2 ISP).
	PostTakedownBooterFactor map[amplify.Vector]float64
	// IXPSamplingRate is the platform's 1-in-N packet sampling. Default
	// 10000.
	IXPSamplingRate uint32
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.IXPSamplingRate == 0 {
		c.IXPSamplingRate = 10000
	}
	if c.PostTakedownBooterFactor == nil {
		c.PostTakedownBooterFactor = map[amplify.Vector]float64{
			amplify.Memcached: 0.18,
			amplify.NTP:       0.27,
			amplify.DNS:       0.33,
		}
	}
	return c
}

// vantageBases are the calibrated per-day intensities for one vantage
// point at scale 1.
type vantageBases struct {
	// attacksPerDay is the victim-facing NTP attack arrival rate.
	attacksPerDay float64
	// noiseDestsPerDay is the number of large-packet low-rate NTP
	// destinations (monitoring, custom apps).
	noiseDestsPerDay float64
	// triggerFlows is the per-vector daily count of flows toward
	// reflectors (booter-driven + benign mixed).
	triggerFlows map[amplify.Vector]float64
	// benignNTPPackets is the daily benign NTP packet budget (the
	// < 200-byte mode of Figure 2(a)).
	benignNTPPackets float64
	// dnsBooterShare is the booter-driven fraction of DNS trigger
	// traffic (resolver load dominates DNS everywhere, most of all at
	// the IXP — which is why the paper found no DNS reduction there).
	dnsBooterShare float64
}

var bases = map[Kind]vantageBases{
	KindIXP: {
		attacksPerDay:    80,
		noiseDestsPerDay: 280,
		triggerFlows: map[amplify.Vector]float64{
			amplify.NTP:       2200,
			amplify.DNS:       5200,
			amplify.Memcached: 1500,
		},
		benignNTPPackets: 2e10,
		dnsBooterShare:   0.08,
	},
	KindTier1: {
		attacksPerDay:    14,
		noiseDestsPerDay: 36,
		triggerFlows: map[amplify.Vector]float64{
			amplify.NTP:       500,
			amplify.DNS:       1100,
			amplify.Memcached: 320,
		},
		benignNTPPackets: 3.5e9,
		dnsBooterShare:   0.30,
	},
	KindTier2: {
		attacksPerDay:    34,
		noiseDestsPerDay: 90,
		triggerFlows: map[amplify.Vector]float64{
			amplify.NTP:       900,
			amplify.DNS:       2100,
			amplify.Memcached: 620,
		},
		benignNTPPackets: 8e9,
		dnsBooterShare:   0.30,
	},
}

// Booter-driven share of trigger traffic for NTP and memcached (DNS is
// per-vantage, see vantageBases.dnsBooterShare).
const (
	ntpBooterShare = 0.85
	memBooterShare = 0.95
)

const reflectorPoolPerVect = 4000

// Scenario generates traffic for all vantage points.
type Scenario struct {
	cfg Config
	// reflector address pools per vector (stable across days).
	reflectors map[amplify.Vector][]netip.Addr
}

// NewScenario builds a scenario.
func NewScenario(cfg Config) *Scenario {
	cfg = cfg.withDefaults()
	s := &Scenario{cfg: cfg, reflectors: make(map[amplify.Vector][]netip.Addr)}
	r := netutil.NewRand(cfg.Seed).Fork("scenario-reflectors")
	for _, v := range []amplify.Vector{amplify.NTP, amplify.DNS, amplify.Memcached} {
		pool := make([]netip.Addr, reflectorPoolPerVect)
		for i := range pool {
			pool[i] = netutil.Addr4(uint32(20+r.IntN(180))<<24 | r.Uint32N(1<<24))
		}
		s.reflectors[v] = pool
	}
	return s
}

// Config returns the (defaulted) configuration.
func (s *Scenario) Config() Config { return s.cfg }

// DayTime returns the UTC midnight of scenario day i.
func (s *Scenario) DayTime(day int) time.Time {
	return s.cfg.Start.UTC().Truncate(24*time.Hour).AddDate(0, 0, day)
}

// afterTakedown reports whether day i falls on or after the takedown.
func (s *Scenario) afterTakedown(day int) bool {
	if s.cfg.Takedown.IsZero() {
		return false
	}
	return !s.DayTime(day).Before(s.cfg.Takedown.UTC().Truncate(24 * time.Hour))
}

// dayRand returns the deterministic stream for (vantage, day).
func (s *Scenario) dayRand(k Kind, day int) *netutil.Rand {
	return netutil.NewRand(s.cfg.Seed).Fork(fmt.Sprintf("day-%s-%d", k, day))
}

// Day generates one vantage point's flow records for one day. Records
// appear in generation order; callers needing time order should bin
// them.
func (s *Scenario) Day(k Kind, day int) []flow.Record {
	r := s.dayRand(k, day)
	dayStart := s.DayTime(day)
	b := bases[k]

	var recs []flow.Record
	recs = s.appendTriggerFlows(recs, r, k, day, dayStart, b)
	recs = s.appendBenignNTP(recs, r, dayStart, b)
	recs = s.appendNoiseDests(recs, r, dayStart, b)
	recs = s.appendAttacks(recs, r, k, dayStart, b)
	return s.applyVantage(recs, r, k)
}

// booterShare returns the booter-driven fraction of a vector's trigger
// traffic at a vantage point.
func (s *Scenario) booterShare(k Kind, v amplify.Vector) float64 {
	switch v {
	case amplify.NTP:
		return ntpBooterShare
	case amplify.Memcached:
		return memBooterShare
	case amplify.DNS:
		return bases[k].dnsBooterShare
	default:
		return 0.5
	}
}

// appendTriggerFlows emits request traffic toward reflectors — the
// traffic whose booter-driven share shifts at the takedown.
func (s *Scenario) appendTriggerFlows(recs []flow.Record, r *netutil.Rand, k Kind, day int, dayStart time.Time, b vantageBases) []flow.Record {
	after := s.afterTakedown(day)
	weekday := weekdayFactor(dayStart)
	for _, v := range []amplify.Vector{amplify.NTP, amplify.DNS, amplify.Memcached} {
		n := b.triggerFlows[v] * s.cfg.Scale
		share := s.booterShare(k, v)
		level := 1 - share // benign share never drops
		if after {
			level += share * s.cfg.PostTakedownBooterFactor[v]
		} else {
			level += share
		}
		count := poissonish(r, n*level*weekday)
		pool := s.reflectors[v]
		reqSize := triggerPacketSize(v)
		for i := 0; i < count; i++ {
			pkts := uint64(1 + r.IntN(200)) // booters fire request bursts
			ts := dayStart.Add(time.Duration(r.Int64N(int64(24 * time.Hour))))
			recs = append(recs, flow.Record{
				Key: flow.Key{
					Src:      randomHost(r),
					Dst:      pool[r.IntN(len(pool))],
					SrcPort:  randomHighPort(r),
					DstPort:  v.Port(),
					Protocol: packet.IPProtoUDP,
				},
				Packets:      pkts,
				Bytes:        pkts * uint64(reqSize),
				Start:        ts,
				End:          ts.Add(time.Duration(1+r.IntN(30)) * time.Second),
				Direction:    triggerDirection(r, k),
				SamplingRate: 1,
			})
		}
	}
	return recs
}

// weekdayFactor applies the weekly seasonality visible in the paper's
// Figure 4 series: booter usage peaks on weekends (attacks against game
// servers and schools track their users' free time).
func weekdayFactor(day time.Time) float64 {
	switch day.Weekday() {
	case time.Saturday, time.Sunday:
		return 1.25
	case time.Friday:
		return 1.1
	case time.Tuesday, time.Wednesday:
		return 0.9
	default:
		return 1.0
	}
}

// triggerPacketSize is the request packet size (IP total) for a vector.
func triggerPacketSize(v amplify.Vector) int {
	switch v {
	case amplify.NTP:
		return 36 // 8-byte monlist request + IP/UDP
	case amplify.DNS:
		return 68
	case amplify.Memcached:
		return 43
	default:
		return 64
	}
}

// triggerDirection assigns flow direction: at the tier-2 ISP half the
// trigger traffic is customer-sourced egress; elsewhere it is transit
// ingress.
func triggerDirection(r *netutil.Rand, k Kind) flow.Direction {
	if k == KindTier2 && r.Float64() < 0.5 {
		return flow.Egress
	}
	return flow.Ingress
}

// appendBenignNTP emits legitimate NTP sync traffic: the < 200-byte mode
// of the packet-size distribution. The daily packet budget is spread
// over aggregate server flows so the IXP's sampling still sees it.
func (s *Scenario) appendBenignNTP(recs []flow.Record, r *netutil.Rand, dayStart time.Time, b vantageBases) []flow.Record {
	budget := b.benignNTPPackets * s.cfg.Scale
	const flows = 600
	perFlow := budget / flows
	for i := 0; i < flows; i++ {
		pkts := uint64(poissonish(r, perFlow))
		if pkts == 0 {
			continue
		}
		size := 76
		if r.Float64() < 0.3 {
			size = 48 + r.IntN(120)
		}
		ts := dayStart.Add(time.Duration(r.Int64N(int64(24 * time.Hour))))
		// Benign NTP is represented by its server-response side (src
		// port 123); the request side toward servers is part of the
		// non-booter share of trigger traffic, so the dst-port-123
		// packet series cleanly reflects the trigger processes.
		key := flow.Key{
			Src:      randomHost(r),
			Dst:      randomHost(r),
			SrcPort:  123,
			DstPort:  randomHighPort(r),
			Protocol: packet.IPProtoUDP,
		}
		recs = append(recs, flow.Record{
			Key:          key,
			Packets:      pkts,
			Bytes:        pkts * uint64(size),
			Start:        ts,
			End:          ts.Add(time.Duration(1+r.IntN(3600)) * time.Second),
			Direction:    flow.Direction(r.IntN(2)),
			SamplingRate: 1,
		})
	}
	return recs
}

// appendNoiseDests emits large-packet NTP flows to destinations that
// are not DDoS victims: monlist monitoring pulls, research scanners
// collecting from many servers, and custom applications exchanging bulk
// traffic on the NTP port. They enter the optimistic victim set and are
// cut by the conservative rules, reproducing the paper's per-rule
// reductions ((a) only: 74 %, (b) only: 59 %, both: 78 %).
func (s *Scenario) appendNoiseDests(recs []flow.Record, r *netutil.Rand, dayStart time.Time, b vantageBases) []flow.Record {
	count := poissonish(r, b.noiseDestsPerDay*s.cfg.Scale)
	pool := s.reflectors[amplify.NTP]
	for i := 0; i < count; i++ {
		dst := randomHost(r)
		// Three noise populations: plain low-and-slow pulls (fail both
		// rules), monitoring systems collecting from many servers (pass
		// the sources rule, fail the rate rule), and high-rate custom
		// applications on port 123 (pass the rate rule, fail the
		// sources rule).
		var sources int
		highRate := false
		switch kind := r.Float64(); {
		case kind < 0.60:
			sources = 1 + r.IntN(6)
		case kind < 0.85:
			sources = 11 + r.IntN(30)
		default:
			sources = 1 + r.IntN(3)
			highRate = true
		}
		ts := dayStart.Add(time.Duration(r.Int64N(int64(24 * time.Hour))))
		for sIdx := 0; sIdx < sources; sIdx++ {
			var pkts uint64
			if highRate {
				// 1.2-3 Gbps sustained for a minute, spread over the
				// destination's few sources.
				perMin := (1.2e9 + 1.8e9*r.Float64()) / 8 * 60 / float64(sources)
				pkts = uint64(perMin / 488)
			} else {
				// Aggregate daily pull traffic: heavy-tailed packet
				// counts so a share survives IXP sampling, but rates
				// stay far below 1 Gbps.
				pkts = uint64(r.Pareto(2000, 0.8))
				if pkts > 400_000 {
					pkts = 400_000
				}
			}
			size := uint64(amplify.MonlistResponseIPLens[(i+sIdx)%2])
			end := dayStart.Add(24*time.Hour - time.Second)
			if highRate {
				end = ts.Add(time.Minute)
			}
			recs = append(recs, flow.Record{
				Key: flow.Key{
					Src:      pool[r.IntN(len(pool))],
					Dst:      dst,
					SrcPort:  123,
					DstPort:  randomHighPort(r),
					Protocol: packet.IPProtoUDP,
				},
				Packets:      pkts,
				Bytes:        pkts * size,
				Start:        ts,
				End:          end,
				Direction:    flow.Ingress,
				SamplingRate: 1,
			})
		}
	}
	return recs
}

// appendAttacks emits amplified NTP attack traffic to victims. The
// attack process is stationary across the takedown — the paper's
// negative result. Peak rates follow a Pareto tail calibrated so ~9 % of
// victims exceed 1 Gbps (the paper's fraction) and the extreme tail
// reaches the 602 Gbps ceiling at the IXP.
func (s *Scenario) appendAttacks(recs []flow.Record, r *netutil.Rand, k Kind, dayStart time.Time, b vantageBases) []flow.Record {
	attacks := poissonish(r, b.attacksPerDay*s.cfg.Scale)
	pool := s.reflectors[amplify.NTP]
	for i := 0; i < attacks; i++ {
		victim := randomHost(r)
		startMin := r.IntN(24 * 60)
		durMin := 1 + int(r.Pareto(2, 1.5))
		if durMin > 60 {
			durMin = 60
		}
		sources := 12 + int(r.Pareto(4, 1.0))
		if sources > 8500 {
			sources = 8500 // the paper's tier-1 outliers reach ~8500 amplifiers
		}
		// Genuine attacks mostly exceed 1 Gbps: P(rate > 1 Gbps) =
		// 0.8^1.1 ≈ 0.78. Together with the low-rate noise destinations
		// this puts ~9 % of all optimistic destinations above 1 Gbps,
		// matching the paper's Figure 2(c).
		rate := r.Pareto(8e8, 1.1)
		cap := 40e9
		if k == KindIXP {
			cap = 602e9
		}
		if rate > cap {
			rate = cap
		}
		bytesPerMinute := rate / 8 * 60
		srcIdx := r.Perm(len(pool))
		if sources > len(srcIdx) {
			sources = len(srcIdx)
		}
		for m := 0; m < durMin; m++ {
			ts := dayStart.Add(time.Duration(startMin+m) * time.Minute)
			perSrc := bytesPerMinute / float64(sources)
			for si := 0; si < sources; si++ {
				size := uint64(amplify.MonlistResponseIPLens[(si+m)%2])
				pkts := uint64(perSrc / float64(size))
				if pkts == 0 {
					pkts = 1
				}
				recs = append(recs, flow.Record{
					Key: flow.Key{
						Src:      pool[srcIdx[si]],
						Dst:      victim,
						SrcPort:  123,
						DstPort:  randomHighPort(r),
						Protocol: packet.IPProtoUDP,
					},
					Packets:      pkts,
					Bytes:        pkts * size,
					Start:        ts,
					End:          ts.Add(time.Minute),
					Direction:    flow.Ingress,
					SamplingRate: 1,
				})
			}
		}
	}
	return recs
}

// applyVantage filters and samples records according to the vantage
// point's semantics.
func (s *Scenario) applyVantage(recs []flow.Record, r *netutil.Rand, k Kind) []flow.Record {
	switch k {
	case KindTier1:
		// Ingress only; customer/end-user sourced traffic excluded.
		kept := recs[:0]
		for _, rec := range recs {
			if rec.Direction == flow.Ingress {
				kept = append(kept, rec)
			}
		}
		return kept
	case KindTier2:
		return recs
	default: // IXP: packet-level sampling approximated per record
		rate := s.cfg.IXPSamplingRate
		kept := recs[:0]
		for _, rec := range recs {
			sampled := rec.Packets / uint64(rate)
			if r.Uint64N(uint64(rate)) < rec.Packets%uint64(rate) {
				sampled++
			}
			if sampled == 0 {
				continue
			}
			avg := rec.Bytes / rec.Packets
			rec.Packets = sampled
			rec.Bytes = sampled * avg
			rec.SamplingRate = rate
			kept = append(kept, rec)
		}
		return kept
	}
}

// randomHighPort draws an ephemeral port, avoiding the amplification
// service ports so attack and background records never pollute the
// per-port trigger-traffic series.
func randomHighPort(r *netutil.Rand) uint16 {
	for {
		p := uint16(1024 + r.IntN(60000))
		switch p {
		case 123, 53, 11211, 389, 1900, 19:
			continue
		}
		return p
	}
}

// randomHost draws a random public-ish host address.
func randomHost(r *netutil.Rand) netip.Addr {
	return netutil.Addr4(uint32(11+r.IntN(200))<<24 | r.Uint32N(1<<24))
}

// poissonish draws an integer with the given mean (normal approximation
// with sqrt dispersion, clamped at zero — adequate for count processes
// and cheap for the hot path).
func poissonish(r *netutil.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	v := r.Normal(mean, math.Sqrt(mean))
	if v < 0 {
		return 0
	}
	return int(v)
}
