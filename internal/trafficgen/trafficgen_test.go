package trafficgen

import (
	"testing"
	"time"

	"booterscope/internal/amplify"
	"booterscope/internal/classify"
	"booterscope/internal/flow"
	"booterscope/internal/packet"
)

var (
	scnStart = time.Date(2018, 9, 30, 0, 0, 0, 0, time.UTC)
	takedown = time.Date(2018, 12, 19, 0, 0, 0, 0, time.UTC)
)

func testScenario(scale float64) *Scenario {
	return NewScenario(Config{
		Start:    scnStart,
		Days:     122,
		Takedown: takedown,
		Seed:     42,
		Scale:    scale,
	})
}

func TestKindString(t *testing.T) {
	if KindIXP.String() != "IXP" || KindTier1.String() != "tier-1 ISP" || KindTier2.String() != "tier-2 ISP" {
		t.Error("kind names wrong")
	}
}

func TestDayDeterministic(t *testing.T) {
	s1, s2 := testScenario(0.2), testScenario(0.2)
	a := s1.Day(KindTier2, 5)
	b := s2.Day(KindTier2, 5)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Bytes != b[i].Bytes {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestDayTime(t *testing.T) {
	s := testScenario(0.2)
	if !s.DayTime(0).Equal(scnStart) {
		t.Errorf("day 0 = %v", s.DayTime(0))
	}
	if !s.DayTime(80).Equal(takedown) {
		t.Errorf("day 80 = %v, want takedown date", s.DayTime(80))
	}
}

func TestTier1IngressOnly(t *testing.T) {
	s := testScenario(0.2)
	for _, rec := range s.Day(KindTier1, 3) {
		if rec.Direction != flow.Ingress {
			t.Fatal("tier-1 contains egress records")
		}
	}
}

func TestTier2HasBothDirections(t *testing.T) {
	s := testScenario(0.2)
	recs := s.Day(KindTier2, 3)
	var in, eg int
	for _, rec := range recs {
		if rec.Direction == flow.Ingress {
			in++
		} else {
			eg++
		}
	}
	if in == 0 || eg == 0 {
		t.Errorf("tier-2 directions: ingress=%d egress=%d", in, eg)
	}
}

func TestIXPSampled(t *testing.T) {
	s := testScenario(0.2)
	recs := s.Day(KindIXP, 3)
	if len(recs) == 0 {
		t.Fatal("no IXP records")
	}
	for _, rec := range recs {
		if rec.SamplingRate != 10000 {
			t.Fatalf("IXP record sampling rate = %d", rec.SamplingRate)
		}
		if rec.Packets == 0 {
			t.Fatal("sampled record with zero packets")
		}
	}
	// Sampling must shrink the record count relative to an unsampled
	// platform view of the same day.
	unsampled := NewScenario(Config{
		Start: scnStart, Days: 122, Takedown: takedown, Seed: 42,
		Scale: 0.2, IXPSamplingRate: 1,
	})
	full := unsampled.Day(KindIXP, 3)
	if len(recs) >= len(full) {
		t.Errorf("sampled IXP records %d >= unsampled %d", len(recs), len(full))
	}
}

func TestTriggerTrafficDropsAtTakedown(t *testing.T) {
	s := testScenario(0.3)
	countTrigger := func(day int, port uint16) (pkts uint64) {
		for _, rec := range s.Day(KindTier2, day) {
			if rec.DstPort == port && rec.Protocol == packet.IPProtoUDP {
				pkts += rec.ScaledPackets()
			}
		}
		return
	}
	// Average 5 days before vs 5 days after for memcached.
	var before, after uint64
	for d := 70; d < 75; d++ {
		before += countTrigger(d, 11211)
	}
	for d := 82; d < 87; d++ {
		after += countTrigger(d, 11211)
	}
	ratio := float64(after) / float64(before)
	if ratio > 0.45 {
		t.Errorf("memcached trigger ratio = %.2f, want strong drop (~0.225)", ratio)
	}
	// NTP trigger drop is milder (~0.38).
	before, after = 0, 0
	for d := 70; d < 75; d++ {
		before += countTrigger(d, 123)
	}
	for d := 82; d < 87; d++ {
		after += countTrigger(d, 123)
	}
	ratio = float64(after) / float64(before)
	if ratio < 0.2 || ratio > 0.65 {
		t.Errorf("NTP trigger ratio = %.2f, want ~0.38", ratio)
	}
}

func TestVictimAttackProcessStationary(t *testing.T) {
	// Attack *counts* must not shift at the takedown (attack volume is
	// heavy-tailed, so counts are the stable stationarity measure —
	// exactly what the paper's Figure 5 tests).
	s := testScenario(0.5)
	countVictims := func(from, to int) int {
		victims := make(map[string]bool)
		for d := from; d < to; d++ {
			for _, rec := range s.Day(KindTier2, d) {
				if rec.SrcPort == 123 && rec.AvgPacketSize() > 200 && rec.Packets > 1000 {
					victims[rec.Dst.String()] = true
				}
			}
		}
		return len(victims)
	}
	before := countVictims(65, 80)
	after := countVictims(81, 96)
	ratio := float64(after) / float64(before)
	if ratio < 0.6 || ratio > 1.6 {
		t.Errorf("victim count ratio = %.2f (before %d, after %d), should be stationary", ratio, before, after)
	}
}

func TestNTPPacketSizeBimodal(t *testing.T) {
	// Figure 2(a): NTP packet size distribution at the IXP is bimodal;
	// roughly half the packets are < 200 bytes.
	s := testScenario(0.5)
	var small, large uint64
	for d := 10; d < 20; d++ {
		for _, rec := range s.Day(KindIXP, d) {
			if rec.SrcPort != 123 && rec.DstPort != 123 {
				continue
			}
			if rec.AvgPacketSize() < 200 {
				small += rec.ScaledPackets()
			} else {
				large += rec.ScaledPackets()
			}
		}
	}
	frac := float64(small) / float64(small+large)
	if frac < 0.02 || frac > 0.98 {
		t.Errorf("small-packet share = %.2f, want a bimodal split with both modes populated", frac)
	}
	if small == 0 || large == 0 {
		t.Error("distribution not bimodal")
	}
}

func TestAttacksDetectableByConservativeFilter(t *testing.T) {
	s := testScenario(0.3)
	c := classify.New(classify.Config{})
	for d := 10; d < 20; d++ {
		for _, rec := range s.Day(KindTier2, d) {
			rec := rec
			c.Add(&rec)
		}
	}
	fs := c.FilterStats()
	if fs.Optimistic == 0 {
		t.Fatal("no optimistic victims")
	}
	if fs.Conservative == 0 {
		t.Fatal("no conservative victims — attack generator too weak")
	}
	// The conservative filter must cut a large share (paper: 78 %).
	if red := fs.ReductionBoth(); red < 0.3 {
		t.Errorf("conservative reduction = %.2f, want substantial cut", red)
	}
}

func TestHeavyTailedAttackRates(t *testing.T) {
	s := testScenario(1.0)
	c := classify.New(classify.Config{})
	for d := 10; d < 40; d++ {
		for _, rec := range s.Day(KindIXP, d) {
			rec := rec
			c.Add(&rec)
		}
	}
	victims := c.Victims()
	if len(victims) == 0 {
		t.Fatal("no victims")
	}
	var over10, over50 int
	for _, v := range victims {
		if v.MaxGbps > 10 {
			over10++
		}
		if v.MaxGbps > 50 {
			over50++
		}
		if v.MaxGbps > 603 {
			t.Errorf("victim rate %.0f Gbps exceeds the 602 Gbps ceiling", v.MaxGbps)
		}
	}
	if over10 == 0 {
		t.Error("no victims above 10 Gbps — tail too light")
	}
	// The extreme events are rare but must exist over 30 IXP days.
	if over50 == 0 {
		t.Error("no victims above 50 Gbps at the IXP")
	}
}

func TestVantageDestinationOrdering(t *testing.T) {
	// Victim destination counts must order IXP > tier-2 > tier-1,
	// mirroring the paper's 244K/95K/36K.
	s := testScenario(0.5)
	count := func(k Kind) int {
		c := classify.New(classify.Config{})
		for d := 10; d < 16; d++ {
			for _, rec := range s.Day(k, d) {
				rec := rec
				c.Add(&rec)
			}
		}
		return c.Destinations()
	}
	ixp, t1, t2 := count(KindIXP), count(KindTier1), count(KindTier2)
	if !(ixp > t2 && t2 > t1) {
		t.Errorf("victim ordering IXP=%d tier2=%d tier1=%d, want IXP > tier2 > tier1", ixp, t2, t1)
	}
}

func TestScannersHaveFewSourcesPerDest(t *testing.T) {
	// Scanner traffic (large packets, single sources) must exist so the
	// optimistic/conservative gap is meaningful.
	s := testScenario(0.3)
	c := classify.New(classify.Config{})
	for _, rec := range s.Day(KindTier2, 5) {
		rec := rec
		c.Add(&rec)
	}
	lowSources := 0
	for _, v := range c.Victims() {
		if v.MaxSources <= 2 && v.MaxGbps < 0.01 {
			lowSources++
		}
	}
	if lowSources == 0 {
		t.Error("no scanner-like destinations in the optimistic set")
	}
}

func TestPostTakedownOverride(t *testing.T) {
	s := NewScenario(Config{
		Start: scnStart, Days: 122, Takedown: takedown, Seed: 1, Scale: 0.3,
		PostTakedownBooterFactor: map[amplify.Vector]float64{
			amplify.NTP: 1.0, amplify.DNS: 1.0, amplify.Memcached: 1.0,
		},
	})
	countTrigger := func(day int) (pkts uint64) {
		for _, rec := range s.Day(KindTier2, day) {
			if rec.DstPort == 11211 {
				pkts += rec.ScaledPackets()
			}
		}
		return
	}
	var before, after uint64
	for d := 74; d < 79; d++ {
		before += countTrigger(d)
	}
	for d := 81; d < 86; d++ {
		after += countTrigger(d)
	}
	ratio := float64(after) / float64(before)
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("no-effect override ratio = %.2f, want ~1", ratio)
	}
}

func BenchmarkDayTier2(b *testing.B) {
	s := testScenario(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Day(KindTier2, i%122)
	}
}

func BenchmarkDayIXP(b *testing.B) {
	s := testScenario(0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Day(KindIXP, i%122)
	}
}

func TestWeeklySeasonality(t *testing.T) {
	// Trigger traffic is heavier on weekends than midweek; average over
	// many weeks to beat the Poisson noise.
	s := testScenario(0.5)
	var weekend, midweek float64
	var weekendN, midweekN int
	for d := 0; d < 70; d++ {
		day := s.DayTime(d)
		var pkts float64
		for _, rec := range s.Day(KindTier2, d) {
			if rec.DstPort == 123 {
				pkts += float64(rec.ScaledPackets())
			}
		}
		switch day.Weekday() {
		case time.Saturday, time.Sunday:
			weekend += pkts
			weekendN++
		case time.Tuesday, time.Wednesday:
			midweek += pkts
			midweekN++
		}
	}
	wAvg := weekend / float64(weekendN)
	mAvg := midweek / float64(midweekN)
	if wAvg <= mAvg {
		t.Errorf("weekend avg %.0f <= midweek avg %.0f; seasonality missing", wAvg, mAvg)
	}
}
