// Package webobs implements the HTTPS side of the study's observatory:
// website snapshots of candidate booter domains, content-based booter
// classification (Zhang et al., the paper's ref [59] — keyword matching
// on page content rather than just domain names), and TLS certificate
// analysis (Kuhnert et al., ref [32]: booters cluster on free and
// self-signed certificates).
//
// Sites are generated from templates, served over real TLS with real
// generated X.509 certificates, and fetched with a real HTTP client —
// the snapshot pipeline is the one a production crawler would run.
package webobs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net/http"
	"strings"
	"time"

	"booterscope/internal/netutil"
)

// CertProfile is the certificate deployment style of a site.
type CertProfile uint8

// Certificate profiles, mirroring the distributions the TLS study
// reports: booters overwhelmingly use free ACME certificates, CDN
// fronting, or self-signed certificates; commercial EV/OV certs are
// rare.
const (
	CertFreeACME CertProfile = iota
	CertCDNFronted
	CertSelfSigned
	CertCommercial
)

// String returns the profile name.
func (p CertProfile) String() string {
	switch p {
	case CertFreeACME:
		return "free-acme"
	case CertCDNFronted:
		return "cdn-fronted"
	case CertSelfSigned:
		return "self-signed"
	case CertCommercial:
		return "commercial"
	default:
		return fmt.Sprintf("CertProfile(%d)", uint8(p))
	}
}

// issuerName maps a profile to its issuing CA's common name.
func (p CertProfile) issuerName(domain string) string {
	switch p {
	case CertFreeACME:
		return "R3 Free Automated CA"
	case CertCDNFronted:
		return "CDN Shield Inc ECC CA-3"
	case CertCommercial:
		return "TrustCorp EV CA"
	default:
		return domain // self-signed: issuer == subject
	}
}

// GenerateCert builds a real self-contained X.509 certificate for the
// domain under the given profile. (All profiles are technically
// self-issued here — no chain building — but carry the issuer names and
// validity windows their real-world counterparts would.)
func GenerateCert(domain string, profile CertProfile, notBefore time.Time) (*x509.Certificate, *ecdsa.PrivateKey, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("webobs: generating key: %w", err)
	}
	validity := 90 * 24 * time.Hour // ACME-style
	switch profile {
	case CertCommercial:
		validity = 365 * 24 * time.Hour
	case CertSelfSigned:
		validity = 10 * 365 * 24 * time.Hour
	}
	subject := pkix.Name{CommonName: domain}
	tpl := &x509.Certificate{
		//bsvet:allow determinism TLS certificate serials are nonces, never analysis input
		SerialNumber:          big.NewInt(time.Now().UnixNano()),
		Subject:               subject,
		Issuer:                pkix.Name{CommonName: profile.issuerName(domain)},
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(validity),
		DNSNames:              []string{domain, "www." + domain},
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	// Issuer fields are taken from the parent template: forge a parent
	// carrying the CA name so the issued cert records it.
	parent := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: profile.issuerName(domain)},
		NotBefore:             notBefore,
		NotAfter:              notBefore.Add(validity),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tpl, parent, &key.PublicKey, key)
	if err != nil {
		return nil, nil, fmt.Errorf("webobs: creating certificate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, nil, fmt.Errorf("webobs: parsing certificate: %w", err)
	}
	return cert, key, nil
}

// booterTemplate is the panel HTML booter sites share (plans, attack
// methods, a login form), parameterized per site.
const booterTemplate = `<!DOCTYPE html>
<html><head><title>%s — Professional IP Stresser</title></head>
<body>
<h1>%s</h1>
<p>The most powerful stress testing service. Boot any IP off the
internet with our layer 4 and layer 7 attack methods.</p>
<ul>
<li>NTP, DNS, CLDAP and Memcached amplification up to %d Gbps</li>
<li>Spoofed UDP floods, bypasses common DDoS protection</li>
<li>Concurrent attacks on all plans</li>
</ul>
<h2>Plans</h2>
<table>
<tr><td>Bronze stresser plan</td><td>$%.2f/month</td></tr>
<tr><td>VIP booter plan</td><td>$%.2f/month</td></tr>
</table>
<form action="/login" method="post">
<input name="user"><input name="pass" type="password">
<button>Login to the panel</button>
</form>
</body></html>`

// benignTemplate is an ordinary site.
const benignTemplate = `<!DOCTYPE html>
<html><head><title>%s</title></head>
<body>
<h1>Welcome to %s</h1>
<p>We publish articles about gardening, recipes, and local events.
Subscribe to our newsletter for weekly updates.</p>
</body></html>`

// protectionTemplate is the hard case: a DDoS-protection vendor whose
// content shares vocabulary with booters.
const protectionTemplate = `<!DOCTYPE html>
<html><head><title>%s — DDoS Protection</title></head>
<body>
<h1>%s</h1>
<p>Enterprise DDoS mitigation. We absorb amplification attacks —
NTP, DNS, memcached — before they reach your network. Always-on
scrubbing, BGP diversion, and 24/7 SOC.</p>
</body></html>`

// SiteKind selects a content template.
type SiteKind uint8

// Site kinds.
const (
	SiteBooter SiteKind = iota
	SiteBenign
	SiteProtection
)

// RenderSite produces the HTML for a domain.
func RenderSite(kind SiteKind, domain string, seed uint64) string {
	r := netutil.NewRand(seed).Fork("site-" + domain)
	switch kind {
	case SiteBooter:
		name := strings.Split(domain, ".")[0]
		return fmt.Sprintf(booterTemplate, domain, name,
			10+r.IntN(90), 5+float64(r.IntN(30)), 50+float64(r.IntN(250)))
	case SiteProtection:
		return fmt.Sprintf(protectionTemplate, domain, strings.Split(domain, ".")[0])
	default:
		return fmt.Sprintf(benignTemplate, domain, domain)
	}
}

// Handler serves a rendered site (plus a /login endpoint for booter
// panels) — plug into httptest or a real server.
func Handler(kind SiteKind, domain string, seed uint64) http.Handler {
	mux := http.NewServeMux()
	html := RenderSite(kind, domain, seed)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		io.WriteString(w, html)
	})
	if kind == SiteBooter {
		mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "invalid credentials", http.StatusUnauthorized)
		})
	}
	return mux
}

// Snapshot is one crawled page.
type Snapshot struct {
	Domain    string
	URL       string
	HTML      string
	Cert      *x509.Certificate
	FetchedAt time.Time
}

// Crawl fetches url with the client and captures body + TLS leaf
// certificate. The domain labels the snapshot (the study keyed
// snapshots by zone domain, not by fetch URL).
func Crawl(client *http.Client, url, domain string, now time.Time) (*Snapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, fmt.Errorf("webobs: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("webobs: reading %s: %w", url, err)
	}
	snap := &Snapshot{Domain: domain, URL: url, HTML: string(body), FetchedAt: now}
	if resp.TLS != nil && len(resp.TLS.PeerCertificates) > 0 {
		snap.Cert = resp.TLS.PeerCertificates[0]
	}
	return snap, nil
}

// contentTerms weight booter-indicative vocabulary. Scores follow the
// content-characteristics approach: panel vocabulary scores high,
// protection-vendor vocabulary is down-weighted by the defensive terms.
var contentTerms = []struct {
	term   string
	weight float64
}{
	{"stresser", 2.0},
	{"booter", 2.0},
	{"boot any ip", 3.0},
	{"stress testing service", 2.5},
	{"attack methods", 2.0},
	{"spoofed", 1.5},
	{"amplification", 1.0},
	{"layer 4", 1.0},
	{"layer 7", 1.0},
	{"concurrent attacks", 2.0},
	{"plan", 0.5},
	{"gbps", 0.5},
	{"login to the panel", 2.0},
	// Defensive vocabulary pushes the score down.
	{"mitigation", -2.5},
	{"protection", -2.0},
	{"scrubbing", -2.5},
	{"soc", -1.0},
}

// ContentScore rates HTML on the booter vocabulary scale.
func ContentScore(html string) float64 {
	lower := strings.ToLower(html)
	var score float64
	for _, t := range contentTerms {
		if strings.Contains(lower, t.term) {
			score += t.weight
		}
	}
	return score
}

// ContentThreshold is the classification cut: pages scoring above it
// are booter panels.
const ContentThreshold = 5.0

// IsBooterContent applies the content classifier.
func IsBooterContent(html string) bool { return ContentScore(html) > ContentThreshold }

// CertStats aggregates certificate profiles across snapshots, the ref
// [32] analysis: issuer distribution and self-signed share.
type CertStats struct {
	Total      int
	ByIssuer   map[string]int
	SelfSigned int
	// ShortLived counts certificates valid ≤ 90 days (ACME-style).
	ShortLived int
}

// SelfSignedShare is the fraction of self-signed certificates.
func (s CertStats) SelfSignedShare() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.SelfSigned) / float64(s.Total)
}

// AnalyzeCerts aggregates the snapshots that carried certificates.
func AnalyzeCerts(snaps []*Snapshot) CertStats {
	stats := CertStats{ByIssuer: make(map[string]int)}
	for _, snap := range snaps {
		if snap.Cert == nil {
			continue
		}
		stats.Total++
		issuer := snap.Cert.Issuer.CommonName
		stats.ByIssuer[issuer]++
		if issuer == snap.Cert.Subject.CommonName {
			stats.SelfSigned++
		}
		if snap.Cert.NotAfter.Sub(snap.Cert.NotBefore) <= 90*24*time.Hour {
			stats.ShortLived++
		}
	}
	return stats
}
