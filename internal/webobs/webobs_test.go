package webobs

import (
	"crypto/tls"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

var certEpoch = time.Date(2018, 11, 1, 0, 0, 0, 0, time.UTC)

func TestGenerateCertProfiles(t *testing.T) {
	cases := []struct {
		profile    CertProfile
		wantIssuer string
		selfSigned bool
		shortLived bool
	}{
		{CertFreeACME, "R3 Free Automated CA", false, true},
		{CertCDNFronted, "CDN Shield Inc ECC CA-3", false, true},
		{CertSelfSigned, "quantum-booter-1.com", true, false},
		{CertCommercial, "TrustCorp EV CA", false, false},
	}
	for _, c := range cases {
		cert, key, err := GenerateCert("quantum-booter-1.com", c.profile, certEpoch)
		if err != nil {
			t.Fatalf("%v: %v", c.profile, err)
		}
		if key == nil {
			t.Fatalf("%v: nil key", c.profile)
		}
		if cert.Issuer.CommonName != c.wantIssuer {
			t.Errorf("%v issuer = %q, want %q", c.profile, cert.Issuer.CommonName, c.wantIssuer)
		}
		if got := cert.Issuer.CommonName == cert.Subject.CommonName; got != c.selfSigned {
			t.Errorf("%v self-signed = %t", c.profile, got)
		}
		if got := cert.NotAfter.Sub(cert.NotBefore) <= 90*24*time.Hour; got != c.shortLived {
			t.Errorf("%v short-lived = %t (validity %v)", c.profile, got, cert.NotAfter.Sub(cert.NotBefore))
		}
		if len(cert.DNSNames) != 2 || cert.DNSNames[0] != "quantum-booter-1.com" {
			t.Errorf("%v SANs = %v", c.profile, cert.DNSNames)
		}
	}
}

func TestRenderSiteKinds(t *testing.T) {
	booterHTML := RenderSite(SiteBooter, "quantum-booter-1.com", 1)
	if !strings.Contains(booterHTML, "Stresser") || !strings.Contains(booterHTML, "Plans") {
		t.Error("booter template missing panel vocabulary")
	}
	benignHTML := RenderSite(SiteBenign, "site-0001.com", 1)
	if strings.Contains(strings.ToLower(benignHTML), "stresser") {
		t.Error("benign template contains booter vocabulary")
	}
	protHTML := RenderSite(SiteProtection, "anti-ddos-protect-0.com", 1)
	if !strings.Contains(protHTML, "mitigation") {
		t.Error("protection template missing defensive vocabulary")
	}
	// Deterministic per seed.
	if RenderSite(SiteBooter, "x.com", 5) != RenderSite(SiteBooter, "x.com", 5) {
		t.Error("rendering not deterministic")
	}
}

func TestContentClassifier(t *testing.T) {
	booterHTML := RenderSite(SiteBooter, "quantum-booter-1.com", 1)
	if !IsBooterContent(booterHTML) {
		t.Errorf("booter panel scored %.1f, below threshold", ContentScore(booterHTML))
	}
	benignHTML := RenderSite(SiteBenign, "site-0001.com", 1)
	if IsBooterContent(benignHTML) {
		t.Errorf("benign page scored %.1f, above threshold", ContentScore(benignHTML))
	}
	// The hard case: a DDoS-protection vendor shares vocabulary but the
	// defensive terms pull it below the cut.
	protHTML := RenderSite(SiteProtection, "anti-ddos-protect-0.com", 1)
	if IsBooterContent(protHTML) {
		t.Errorf("protection vendor scored %.1f, above threshold", ContentScore(protHTML))
	}
}

func TestCrawlOverRealTLS(t *testing.T) {
	srv := httptest.NewTLSServer(Handler(SiteBooter, "quantum-booter-1.com", 1))
	defer srv.Close()

	snap, err := Crawl(srv.Client(), srv.URL, "quantum-booter-1.com", certEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Domain != "quantum-booter-1.com" {
		t.Errorf("domain = %q", snap.Domain)
	}
	if !IsBooterContent(snap.HTML) {
		t.Error("crawled booter page not classified")
	}
	if snap.Cert == nil {
		t.Fatal("no TLS certificate captured")
	}
}

func TestCrawlWithGeneratedCert(t *testing.T) {
	// Serve with our own generated self-signed cert and verify the
	// crawler captures exactly it.
	cert, key, err := GenerateCert("quantum-booter-1.com", CertSelfSigned, certEpoch)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewUnstartedServer(Handler(SiteBooter, "quantum-booter-1.com", 1))
	srv.TLS = &tls.Config{Certificates: []tls.Certificate{{
		Certificate: [][]byte{cert.Raw},
		PrivateKey:  key,
		Leaf:        cert,
	}}}
	srv.StartTLS()
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{
		TLSClientConfig: &tls.Config{InsecureSkipVerify: true}, // snapshotting, not validating
	}}
	snap, err := Crawl(client, srv.URL, "quantum-booter-1.com", certEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cert == nil || snap.Cert.Subject.CommonName != "quantum-booter-1.com" {
		t.Fatalf("captured cert = %+v", snap.Cert)
	}
	if snap.Cert.Issuer.CommonName != snap.Cert.Subject.CommonName {
		t.Error("expected the self-signed certificate")
	}
}

func TestCrawlHTTPNoTLS(t *testing.T) {
	srv := httptest.NewServer(Handler(SiteBenign, "site-0001.com", 1))
	defer srv.Close()
	snap, err := Crawl(srv.Client(), srv.URL, "site-0001.com", certEpoch)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Cert != nil {
		t.Error("plain HTTP snapshot carries a certificate")
	}
}

func TestCrawlError(t *testing.T) {
	if _, err := Crawl(http.DefaultClient, "http://127.0.0.1:1", "x", certEpoch); err == nil {
		t.Error("expected connection error")
	}
}

func TestBooterLoginEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(SiteBooter, "quantum-booter-1.com", 1))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/login", "application/x-www-form-urlencoded", strings.NewReader("user=x&pass=y"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("login status = %d", resp.StatusCode)
	}
}

func TestAnalyzeCerts(t *testing.T) {
	mkSnap := func(profile CertProfile, domain string) *Snapshot {
		cert, _, err := GenerateCert(domain, profile, certEpoch)
		if err != nil {
			t.Fatal(err)
		}
		return &Snapshot{Domain: domain, Cert: cert}
	}
	snaps := []*Snapshot{
		mkSnap(CertFreeACME, "a.com"),
		mkSnap(CertFreeACME, "b.com"),
		mkSnap(CertSelfSigned, "c.com"),
		mkSnap(CertCDNFronted, "d.com"),
		mkSnap(CertCommercial, "e.com"),
		{Domain: "no-tls.com"}, // no certificate: skipped
	}
	stats := AnalyzeCerts(snaps)
	if stats.Total != 5 {
		t.Errorf("total = %d", stats.Total)
	}
	if stats.ByIssuer["R3 Free Automated CA"] != 2 {
		t.Errorf("issuers = %v", stats.ByIssuer)
	}
	if stats.SelfSigned != 1 {
		t.Errorf("self-signed = %d", stats.SelfSigned)
	}
	if got := stats.SelfSignedShare(); got != 0.2 {
		t.Errorf("self-signed share = %v", got)
	}
	// FreeACME + CDN are ≤ 90 days.
	if stats.ShortLived != 3 {
		t.Errorf("short-lived = %d", stats.ShortLived)
	}
	if (CertStats{}).SelfSignedShare() != 0 {
		t.Error("empty share should be 0")
	}
}

func TestCertProfileStrings(t *testing.T) {
	for p, want := range map[CertProfile]string{
		CertFreeACME: "free-acme", CertCDNFronted: "cdn-fronted",
		CertSelfSigned: "self-signed", CertCommercial: "commercial",
	} {
		if p.String() != want {
			t.Errorf("%d = %q", p, p.String())
		}
	}
}

func BenchmarkContentScore(b *testing.B) {
	html := RenderSite(SiteBooter, "quantum-booter-1.com", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ContentScore(html)
	}
}
