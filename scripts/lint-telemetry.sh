#!/bin/sh
# lint-telemetry.sh fails when a package defines bespoke stats
# accessors without exposing them through the telemetry registry.
#
# Rule: any package under internal/ with a Stats(), Health(), or
# Ledger() accessor method must also define RegisterTelemetry (method
# or function) so its accounting is scrapeable, not just printable.
# Packages listed in EXEMPT carry value-type accounting with no live
# component to register (e.g. per-day simulation outputs).
set -eu

cd "$(dirname "$0")/.."

EXEMPT="internal/telemetry"

# Packages whose registry wiring is load-bearing for operability —
# they must define RegisterTelemetry even if the accessor heuristic
# below would miss them. The flow archive is required: silent loss of
# store accounting would hide dropped batches under fault injection.
# The batch pipeline is required: without its gauges an operator
# cannot see backpressure (queue depth), leaks (batches in flight),
# or slow stages (batch latency).
REQUIRED="internal/flowstore internal/pipe"

fail=0
for dir in $REQUIRED; do
    if ! grep -q 'func.*RegisterTelemetry' "$dir"/*.go 2>/dev/null; then
        echo "lint-telemetry: $dir must expose its accounting via RegisterTelemetry" >&2
        fail=1
    fi
done

# The pipeline's observability contract: these metric names are what
# the debug surface and the bench harness scrape, so renaming or
# dropping one is a breaking change this lint makes loud.
for name in pipe_batches_in_flight pipe_shard_queue_depth_max pipe_stage_batch_latency_seconds; do
    if ! grep -q "\"$name\"" internal/pipe/*.go 2>/dev/null; then
        echo "lint-telemetry: internal/pipe must register metric $name" >&2
        fail=1
    fi
done
for dir in internal/*/; do
    dir=${dir%/}
    case " $EXEMPT " in
    *" $dir "*) continue ;;
    esac
    # Accessor methods only (receiver present), ignoring _test.go files.
    has_stats=$(grep -l -E 'func \([a-zA-Z0-9_ *]+\) (Stats|Health|Ledger)\(\)' "$dir"/*.go 2>/dev/null | grep -v _test || true)
    [ -z "$has_stats" ] && continue
    if ! grep -q 'func.*RegisterTelemetry' "$dir"/*.go 2>/dev/null; then
        echo "lint-telemetry: $dir defines Stats()/Health()/Ledger() but no RegisterTelemetry" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "lint-telemetry: bespoke stats structs must be views over registry metrics (see DESIGN.md §6)" >&2
    exit 1
fi
echo "lint-telemetry: ok"
